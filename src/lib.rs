//! Umbrella crate for the QUBIKOS benchmark suite workspace.
//!
//! This crate only re-exports the member crates so that the workspace-level
//! examples and integration tests under `examples/` and `tests/` can access
//! the entire public API through a single dependency.
//!
//! The interesting code lives in the member crates:
//!
//! * [`qubikos_graph`] — graph substrate (VF2, BFS, distances, generators)
//! * [`qubikos_circuit`] — quantum circuit IR (gates, dependency DAG, QASM)
//! * [`qubikos_arch`] — device coupling graphs (Aspen-4, Sycamore, Rochester, Eagle, …)
//! * [`qubikos_layout`] — heuristic layout-synthesis tools under evaluation
//! * [`qubikos_exact`] — exact minimal-SWAP solver (OLSQ2 substitute)
//! * [`qubikos`] — the QUBIKOS benchmark generator itself
//! * [`qubikos_engine`] — deterministic work-stealing executor all experiment
//!   pipelines run on

pub use qubikos;
pub use qubikos_arch;
pub use qubikos_circuit;
pub use qubikos_engine;
pub use qubikos_exact;
pub use qubikos_graph;
pub use qubikos_layout;
