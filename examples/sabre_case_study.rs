//! A reproduction of the paper's §IV-C LightSABRE case study.
//!
//! The router is handed the *known-optimal initial mapping* of each QUBIKOS
//! circuit, so every extra SWAP is a routing mistake rather than a placement
//! mistake. The stock uniform extended-set lookahead is then compared with
//! the decayed lookahead the paper proposes as a fix.
//!
//! ```text
//! cargo run --release --example sabre_case_study
//! ```

use qubikos::{generate, GeneratorConfig};
use qubikos_arch::devices;
use qubikos_layout::{validate_routing, SabreConfig, SabreRouter};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let arch = devices::aspen4();
    let uniform = SabreRouter::new(SabreConfig::default().with_seed(11));
    let decayed = SabreRouter::new(
        SabreConfig::default()
            .with_seed(11)
            .with_lookahead_decay(0.7),
    );

    println!("routing from the optimal initial mapping on {arch}");
    println!(
        "{:<8}{:>10}{:>18}{:>18}",
        "seed", "optimal", "uniform lookahead", "decayed lookahead"
    );

    let mut uniform_total = 0usize;
    let mut decayed_total = 0usize;
    let mut optimal_total = 0usize;
    for seed in 0..6u64 {
        let bench = generate(&arch, &GeneratorConfig::new(4, 140).with_seed(seed))?;
        let mut row = Vec::new();
        for router in [&uniform, &decayed] {
            let routed = router.route_with_initial_mapping(
                bench.circuit(),
                &arch,
                bench.reference_mapping(),
            )?;
            validate_routing(bench.circuit(), &arch, &routed)?;
            row.push(routed.swap_count());
        }
        uniform_total += row[0];
        decayed_total += row[1];
        optimal_total += bench.optimal_swaps();
        println!(
            "{:<8}{:>10}{:>18}{:>18}",
            seed,
            bench.optimal_swaps(),
            row[0],
            row[1]
        );
    }
    println!(
        "\ntotals: optimal {optimal_total}, uniform {uniform_total} ({:.2}x), decayed {decayed_total} ({:.2}x)",
        uniform_total as f64 / optimal_total as f64,
        decayed_total as f64 / optimal_total as f64
    );
    Ok(())
}
