//! Quickstart: generate one QUBIKOS benchmark, route it with LightSABRE, and
//! measure the optimality gap.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qubikos::{generate, verify_certificate, GeneratorConfig};
use qubikos_arch::devices;
use qubikos_layout::{validate_routing, Router, SabreRouter};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Pick a device and ask for a circuit that provably needs 3 SWAPs.
    let arch = devices::aspen4();
    let config = GeneratorConfig::new(3, 120).with_seed(42);
    let bench = generate(&arch, &config)?;
    println!("generated {bench}");

    // 2. Re-check the optimality certificate (upper bound witness + Lemma 1-3
    //    structure), the same evidence the paper obtains from OLSQ2.
    verify_certificate(&bench, &arch)?;
    println!(
        "optimality certificate verified: optimum = {} SWAPs",
        bench.optimal_swaps()
    );

    // 3. Route the circuit with the SABRE-style tool and validate the result.
    let router = SabreRouter::default();
    let routed = router.route(bench.circuit(), &arch)?;
    validate_routing(bench.circuit(), &arch, &routed)?;

    // 4. Report the optimality gap.
    let ratio = bench
        .swap_ratio(&routed)
        .expect("QUBIKOS optima are never zero");
    println!(
        "{} inserted {} SWAPs (optimal {}) -> SWAP ratio {:.2}x",
        router.name(),
        routed.swap_count(),
        bench.optimal_swaps(),
        ratio
    );
    Ok(())
}
