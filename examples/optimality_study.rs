//! A small-scale version of the paper's §IV-A optimality study.
//!
//! Generates QUBIKOS circuits with designed SWAP counts 1–2 on the 3×3 grid
//! and Rigetti Aspen-4, then confirms the designed count three independent
//! ways: the bundled reference solution (upper bound), the structural
//! optimality certificate (lower bound, Lemmas 1–3), and — for the grid
//! instances — an exhaustive exact search (the OLSQ2 substitute).
//!
//! ```text
//! cargo run --release --example optimality_study
//! ```

use qubikos::{generate, verify_certificate, GeneratorConfig};
use qubikos_arch::devices;
use qubikos_exact::{ExactConfig, ExactSolver};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let solver = ExactSolver::new(ExactConfig::default());
    let mut verified = 0usize;
    let mut exact_confirmed = 0usize;

    for (arch, run_exact) in [(devices::grid(3, 3), true), (devices::aspen4(), false)] {
        println!("== {arch} ==");
        for designed_swaps in 1..=2usize {
            for seed in 0..3u64 {
                let config = GeneratorConfig::new(designed_swaps, 20).with_seed(seed);
                let bench = generate(&arch, &config)?;
                verify_certificate(&bench, &arch)?;
                verified += 1;
                print!(
                    "  seed {seed}: designed {designed_swaps} SWAPs, {} two-qubit gates, certificate ok",
                    bench.circuit().two_qubit_gate_count()
                );
                if run_exact {
                    let result = solver.solve(bench.circuit(), &arch);
                    match result.optimal_swaps {
                        Some(optimal) if result.proven => {
                            assert_eq!(
                                optimal, designed_swaps,
                                "exact solver disagrees with the designed SWAP count"
                            );
                            exact_confirmed += 1;
                            print!(", exact solver confirms {optimal}");
                        }
                        _ => print!(", exact solver budget exceeded (certificate still holds)"),
                    }
                }
                println!();
            }
        }
    }
    println!(
        "\n{verified} circuits certified, {exact_confirmed} additionally confirmed by exhaustive search"
    );
    Ok(())
}
