//! A small-scale version of the paper's Figure-4 tool evaluation: measure the
//! SWAP-ratio optimality gap of all four QLS tools on QUBIKOS circuits.
//!
//! The full-scale version (paper circuit sizes, all devices) lives in the
//! harness binary `cargo run --release -p qubikos-bench --bin tool_evaluation`.
//!
//! ```text
//! cargo run --release --example tool_evaluation
//! ```

use qubikos::{generate_suite, SuiteConfig};
use qubikos_arch::devices;
use qubikos_layout::{validate_routing, ToolKind};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let arch = devices::aspen4();
    let suite_config = SuiteConfig {
        swap_counts: vec![3, 6],
        circuits_per_count: 3,
        two_qubit_gates: 120,
        base_seed: 2025,
    };
    let suite = generate_suite(&arch, &suite_config)?;
    println!(
        "evaluating {} tools on {} QUBIKOS circuits for {}",
        ToolKind::ALL.len(),
        suite.len(),
        arch
    );

    println!("{:<12}{:>14}{:>14}", "tool", "avg swaps", "swap ratio");
    for tool in ToolKind::ALL {
        let router = tool.build(7);
        let mut total_swaps = 0usize;
        let mut total_ratio = 0.0f64;
        for point in &suite {
            let routed = router.route(point.benchmark.circuit(), &arch)?;
            validate_routing(point.benchmark.circuit(), &arch, &routed)?;
            total_swaps += routed.swap_count();
            total_ratio += point
                .benchmark
                .swap_ratio(&routed)
                .expect("QUBIKOS optima are never zero");
        }
        println!(
            "{:<12}{:>14.2}{:>13.2}x",
            tool.name(),
            total_swaps as f64 / suite.len() as f64,
            total_ratio / suite.len() as f64
        );
    }
    Ok(())
}
