//! Offline-vendored `#[derive(Serialize, Deserialize)]` for the minimal
//! serde substitute in `vendor/serde`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! offline builds, so this crate parses the item token stream by hand. It
//! supports exactly the shapes the QUBIKOS workspace uses:
//!
//! * structs with named fields, tuple structs, and unit structs;
//! * enums whose variants are unit, named-field, or tuple variants;
//! * no generic parameters (the workspace derives only on concrete types).
//!
//! Representation (round-trip consistent with itself, JSON-shaped):
//! a named struct becomes an object; a tuple struct an array; a unit enum
//! variant a string; a data-carrying variant a single-key object
//! `{"Variant": ...}` (externally tagged, like real serde).

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Field layout of a struct or an enum variant.
enum Fields {
    /// `struct S;` or `Variant,`
    Unit,
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — number of fields.
    Tuple(usize),
}

/// Parsed shape of the item the derive is attached to.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (the vendored minimal trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize` (the vendored minimal trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

type TokenIter = Peekable<<TokenStream as IntoIterator>::IntoIter>;

/// Skips any `#[...]` attributes (including doc comments) at the cursor.
fn skip_attributes(iter: &mut TokenIter) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next(); // '#'
        match iter.next() {
            Some(TokenTree::Group(_)) => {}
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` visibility qualifiers.
fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&mut iter);
        // Optional trailing comma was consumed by skip_type.
    }
    names
}

/// Skips a type (everything up to a `,` at angle-bracket depth zero),
/// consuming the comma if present.
fn skip_type(iter: &mut TokenIter) {
    let mut depth: i64 = 0;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

/// Counts comma-separated entries at angle-depth zero (tuple fields).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut iter = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut iter);
    }
    count
}

/// Parses enum variants into `(name, fields)` pairs.
fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut depth: i64 = 0;
        while let Some(tt) = iter.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        iter.next();
                        break;
                    }
                    _ => {}
                }
            }
            iter.next();
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::serde::Value::String(::std::string::String::from(\"{name}\"))"),
        Fields::Named(field_names) => {
            let mut s = String::from("{ let mut fields = ::std::vec::Vec::new(); ");
            for f in field_names {
                let _ = write!(
                    s,
                    "fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize_value(&self.{f}))); "
                );
            }
            s.push_str("::serde::Value::Object(fields) }");
            s
        }
        Fields::Tuple(n) => {
            let mut s = String::from("{ let mut items = ::std::vec::Vec::new(); ");
            for i in 0..*n {
                let _ = write!(
                    s,
                    "items.push(::serde::Serialize::serialize_value(&self.{i})); "
                );
            }
            s.push_str("::serde::Value::Array(items) }");
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(field_names) => {
            let mut s = format!("::std::result::Result::Ok({name} {{ ");
            for f in field_names {
                let _ = write!(
                    s,
                    "{f}: ::serde::Deserialize::deserialize_value(value.object_field(\"{f}\")?)?, "
                );
            }
            s.push_str("})");
            s
        }
        Fields::Tuple(n) => {
            let mut s = format!("::std::result::Result::Ok({name}(");
            for i in 0..*n {
                let _ = write!(
                    s,
                    "::serde::Deserialize::deserialize_value(value.array_item({i})?)?, "
                );
            }
            s.push_str("))");
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn deserialize_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (variant, fields) in variants {
        match fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{name}::{variant} => ::serde::Value::String(\
                     ::std::string::String::from(\"{variant}\")), "
                );
            }
            Fields::Named(field_names) => {
                let bindings = field_names.join(", ");
                let mut inner = String::from("{ let mut fields = ::std::vec::Vec::new(); ");
                for f in field_names {
                    let _ = write!(
                        inner,
                        "fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value({f}))); "
                    );
                }
                inner.push_str("::serde::Value::Object(fields) }");
                let _ = write!(
                    arms,
                    "{name}::{variant} {{ {bindings} }} => \
                     ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{variant}\"), {inner})]), "
                );
            }
            Fields::Tuple(n) => {
                let bindings: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let pattern = bindings.join(", ");
                let mut inner = String::from("{ let mut items = ::std::vec::Vec::new(); ");
                for b in &bindings {
                    let _ = write!(
                        inner,
                        "items.push(::serde::Serialize::serialize_value({b})); "
                    );
                }
                inner.push_str("::serde::Value::Array(items) }");
                let _ = write!(
                    arms,
                    "{name}::{variant}({pattern}) => \
                     ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{variant}\"), {inner})]), "
                );
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn serialize_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (variant, fields) in variants {
        match fields {
            Fields::Unit => {
                let _ = write!(
                    unit_arms,
                    "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}), "
                );
            }
            Fields::Named(field_names) => {
                let mut ctor = format!("{name}::{variant} {{ ");
                for f in field_names {
                    let _ = write!(
                        ctor,
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         inner.object_field(\"{f}\")?)?, "
                    );
                }
                ctor.push('}');
                let _ = write!(
                    data_arms,
                    "\"{variant}\" => ::std::result::Result::Ok({ctor}), "
                );
            }
            Fields::Tuple(n) => {
                let mut ctor = format!("{name}::{variant}(");
                for i in 0..*n {
                    let _ = write!(
                        ctor,
                        "::serde::Deserialize::deserialize_value(inner.array_item({i})?)?, "
                    );
                }
                ctor.push(')');
                let _ = write!(
                    data_arms,
                    "\"{variant}\" => ::std::result::Result::Ok({ctor}), "
                );
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn deserialize_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ \
         match value {{ \
         ::serde::Value::String(s) => match s.as_str() {{ \
         {unit_arms} \
         other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"unknown variant `{{other}}` of {name}\"))), \
         }}, \
         ::serde::Value::Object(entries) if entries.len() == 1 => {{ \
         let (tag, inner) = &entries[0]; \
         match tag.as_str() {{ \
         {data_arms} \
         other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"unknown variant `{{other}}` of {name}\"))), \
         }} \
         }}, \
         other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"expected {name} variant, found {{}}\", other.kind_name()))), \
         }} }} }}"
    )
}
