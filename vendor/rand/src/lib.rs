//! Offline-vendored minimal substitute for the `rand` crate (0.8 surface).
//!
//! Provides the API slice the QUBIKOS workspace uses: [`RngCore`], the
//! [`Rng`] extension trait (`gen_range`, `gen_bool`, `gen_ratio`),
//! [`SeedableRng`], and [`seq::SliceRandom`] (`choose`, `shuffle`). Range
//! sampling uses rejection-free widening multiply (Lemire) so the
//! distribution is unbiased for the small ranges the generators draw from.
//!
//! All randomness in the workspace flows through explicitly seeded ChaCha
//! generators (see the vendored `rand_chacha`), so no OS entropy source is
//! required and every experiment stays reproducible.

#![forbid(unsafe_code)]

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 random bits, the full precision of an f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator exceeds denominator"
        );
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value of type `T` from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample of `x` in `0..bound` via 128-bit widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut mul = u128::from(rng.next_u64()) * u128::from(bound);
    let mut low = mul as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            mul = u128::from(rng.next_u64()) * u128::from(bound);
            low = mul as u64;
        }
    }
    (mul >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingRng(u64);

    impl RngCore for CountingRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = CountingRng(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u64);
            assert!(w <= 4);
            let x = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = CountingRng(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = CountingRng(42);
        let mut data: Vec<usize> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        use crate::seq::SliceRandom;
        let mut rng = CountingRng(3);
        let data = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*data.choose(&mut rng).expect("non-empty")] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
