//! Offline-vendored minimal substitute for the `serde` crate.
//!
//! The QUBIKOS workspace builds in environments with no network access, so
//! the real `serde` cannot be fetched from crates.io. This crate provides the
//! small slice of the serde surface the workspace actually uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits over a self-describing [`Value`]
//!   data model (JSON-shaped), implemented for the std types the workspace
//!   serializes;
//! * re-exported `#[derive(Serialize, Deserialize)]` macros from the
//!   companion `serde_derive` crate.
//!
//! The data model intentionally mirrors JSON because `serde_json` (also
//! vendored) is the only serializer in the workspace. Swapping back to the
//! real serde is a drop-in change once a registry is reachable: the derive
//! spellings and call sites (`serde_json::to_string`, `from_str`, `json!`)
//! are identical.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value in the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always `< 0`; non-negative integers use [`Value::UInt`]).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value, for derived `Deserialize` impls.
    pub fn object_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind_name()
            ))),
        }
    }

    /// Indexes into an array value, for derived `Deserialize` impls.
    pub fn array_item(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items.get(index).ok_or_else(|| {
                Error::new(format!(
                    "array index {index} out of bounds (len {})",
                    items.len()
                ))
            }),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind_name()
            ))),
        }
    }

    /// Human-readable name of the value's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn integer_from(value: &Value) -> Result<i128, Error> {
    match value {
        Value::UInt(v) => Ok(i128::from(*v)),
        Value::Int(v) => Ok(i128::from(*v)),
        other => Err(Error::new(format!(
            "expected integer, found {}",
            other.kind_name()
        ))),
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw = integer_from(value)?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::UInt(v) => Ok(*v as f64),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(v) => Ok(*v),
            other => Err(Error::new(format!(
                "expected bool, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(v) => Ok(v.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = String::deserialize_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

fn array_from(value: &Value) -> Result<&[Value], Error> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(Error::new(format!(
            "expected array, found {}",
            other.kind_name()
        ))),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        array_from(value)?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = array_from(value)?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::new("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = array_from(value)?;
        if items.len() != 2 {
            return Err(Error::new(format!(
                "expected 2-element array, found {}",
                items.len()
            )));
        }
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = array_from(value)?;
        if items.len() != 3 {
            return Err(Error::new(format!(
                "expected 3-element array, found {}",
                items.len()
            )));
        }
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
            C::deserialize_value(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
