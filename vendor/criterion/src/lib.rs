//! Offline-vendored minimal substitute for the `criterion` crate.
//!
//! Implements the API slice the QUBIKOS benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical machinery.
//!
//! Measurements: each benchmark is warmed up, then timed for `sample_size`
//! samples whose iteration count is calibrated so a sample takes roughly
//! [`TARGET_SAMPLE_TIME`]. The median, minimum and maximum per-iteration
//! times are printed in a criterion-like one-line format, so regression eyes
//! (and the nightly CI log diff) still have numbers to read.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Roughly how long a single measured sample should take.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Upper bound on iterations per sample (guards ultra-fast benchmarks).
const MAX_ITERS_PER_SAMPLE: u64 = 1_000_000;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, &mut f);
        self
    }
}

/// A named benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`, passing it `input` each time.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (statistics were already printed per benchmark).
    pub fn finish(self) {}
}

/// Either a `BenchmarkId` or a plain string name (both are accepted by
/// `bench_function`, as in real criterion).
pub struct BenchmarkIdOrName(String);

impl From<&str> for BenchmarkIdOrName {
    fn from(s: &str) -> Self {
        BenchmarkIdOrName(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrName {
    fn from(s: String) -> Self {
        BenchmarkIdOrName(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrName {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrName(id.label)
    }
}

/// Passed to benchmark closures; collects timing of the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: one iteration, to size the per-sample loop.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos())
        .clamp(1, u128::from(MAX_ITERS_PER_SAMPLE)) as u64;

    let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed / iters_per_sample as u32);
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples x {} iters)",
        format_duration(min),
        format_duration(median),
        format_duration(max),
        sample_size,
        iters_per_sample,
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("named", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(5)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("aspen4").to_string(), "aspen4");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
