//! Offline-vendored minimal substitute for the `serde_json` crate.
//!
//! Provides the slice of the real API the QUBIKOS workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`] and the
//! [`json!`] macro — over the [`Value`] data model defined in the vendored
//! `serde`. The emitted text is standard JSON; the parser accepts standard
//! JSON (with `\uXXXX` escapes and surrogate pairs).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Builds a [`Value`] literal: `json!({ "key": expr, ... })`, `json!([ ... ])`
/// or `json!(expr)` for any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => {
            out.push_str(&v.to_string());
        }
        Value::UInt(v) => {
            out.push_str(&v.to_string());
        }
        Value::Float(v) => write_float(out, *v),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        let text = v.to_string();
        out.push_str(&text);
        // Keep floats recognizable as floats so round-trips preserve kind.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, found as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {}, expected `{keyword}`",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            // Parse the signed text whole so i64::MIN round-trips, and
            // normalize `-0` to UInt to keep Int's `< 0` invariant.
            match text.parse::<i64>() {
                Ok(0) => Ok(Value::UInt(0)),
                Ok(v) => Ok(Value::Int(v)),
                Err(_) => Err(Error::new(format!("invalid number `{text}`"))),
            }
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).expect("parses");
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn round_trips_collections() {
        let text = "{\"a\":[1,2,3],\"b\":{\"c\":null},\"d\":\"x\\ny\"}";
        let v = parse(text).expect("parses");
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse("\"\\u00e9\\ud83d\\ude00\"").expect("parses");
        assert_eq!(v, Value::String("é😀".to_string()));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = parse("{\"a\":1}").expect("parses");
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn i64_min_round_trips() {
        let text = to_string(&i64::MIN).expect("serializes");
        assert_eq!(text, "-9223372036854775808");
        let back: i64 = from_str(&text).expect("parses");
        assert_eq!(back, i64::MIN);
        assert_eq!(parse("-0").expect("parses"), Value::UInt(0));
    }

    #[test]
    fn malformed_surrogates_error_instead_of_panicking() {
        assert!(parse("\"\\ud800\\u0041\"").is_err()); // low half out of range
        assert!(parse("\"\\ud800x\"").is_err()); // no second escape
        assert!(parse("\"\\udc00\"").is_err()); // lone low surrogate
    }

    #[test]
    fn float_round_trip_preserves_kind() {
        let text = to_string(&2.0f64).expect("serializes");
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).expect("parses");
        assert_eq!(back, 2.0);
    }
}
