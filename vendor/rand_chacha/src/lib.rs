//! Offline-vendored substitute for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator behind the vendored
//! `rand` traits. Only the `u64`-seeded construction the workspace uses is
//! provided; the seed is expanded to a 256-bit key with SplitMix64, so
//! distinct seeds give independent streams and every experiment in the suite
//! is reproducible from its recorded seed alone.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state words 4..12 (the 256-bit key).
    key: [u32; 8],
    /// 64-bit block counter (state words 12 and 13).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index within `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as rand's default seed_from_u64 does.
        let mut splitmix = state;
        let mut next = || {
            splitmix = splitmix.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = splitmix;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = next();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn output_is_not_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first = rng.next_u64();
        assert!((0..64).any(|_| rng.next_u64() != first));
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
