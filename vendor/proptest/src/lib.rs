//! Offline-vendored minimal substitute for the `proptest` crate.
//!
//! Supports the property-test surface the QUBIKOS workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `pattern in strategy` parameter lists;
//! * [`Strategy`] with `prop_map` / `prop_filter_map` combinators,
//!   implemented for integer ranges and strategy tuples;
//! * [`collection::vec`] for variable-length vectors;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: cases are sampled from a fixed-seed
//! ChaCha8 stream (fully deterministic, no persisted failure file) and there
//! is no shrinking — a failing case panics with the seed index so it can be
//! reproduced by re-running the test.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand_chacha::ChaCha8Rng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Samples one value from the strategy.
        fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Maps sampled values through `f`, resampling when `f` returns
        /// `None`. `reason` is reported if sampling keeps failing.
        fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                f,
                reason,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut ChaCha8Rng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;

        fn sample(&self, rng: &mut ChaCha8Rng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map exhausted 10000 attempts without an accepted value: {}",
                self.reason
            );
        }
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_for_tuples {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_for_tuples! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }

    /// A constant strategy, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut ChaCha8Rng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand_chacha::ChaCha8Rng;

    /// Strategy for vectors whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Runtime re-exports used by the macros; not part of the public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { fn name(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    // Fixed per-case seeds keep every run deterministic.
                    let mut rng = <$crate::__rt::ChaCha8Rng as $crate::__rt::SeedableRng>::
                        seed_from_u64(0x5157_4249_4b4f_5321u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even(limit: usize) -> impl Strategy<Value = usize> {
        (0..limit).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..10usize, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_filter_map_compose(v in arb_even(50), w in (0..100usize).prop_filter_map("odd", |x| (x % 2 == 1).then_some(x))) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_eq!(w % 2, 1);
        }

        #[test]
        fn vectors_respect_length_bounds(items in crate::collection::vec((0usize..9, 0usize..9), 1..40)) {
            prop_assert!(!items.is_empty());
            prop_assert!(items.len() < 40);
            for (a, b) in items {
                prop_assert!(a < 9 && b < 9);
            }
        }
    }

    #[test]
    fn default_config_has_cases() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
