//! Workspace-level contract between the execution engine and the suite
//! generator. Per-pipeline thread-count invariance is asserted by each
//! pipeline's own module tests (which cover 1/2/8/auto threads); this file
//! holds only the cross-crate property no single crate can test.

use qubikos::SuiteConfig;
use qubikos_engine::{Engine, JobId, NullSink};

/// The engine's per-job scheduling composes with the suite's per-instance
/// seeds: generating a suite's instances as independent engine jobs (as the
/// parallel exporter does) reproduces exactly the (id, seed) assignment the
/// sequential generator uses.
#[test]
fn suite_instance_seeds_are_engine_schedulable() {
    let config = SuiteConfig {
        swap_counts: vec![1, 2, 3],
        circuits_per_count: 4,
        two_qubit_gates: 20,
        base_seed: 6,
    };
    let arch = qubikos_arch::devices::grid(3, 3);
    let suite = qubikos::generate_suite(&arch, &config).expect("generates");
    // Re-derive every instance independently, in engine-scheduled order.
    let jobs: Vec<(usize, usize)> = (0..config.swap_counts.len())
        .flat_map(|c| (0..config.circuits_per_count).map(move |i| (c, i)))
        .collect();
    let seeds = Engine::new(4)
        .run_values(
            &jobs,
            |_| (),
            |(), _ctx, &(count_index, instance)| config.instance_seed(count_index, instance),
            &NullSink,
        )
        .expect("no panics");
    let expected: Vec<u64> = suite.iter().map(|p| p.seed).collect();
    assert_eq!(seeds, expected);
    // And engine job ids line up with worklist positions.
    assert_eq!(JobId(5).index(), 5);
}
