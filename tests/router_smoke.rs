//! Workspace-level smoke test: every heuristic router under evaluation
//! routes a small QUEKO circuit on the 4x4 grid and passes validation.
//!
//! QUEKO circuits (Tan & Cong, 2020) have a *zero-SWAP optimum by
//! construction*: every gate acts on a coupler edge under the bundled
//! reference mapping, so subgraph-isomorphism placement recovers a SWAP-free
//! layout. This is the certificate property the paper contrasts QUBIKOS
//! against, and the cheapest end-to-end sanity check of the routing stack —
//! if any router fails here, every benchmark number downstream is suspect.

use qubikos::{generate_queko, QuekoConfig};
use qubikos_arch::devices;
use qubikos_exact::swap_lower_bound;
use qubikos_layout::{
    validate_routing, vf2_placement, AStarRouter, MultilevelRouter, Router, SabreRouter, TketRouter,
};

/// Builds the shared QUEKO instance: depth 5 on a 4x4 grid.
fn queko_on_grid4x4() -> (qubikos_arch::Architecture, qubikos::QuekoCircuit) {
    let arch = devices::grid(4, 4);
    let queko = generate_queko(&arch, &QuekoConfig::new(5).with_seed(11)).expect("generates");
    (arch, queko)
}

/// The zero-SWAP-optimum certificate: the reference mapping executes the
/// circuit SWAP-free, VF2 placement independently finds such a layout, and
/// the admissible lower bound agrees the optimum is zero.
#[test]
fn queko_instances_certify_zero_swap_optimum() {
    let (arch, queko) = queko_on_grid4x4();
    assert_eq!(queko.optimal_swaps(), 0);
    assert!(
        vf2_placement(queko.circuit(), &arch).is_some(),
        "QUEKO circuits must embed into their own architecture"
    );
    assert_eq!(swap_lower_bound(queko.circuit(), &arch), 0);
    assert!(queko.circuit().two_qubit_gate_count() >= queko.optimal_depth());
}

/// Each router must produce a valid routing of the QUEKO circuit. Routers
/// may insert SWAPs (heuristics are not obliged to find the zero-SWAP
/// layout), but the routing itself has to validate.
macro_rules! router_smoke_test {
    ($($test_name:ident => $router:expr;)*) => {$(
        #[test]
        fn $test_name() {
            let (arch, queko) = queko_on_grid4x4();
            let router = $router;
            let routed = router.route(queko.circuit(), &arch).expect("routes");
            validate_routing(queko.circuit(), &arch, &routed).expect("valid routing");
        }
    )*};
}

router_smoke_test! {
    sabre_routes_queko_on_grid => SabreRouter::default();
    tket_routes_queko_on_grid => TketRouter::default();
    astar_routes_queko_on_grid => AStarRouter::default();
    multilevel_routes_queko_on_grid => MultilevelRouter::default();
}

/// Routing from the bundled reference mapping must stay SWAP-free for the
/// SABRE router: the mapping satisfies every gate, so no SWAP is ever needed.
#[test]
fn reference_mapping_routes_swap_free() {
    let (arch, queko) = queko_on_grid4x4();
    let router = SabreRouter::default();
    let routed = router
        .route_with_initial_mapping(queko.circuit(), &arch, queko.reference_mapping())
        .expect("routes");
    validate_routing(queko.circuit(), &arch, &routed).expect("valid routing");
    assert_eq!(
        routed.swap_count(),
        0,
        "the QUEKO reference mapping needs no SWAPs by construction"
    );
}
