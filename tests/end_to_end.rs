//! Cross-crate integration tests: generate → certify → route → validate →
//! compare against the exact solver.

use qubikos::{generate, generate_suite, verify_certificate, GeneratorConfig, SuiteConfig};
use qubikos_arch::{devices, DeviceKind};
use qubikos_exact::{swap_lower_bound, ExactConfig, ExactSolver};
use qubikos_layout::{validate_routing, vf2_placement, ToolKind};

/// The headline pipeline: a QUBIKOS instance is certified optimal and every
/// tool produces a valid routing whose SWAP count is at least the optimum.
#[test]
fn every_tool_respects_the_certified_optimum() {
    let arch = devices::aspen4();
    let bench = generate(&arch, &GeneratorConfig::new(3, 100).with_seed(17)).expect("generates");
    verify_certificate(&bench, &arch).expect("certificate holds");

    for tool in ToolKind::ALL {
        let router = tool.build(3);
        let routed = router.route(bench.circuit(), &arch).expect("fits");
        validate_routing(bench.circuit(), &arch, &routed).expect("valid routing");
        assert!(
            routed.swap_count() >= bench.optimal_swaps(),
            "{} beat the proven optimum: {} < {}",
            tool.name(),
            routed.swap_count(),
            bench.optimal_swaps()
        );
    }
}

/// The exact solver (OLSQ2 substitute) independently confirms the designed
/// SWAP count of small grid instances — the §IV-A experiment in miniature.
#[test]
fn exact_solver_confirms_designed_swap_counts_on_grid() {
    let arch = devices::grid(3, 3);
    let solver = ExactSolver::new(ExactConfig {
        max_swaps: 4,
        node_budget: 30_000_000,
    });
    for designed in 1..=2usize {
        for seed in 0..3u64 {
            let config = GeneratorConfig::new(designed, 16)
                .with_seed(seed)
                .with_single_qubit_ratio(0.0);
            let bench = generate(&arch, &config).expect("generates");
            let result = solver.solve(bench.circuit(), &arch);
            assert_eq!(
                result.optimal_swaps,
                Some(designed),
                "seed {seed}: exact solver disagrees with the designed count"
            );
            assert!(result.proven, "seed {seed}: exact answer must be proven");
        }
    }
}

/// QUBIKOS circuits can never be solved by subgraph isomorphism alone — the
/// property that distinguishes them from QUEKO benchmarks.
#[test]
fn qubikos_circuits_defeat_vf2_placement() {
    for kind in [DeviceKind::Grid3x3, DeviceKind::Aspen4] {
        let arch = kind.build();
        for seed in 0..3u64 {
            let bench =
                generate(&arch, &GeneratorConfig::new(2, 40).with_seed(seed)).expect("generates");
            assert!(
                vf2_placement(bench.circuit(), &arch).is_none(),
                "a SWAP-free placement exists, contradicting the designed optimum"
            );
            assert!(swap_lower_bound(bench.circuit(), &arch) >= 1);
        }
    }
}

/// The reference solution bundled with every instance is itself a valid
/// routing with exactly the claimed number of SWAPs, across all evaluation
/// architectures.
#[test]
fn reference_solutions_are_valid_on_all_devices() {
    for kind in DeviceKind::EVALUATION {
        let arch = kind.build();
        let bench = generate(&arch, &GeneratorConfig::new(4, 150).with_seed(5)).expect("generates");
        assert_eq!(bench.reference_solution().swap_count(), 4);
        verify_certificate(&bench, &arch).expect("certificate holds");
    }
}

/// Suite generation covers the requested grid and all instances certify.
#[test]
fn generated_suites_certify() {
    let arch = devices::grid(3, 3);
    let config = SuiteConfig {
        swap_counts: vec![1, 2, 3],
        circuits_per_count: 2,
        two_qubit_gates: 30,
        base_seed: 77,
    };
    let suite = generate_suite(&arch, &config).expect("generates");
    assert_eq!(suite.len(), 6);
    for point in &suite {
        verify_certificate(&point.benchmark, &arch).expect("certificate holds");
        assert_eq!(point.benchmark.optimal_swaps(), point.swap_count);
        assert!(point.benchmark.circuit().two_qubit_gate_count() >= 30);
    }
}

/// Handing a router the optimal initial mapping can only help: the result is
/// valid and never better than the proven optimum.
#[test]
fn routing_from_the_optimal_mapping_is_valid() {
    use qubikos_layout::{SabreConfig, SabreRouter};
    let arch = devices::sycamore54();
    let bench = generate(&arch, &GeneratorConfig::new(3, 200).with_seed(23)).expect("generates");
    let router = SabreRouter::new(SabreConfig::default().with_seed(1));
    let routed = router
        .route_with_initial_mapping(bench.circuit(), &arch, bench.reference_mapping())
        .expect("fits");
    validate_routing(bench.circuit(), &arch, &routed).expect("valid");
    assert!(routed.swap_count() >= bench.optimal_swaps());
}

/// QASM round-trip of a generated benchmark preserves the circuit, so
/// instances can be exported to external toolchains.
#[test]
fn benchmarks_survive_qasm_round_trip() {
    use qubikos_circuit::{parse_qasm, to_qasm};
    let arch = devices::aspen4();
    let bench = generate(&arch, &GeneratorConfig::new(2, 80).with_seed(9)).expect("generates");
    let qasm = to_qasm(bench.circuit());
    let parsed = parse_qasm(&qasm).expect("parse back");
    assert_eq!(&parsed, bench.circuit());
}
