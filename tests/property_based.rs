//! Property-based tests over the core invariants of the suite.

use proptest::prelude::*;
use qubikos::{generate, verify_certificate, GeneratorConfig};
use qubikos_arch::{devices, Architecture};
use qubikos_circuit::{parse_qasm, to_qasm, Circuit, Gate};
use qubikos_exact::swap_lower_bound;
use qubikos_graph::{
    find_subgraph_embedding, generators, isomorphism::verify_embedding, DistanceMatrix,
};
use qubikos_layout::{
    validate_routing, AStarRouter, Mapping, MultilevelRouter, Router, RouterSpec, SabreConfig,
    SabreRouter, TketRouter, ToolKind,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a random circuit over `num_qubits` qubits with `len` gates,
/// roughly 1/4 single-qubit gates.
fn arb_circuit(num_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..num_qubits, 0..num_qubits, 0..4usize).prop_filter_map(
        "distinct qubits for two-qubit gates",
        move |(a, b, kind)| match kind {
            0 => Some(Gate::h(a)),
            _ if a != b => Some(Gate::cx(a, b)),
            _ => None,
        },
    );
    proptest::collection::vec(gate, 1..max_gates)
        .prop_map(move |gates| Circuit::from_gates(num_qubits, gates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any SABRE routing of any random circuit on the 3x3 grid is valid and
    /// never uses a SWAP when the interaction graph already embeds.
    #[test]
    fn sabre_routings_are_always_valid(circuit in arb_circuit(6, 30), seed in 0u64..1000) {
        let arch = devices::grid(3, 3);
        let router = SabreRouter::new(SabreConfig::default().with_trials(2).with_seed(seed));
        let routed = router.route(&circuit, &arch).expect("fits");
        prop_assert!(validate_routing(&circuit, &arch, &routed).is_ok());
        prop_assert!(routed.swap_count() >= swap_lower_bound(&circuit, &arch));
    }

    /// The greedy t|ket>-style router obeys the same validity invariants.
    #[test]
    fn tket_routings_are_always_valid(circuit in arb_circuit(8, 40)) {
        let arch = devices::aspen4();
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        prop_assert!(validate_routing(&circuit, &arch, &routed).is_ok());
    }

    /// QASM serialisation round-trips every circuit the strategy can build.
    #[test]
    fn qasm_round_trip(circuit in arb_circuit(7, 50)) {
        let text = to_qasm(&circuit);
        let parsed = parse_qasm(&text).expect("parses");
        prop_assert_eq!(parsed, circuit);
    }

    /// A VF2 embedding of a random connected pattern into a larger random
    /// connected graph, when found, is always a genuine monomorphism.
    #[test]
    fn vf2_embeddings_are_sound(pattern_seed in 0u64..500, target_seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(pattern_seed);
        let pattern = generators::random_connected_graph(5, 2, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(target_seed);
        let target = generators::random_connected_graph(9, 6, &mut rng);
        if let Some(embedding) = find_subgraph_embedding(&pattern, &target) {
            prop_assert!(verify_embedding(&pattern, &target, &embedding));
        }
    }

    /// Distance matrices satisfy the triangle inequality on arbitrary
    /// connected graphs (the property every router's cost model relies on).
    #[test]
    fn distances_satisfy_triangle_inequality(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::random_connected_graph(10, 5, &mut rng);
        let dist = DistanceMatrix::new(&graph);
        for a in 0..10 {
            for b in 0..10 {
                for c in 0..10 {
                    prop_assert!(dist.get(a, c) <= dist.get(a, b) + dist.get(b, c));
                }
            }
        }
    }

    /// Applying random SWAPs to a mapping keeps it a consistent injection.
    #[test]
    fn mappings_stay_consistent_under_swaps(swaps in proptest::collection::vec((0usize..9, 0usize..9), 1..40)) {
        let mut mapping = Mapping::identity(6, 9);
        for (a, b) in swaps {
            if a != b {
                mapping.apply_swap_physical(a, b);
            }
        }
        prop_assert!(mapping.is_consistent());
    }

    /// Generated QUBIKOS instances always pass their own optimality
    /// certificate, for arbitrary seeds and SWAP counts on the grid.
    #[test]
    fn generated_instances_always_certify(seed in 0u64..200, swaps in 1usize..4) {
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(swaps, 25).with_seed(seed)).expect("generates");
        prop_assert!(verify_certificate(&bench, &arch).is_ok());
        prop_assert_eq!(bench.optimal_swaps(), swaps);
    }

    /// Routing through the shared kernel is deterministic: for any circuit
    /// and any fixed seed, every tool produces bit-identical routings on
    /// repeated calls (the per-process guarantee behind the engine's
    /// cross-thread-count report invariance).
    #[test]
    fn all_routers_are_deterministic_for_a_fixed_seed(
        circuit in arb_circuit(6, 25),
        seed in 0u64..100,
    ) {
        let arch = devices::grid(3, 3);
        for tool in ToolKind::ALL {
            let first = tool.build(seed).route(&circuit, &arch).expect("fits");
            let second = tool.build(seed).route(&circuit, &arch).expect("fits");
            prop_assert_eq!(&first.physical_circuit, &second.physical_circuit, "{} diverged", tool);
            prop_assert_eq!(&first.initial_mapping, &second.initial_mapping, "{} diverged", tool);
            prop_assert_eq!(&first.final_mapping, &second.final_mapping, "{} diverged", tool);
        }
    }

    /// The construction kit's refactor contract: every named composition is
    /// bit-identical (physical circuit, mappings, tool tag) to the
    /// pre-refactor monolithic router it replaces, on arbitrary QUEKO
    /// instances — not just the fixed golden circuits. The SABRE pair also
    /// sweeps the routing seed, since the seed threads through trials and
    /// tie-breaking; the other three are seed-free by construction.
    #[test]
    fn named_compositions_match_pre_refactor_routers_on_queko(
        instance_seed in 0u64..200,
        swaps in 1usize..4,
        router_seed in 0u64..100,
    ) {
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(swaps, 25).with_seed(instance_seed))
            .expect("generates");
        let circuit = bench.circuit();
        type Legacy = Box<dyn Router>;
        let pairs: [(&str, RouterSpec, u64, Legacy); 4] = [
            (
                "lightsabre",
                RouterSpec::lightsabre(),
                router_seed,
                Box::new(SabreRouter::new(SabreConfig::default().with_seed(router_seed))),
            ),
            ("tket", RouterSpec::tket(), 0, Box::<TketRouter>::default()),
            ("ml-qls", RouterSpec::ml_qls(), 0, Box::<MultilevelRouter>::default()),
            ("qmap", RouterSpec::qmap(), 0, Box::<AStarRouter>::default()),
        ];
        for (name, spec, seed, legacy) in pairs {
            let expected = legacy.route(circuit, &arch).expect("fits");
            let composed = spec
                .build_named(seed, name)
                .route(circuit, &arch)
                .expect("fits");
            prop_assert_eq!(
                &expected.physical_circuit, &composed.physical_circuit,
                "{} physical circuit diverged", name
            );
            prop_assert_eq!(
                &expected.initial_mapping, &composed.initial_mapping,
                "{} initial mapping diverged", name
            );
            prop_assert_eq!(
                &expected.final_mapping, &composed.final_mapping,
                "{} final mapping diverged", name
            );
            prop_assert_eq!(&expected.tool, &composed.tool, "{} tool tag diverged", name);
        }
    }

    /// Random connected architectures are routable: SABRE produces a valid
    /// result on any connected coupling graph, not just the named devices.
    #[test]
    fn sabre_handles_arbitrary_connected_architectures(seed in 0u64..200, circuit in arb_circuit(6, 20)) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::random_connected_graph(8, 4, &mut rng);
        let arch = Architecture::new("random", graph).expect("connected");
        let router = SabreRouter::new(SabreConfig::default().with_trials(1).with_seed(seed));
        let routed = router.route(&circuit, &arch).expect("fits");
        prop_assert!(validate_routing(&circuit, &arch, &routed).is_ok());
    }
}
