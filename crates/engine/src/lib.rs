//! # qubikos-engine — the shared experiment execution engine
//!
//! Every QUBIKOS experiment pipeline — the §IV-A optimality study, the
//! Figure-4 tool evaluation, the ablations, and the §IV-C case study — is a
//! bag of independent jobs whose runtimes vary by orders of magnitude (an
//! exact-solver search on a SWAP-4 instance can take 1000× longer than a
//! greedy route). This crate runs those bags on a **deterministic
//! work-stealing executor** so that:
//!
//! * one slow job never serializes a run (workers claim jobs one at a time
//!   from a shared atomic index — dynamic self-scheduling instead of static
//!   chunking);
//! * the merged output is **bit-identical for every thread count** (stable
//!   job ids, per-job seeds derived from the id, per-worker result buffers
//!   merged in id order — never a shared results lock);
//! * a panicking job aborts the run with the *job's identity and payload*
//!   ([`EngineError::JobPanicked`]) instead of poisoning a mutex;
//! * per-job wall-clock timings stream to pluggable [`ProgressSink`]s
//!   (stderr progress for CLIs, JSON timing artifacts for nightly CI).
//!
//! ## Using the engine
//!
//! ```
//! use qubikos_engine::{Engine, NullSink};
//!
//! // Square the numbers 0..100 on every available core.
//! let jobs: Vec<u64> = (0..100).collect();
//! let engine = Engine::new(qubikos_engine::AUTO_THREADS).with_base_seed(7);
//! let squares = engine
//!     .run_values(
//!         &jobs,
//!         |_worker_index| (),          // per-worker reusable state
//!         |_state, ctx, &job| {
//!             assert_eq!(ctx.id.index() as u64, job);
//!             job * job
//!         },
//!         &NullSink,
//!     )
//!     .expect("no job panicked");
//! // Output is in job order for ANY thread count.
//! assert_eq!(squares, (0..100).map(|j| j * j).collect::<Vec<_>>());
//! ```
//!
//! The per-worker state is where expensive setup lives: the tool-evaluation
//! pipeline builds each router **once per worker** instead of once per
//! circuit, and the optimality study gives each worker its own exact solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod job;
pub mod progress;
pub mod threads;

pub use executor::{Engine, EngineError};
pub use job::{JobContext, JobDeadline, JobId, JobKey, JobOutput, JobRecord};
pub use progress::{
    NullSink, ProgressSink, RunSummary, StderrProgress, TeeSink, TimingReport, TimingSink,
};
pub use threads::{available_threads, resolve_threads, threads_from_args, AUTO_THREADS};
