//! The deterministic work-stealing executor.
//!
//! Scheduling model: the worklist is an immutable slice; workers *steal* the
//! next job by bumping one shared atomic index, so a worker that drew a long
//! job simply claims fewer jobs while the others drain the rest. There is no
//! static partitioning and therefore no convoy behind a slow chunk.
//!
//! Determinism model: scheduling affects only *which worker* runs a job and
//! *when* — never the job's identity, seed, or inputs. Each worker buffers
//! its outputs privately (no shared result lock), and the buffers are merged
//! in job-id order after the run, so the merged output is identical for any
//! thread count, including 1.
//!
//! Failure model: a panic inside a job is caught on the worker, the run is
//! aborted cooperatively, and the panic is reported as a structured
//! [`EngineError`] naming the job and carrying the payload — not as a
//! poisoned mutex three layers away.

use crate::job::{JobContext, JobDeadline, JobId, JobOutput, JobRecord};
use crate::progress::{as_micros, ProgressSink, RunSummary};
use crate::threads::resolve_threads;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a run aborted. When several workers fail in the same run, the
/// executor reports the *observed* failure closest to the start of the
/// worklist. (Which jobs get claimed before the abort flag is seen is still
/// schedule-dependent, so under racing panics the reported job can vary
/// between runs — but it is always a real failure, never a poisoned lock.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A job's closure panicked.
    JobPanicked {
        /// The job that panicked.
        id: JobId,
        /// The seed the job ran with.
        seed: u64,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// A worker's state factory panicked before the worker ran any job.
    WorkerSetupPanicked {
        /// Index of the worker whose factory panicked.
        worker: usize,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// A job ran past the engine's enforced per-job deadline
    /// ([`Engine::with_enforced_job_deadline`]). The job's output was still
    /// produced (cancellation is cooperative), but the run aborts and
    /// reports the overrun.
    JobTimedOut {
        /// The job that overran its budget.
        id: JobId,
        /// Wall-clock time the job actually took.
        elapsed: Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::JobPanicked { id, seed, payload } => {
                write!(f, "{id} (seed {seed:#018x}) panicked: {payload}")
            }
            EngineError::WorkerSetupPanicked { worker, payload } => {
                write!(f, "worker {worker} panicked during setup: {payload}")
            }
            EngineError::JobTimedOut { id, elapsed } => {
                write!(f, "{id} timed out after {:.3}s", elapsed.as_secs_f64())
            }
        }
    }
}

impl Error for EngineError {}

impl EngineError {
    /// Ordering key: lower sorts first, and the executor keeps the smallest.
    /// Setup failures precede all job failures; panics precede timeouts
    /// (a panic is the harder fault); within a class, failures order by id.
    fn rank(&self) -> (usize, usize) {
        match self {
            EngineError::WorkerSetupPanicked { worker, .. } => (0, *worker),
            EngineError::JobPanicked { id, .. } => (1, id.index()),
            EngineError::JobTimedOut { id, .. } => (2, id.index()),
        }
    }
}

/// Renders a caught panic payload for [`EngineError`].
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The executor: a thread count plus a base seed for per-job seed derivation.
///
/// Construction is cheap (no threads are spawned until [`Engine::run`]), so
/// pipelines build one per experiment from their config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
    base_seed: u64,
    job_deadline: Option<Duration>,
    enforce_deadline: bool,
}

impl Engine {
    /// Creates an engine. `threads` follows the workspace convention:
    /// [`crate::AUTO_THREADS`] (0) resolves to every available core at run
    /// time, any positive value is used as-is.
    pub fn new(threads: usize) -> Self {
        Engine {
            threads,
            base_seed: 0,
            job_deadline: None,
            enforce_deadline: false,
        }
    }

    /// Sets the base seed from which every job derives its own seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Gives every job a wall-clock budget, delivered to the job closure as
    /// [`JobContext::deadline`]. Cancellation is *cooperative*: the job is
    /// expected to poll the deadline and degrade to a partial result (the
    /// exact solver returns `unproven`); the executor checks again when the
    /// job returns and reports overruns through
    /// [`ProgressSink::job_deadline_exceeded`], but the run continues.
    pub fn with_job_deadline(mut self, limit: Duration) -> Self {
        self.job_deadline = Some(limit);
        self.enforce_deadline = false;
        self
    }

    /// Like [`with_job_deadline`](Self::with_job_deadline), but an overrun
    /// also aborts the run with [`EngineError::JobTimedOut`] — for callers
    /// that would rather fail a run than trust results from jobs that
    /// ignored their budget. In-flight jobs still finish (cancellation
    /// stays cooperative).
    pub fn with_enforced_job_deadline(mut self, limit: Duration) -> Self {
        self.job_deadline = Some(limit);
        self.enforce_deadline = true;
        self
    }

    /// The per-job wall-clock budget, if one was configured.
    pub fn job_deadline(&self) -> Option<Duration> {
        self.job_deadline
    }

    /// The concrete thread count a run over `jobs` jobs would use: the
    /// resolved request, but never more threads than jobs and never zero.
    pub fn threads_for(&self, jobs: usize) -> usize {
        resolve_threads(self.threads).min(jobs).max(1)
    }

    /// Runs `jobs` to completion and returns the outputs **in job-id order**,
    /// regardless of thread count or scheduling.
    ///
    /// `make_worker` runs once per worker thread, on that thread, and builds
    /// whatever reusable state the jobs need (routers, solvers, scratch
    /// buffers); `run_job` borrows that state mutably, so per-worker reuse is
    /// free of locks. The engine guarantees a worker's state is only ever
    /// touched by its own thread.
    ///
    /// # Errors
    ///
    /// If any job (or worker factory) panics, the run aborts cooperatively —
    /// in-flight jobs finish, no new jobs are claimed — and the failure
    /// nearest the start of the worklist is returned as an [`EngineError`]
    /// naming the job and its panic payload.
    pub fn run<J, W, T>(
        &self,
        jobs: &[J],
        make_worker: impl Fn(usize) -> W + Sync,
        run_job: impl Fn(&mut W, &JobContext, &J) -> T + Sync,
        sink: &dyn ProgressSink,
    ) -> Result<Vec<JobOutput<T>>, EngineError>
    where
        J: Sync,
        T: Send,
    {
        let threads = self.threads_for(jobs.len());
        let started = Instant::now();
        sink.run_started(jobs.len(), threads);

        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<EngineError>> = Mutex::new(None);
        let record_failure = |error: EngineError| {
            let mut slot = failure.lock().expect("failure slot lock");
            let keep_existing = slot
                .as_ref()
                .is_some_and(|existing| existing.rank() <= error.rank());
            if !keep_existing {
                *slot = Some(error);
            }
        };

        let mut buffers: Vec<Vec<JobOutput<T>>> = Vec::with_capacity(threads);
        if !jobs.is_empty() {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker_index| {
                        let next = &next;
                        let abort = &abort;
                        let record_failure = &record_failure;
                        let make_worker = &make_worker;
                        let run_job = &run_job;
                        let base_seed = self.base_seed;
                        let job_deadline = self.job_deadline;
                        let enforce_deadline = self.enforce_deadline;
                        scope.spawn(move || {
                            let mut worker = match catch_unwind(AssertUnwindSafe(|| {
                                make_worker(worker_index)
                            })) {
                                Ok(worker) => worker,
                                Err(payload) => {
                                    record_failure(EngineError::WorkerSetupPanicked {
                                        worker: worker_index,
                                        payload: payload_string(payload),
                                    });
                                    abort.store(true, Ordering::Relaxed);
                                    return Vec::new();
                                }
                            };
                            let mut outputs = Vec::new();
                            while !abort.load(Ordering::Relaxed) {
                                let index = next.fetch_add(1, Ordering::Relaxed);
                                let Some(job) = jobs.get(index) else { break };
                                let id = JobId(index);
                                let context = JobContext {
                                    id,
                                    seed: id.derive_seed(base_seed),
                                    worker: worker_index,
                                    deadline: job_deadline.map(JobDeadline::starting_now),
                                };
                                let job_started = Instant::now();
                                match catch_unwind(AssertUnwindSafe(|| {
                                    run_job(&mut worker, &context, job)
                                })) {
                                    Ok(value) => {
                                        let duration = job_started.elapsed();
                                        let record = JobRecord {
                                            job: index,
                                            seed: context.seed,
                                            worker: worker_index,
                                            micros: as_micros(duration),
                                        };
                                        sink.job_finished(&record);
                                        if let Some(deadline) = context.deadline {
                                            if deadline.expired() {
                                                sink.job_deadline_exceeded(
                                                    &record,
                                                    deadline.limit(),
                                                );
                                                if enforce_deadline {
                                                    record_failure(EngineError::JobTimedOut {
                                                        id,
                                                        elapsed: deadline.elapsed(),
                                                    });
                                                    abort.store(true, Ordering::Relaxed);
                                                }
                                            }
                                        }
                                        outputs.push(JobOutput {
                                            id,
                                            seed: context.seed,
                                            duration,
                                            value,
                                        });
                                    }
                                    Err(payload) => {
                                        record_failure(EngineError::JobPanicked {
                                            id,
                                            seed: context.seed,
                                            payload: payload_string(payload),
                                        });
                                        abort.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                            outputs
                        })
                    })
                    .collect();
                for handle in handles {
                    // Job and factory panics were caught above; a panic
                    // escaping here comes from the progress sink and is a
                    // bug in the caller — propagate it unchanged.
                    buffers.push(handle.join().unwrap_or_else(|p| resume_unwind(p)));
                }
            });
        }

        if let Some(error) = failure.into_inner().expect("failure slot lock") {
            return Err(error);
        }

        // Merge the per-worker buffers in job-id order. Each buffer is
        // already internally sorted (workers claim ids in increasing order),
        // but a plain sort keeps the invariant obvious and cheap relative to
        // any real workload.
        let mut outputs: Vec<JobOutput<T>> = buffers.into_iter().flatten().collect();
        outputs.sort_unstable_by_key(|output| output.id);
        debug_assert_eq!(outputs.len(), jobs.len());
        debug_assert!(outputs.iter().enumerate().all(|(i, o)| o.id.index() == i));

        sink.run_finished(&RunSummary {
            jobs: outputs.len(),
            threads,
            wall_micros: as_micros(started.elapsed()),
            busy_micros: outputs.iter().map(|o| as_micros(o.duration)).sum(),
        });
        Ok(outputs)
    }

    /// Like [`Engine::run`], but discards per-job timing and returns only the
    /// job values, still in job-id order. The common entry point for
    /// pipelines that aggregate results and do not export timings.
    ///
    /// # Errors
    ///
    /// Exactly as [`Engine::run`].
    pub fn run_values<J, W, T>(
        &self,
        jobs: &[J],
        make_worker: impl Fn(usize) -> W + Sync,
        run_job: impl Fn(&mut W, &JobContext, &J) -> T + Sync,
        sink: &dyn ProgressSink,
    ) -> Result<Vec<T>, EngineError>
    where
        J: Sync,
        T: Send,
    {
        Ok(self
            .run(jobs, make_worker, run_job, sink)?
            .into_iter()
            .map(|output| output.value)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullSink;

    #[test]
    fn empty_worklist_returns_empty_output() {
        let engine = Engine::new(4);
        let jobs: Vec<u32> = Vec::new();
        let outputs = engine
            .run(&jobs, |_| (), |_, _, job| *job, &NullSink)
            .expect("no panics");
        assert!(outputs.is_empty());
    }

    #[test]
    fn single_job_runs_on_one_thread() {
        let engine = Engine::new(8).with_base_seed(5);
        assert_eq!(engine.threads_for(1), 1);
        let outputs = engine
            .run(
                &[21u64],
                |_| (),
                |_, ctx, job| job * 2 + ctx.id.0 as u64,
                &NullSink,
            )
            .expect("no panics");
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].value, 42);
        assert_eq!(outputs[0].seed, JobId(0).derive_seed(5));
    }

    #[test]
    fn worker_setup_panic_is_reported() {
        let engine = Engine::new(2);
        let result = engine.run(
            &[1, 2, 3],
            |worker| {
                if worker == 0 {
                    panic!("factory exploded");
                }
            },
            |_, _, job| *job,
            &NullSink,
        );
        match result {
            Err(EngineError::WorkerSetupPanicked { worker: 0, payload }) => {
                assert!(payload.contains("factory exploded"));
            }
            other => panic!("expected worker-setup failure, got {other:?}"),
        }
    }

    #[test]
    fn error_rank_prefers_earliest_job() {
        let early = EngineError::JobPanicked {
            id: JobId(1),
            seed: 0,
            payload: String::new(),
        };
        let late = EngineError::JobPanicked {
            id: JobId(9),
            seed: 0,
            payload: String::new(),
        };
        let setup = EngineError::WorkerSetupPanicked {
            worker: 3,
            payload: String::new(),
        };
        let timeout = EngineError::JobTimedOut {
            id: JobId(0),
            elapsed: Duration::from_secs(1),
        };
        assert!(setup.rank() < early.rank());
        assert!(early.rank() < late.rank());
        assert!(late.rank() < timeout.rank(), "panics outrank timeouts");
    }

    #[test]
    fn jobs_without_deadline_see_none() {
        let engine = Engine::new(1);
        let outputs = engine
            .run(&[0u8], |_| (), |_, ctx, _| ctx.deadline, &NullSink)
            .expect("no panics");
        assert_eq!(outputs[0].value, None);
        assert_eq!(engine.job_deadline(), None);
    }

    #[test]
    fn cooperative_deadline_reports_but_does_not_fail() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct Overruns(AtomicUsize);
        impl ProgressSink for Overruns {
            fn job_deadline_exceeded(&self, _record: &JobRecord, _limit: Duration) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let sink = Overruns::default();
        let engine = Engine::new(1).with_job_deadline(Duration::from_millis(1));
        let outputs = engine
            .run(
                &[0usize, 1],
                |_| (),
                |_, ctx, &job| {
                    let deadline = ctx.deadline.expect("deadline configured");
                    assert_eq!(deadline.limit(), Duration::from_millis(1));
                    // Job 0 overruns its budget; job 1 finishes in time.
                    if job == 0 {
                        while !deadline.expired() {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    job
                },
                &sink,
            )
            .expect("cooperative mode never fails the run");
        assert_eq!(outputs.len(), 2);
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn enforced_deadline_aborts_with_timeout() {
        let engine = Engine::new(1).with_enforced_job_deadline(Duration::from_millis(1));
        let result = engine.run(
            &[(), ()],
            |_| (),
            |_, ctx, _| {
                let deadline = ctx.deadline.expect("deadline configured");
                while !deadline.expired() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            },
            &NullSink,
        );
        match result {
            Err(EngineError::JobTimedOut { id, elapsed }) => {
                assert_eq!(id, JobId(0));
                assert!(elapsed >= Duration::from_millis(1));
            }
            other => panic!("expected timeout failure, got {other:?}"),
        }
    }
}
