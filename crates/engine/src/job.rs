//! The [`Job`] identity model: stable ids, derived seeds, per-job timing.
//!
//! Every unit of work an experiment submits to the executor gets a [`JobId`]
//! equal to its index in the submitted worklist. The id is *stable*: it does
//! not depend on which worker runs the job or in which order jobs finish, so
//! everything derived from it — the per-job RNG seed, the position of the
//! job's result in the merged output, the rows of a timing artifact — is
//! identical across any thread count.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// Stable identity of one job within a run: its index in the worklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub usize);

impl JobId {
    /// The job's index in the submitted worklist.
    pub fn index(self) -> usize {
        self.0
    }

    /// Derives the job's RNG seed from a run-level base seed.
    ///
    /// Uses a SplitMix64 finalizer over `base ^ f(index)` so that adjacent
    /// job ids receive statistically unrelated seeds while the mapping stays
    /// a pure function of `(base, id)` — the cornerstone of the engine's
    /// determinism guarantee.
    pub fn derive_seed(self, base: u64) -> u64 {
        splitmix64(base ^ (self.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job #{}", self.0)
    }
}

/// The SplitMix64 output function (Steele, Lea, Flood; used by `rand` for
/// seeding): bijective on `u64`, so distinct job ids never collide.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Content-derived identity of a job, stable **across runs and processes**.
///
/// [`JobId`] is positional — it identifies a job within one submitted
/// worklist and is what the executor schedules and merges by. A `JobKey` is
/// the complementary identity for persistence: a `(namespace, key)` pair
/// derived from the job's *inputs* (e.g. `("lightsabre", <circuit content
/// hash>)`), so a result cache can recognise work it has already done even
/// when the worklist that resubmits it is shaped differently — a resumed
/// sharded run, a re-ordered suite, or a different tool subset.
///
/// The engine itself never interprets keys; pipelines use them to address
/// cache entries (`results/<namespace>/<key>.json` in the suite store).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobKey {
    namespace: String,
    key: String,
}

impl JobKey {
    /// Creates a key. `namespace` groups related work (typically a tool
    /// name); `key` identifies the input (typically a content hash). Both
    /// must be non-empty and path-safe (no separators), since caches use
    /// them as directory and file names.
    ///
    /// # Panics
    ///
    /// Panics if either part is empty or contains `/`, `\` or `.` path
    /// components that could escape a cache directory.
    pub fn new(namespace: impl Into<String>, key: impl Into<String>) -> Self {
        let namespace = namespace.into();
        let key = key.into();
        for part in [&namespace, &key] {
            assert!(!part.is_empty(), "job key parts must be non-empty");
            assert!(
                !part.contains(['/', '\\']) && part != "." && part != "..",
                "job key part {part:?} is not path-safe"
            );
        }
        JobKey { namespace, key }
    }

    /// The grouping component (cache subdirectory).
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// The input-identity component (cache file stem).
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.namespace, self.key)
    }
}

/// Wall-clock deadline for one job, started when the executor hands the job
/// to its worker ([`crate::Engine::with_job_deadline`]).
///
/// Cancellation is *cooperative*: the executor cannot preempt a running
/// closure, so long-running jobs are expected to poll
/// [`expired`](Self::expired) (or pass [`expires_at`](Self::expires_at) to
/// an interruptible solver) and degrade to a partial result. The executor
/// checks again when the job returns and reports overruns through
/// [`crate::ProgressSink::job_deadline_exceeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDeadline {
    started: Instant,
    limit: Duration,
}

impl JobDeadline {
    /// A deadline of `limit` starting now.
    pub fn starting_now(limit: Duration) -> Self {
        JobDeadline {
            started: Instant::now(),
            limit,
        }
    }

    /// The budget the job was given.
    pub fn limit(&self) -> Duration {
        self.limit
    }

    /// Wall-clock time since the deadline started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.started.elapsed() >= self.limit
    }

    /// The instant the budget runs out — the form interruptible solvers
    /// take ([`Instant`] comparisons are cheaper than re-deriving elapsed
    /// time in an inner loop).
    pub fn expires_at(&self) -> Instant {
        self.started + self.limit
    }
}

/// Per-job execution context handed to the job closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobContext {
    /// The job's stable identity.
    pub id: JobId,
    /// Seed derived from the run's base seed and the job id (stable across
    /// thread counts; see [`JobId::derive_seed`]).
    pub seed: u64,
    /// Index of the worker executing the job (0-based). **Not** stable across
    /// runs or thread counts — use it only for worker-local bookkeeping,
    /// never for anything that feeds into results.
    pub worker: usize,
    /// The job's wall-clock budget, when the engine was configured with one
    /// ([`crate::Engine::with_job_deadline`]); `None` means unbounded.
    pub deadline: Option<JobDeadline>,
}

/// One job's result along with its identity and measured wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput<T> {
    /// The job's stable identity.
    pub id: JobId,
    /// The seed the job ran with.
    pub seed: u64,
    /// Wall-clock time spent inside the job closure.
    pub duration: Duration,
    /// The value the job closure returned.
    pub value: T,
}

/// Timing record of one completed job, as streamed to progress sinks and
/// exported in nightly timing artifacts. Serializes to flat JSON (the
/// duration is stored in integer microseconds, not a `Duration`, so the
/// artifact is toolchain-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Index of the job in the worklist.
    pub job: usize,
    /// Seed the job ran with.
    pub seed: u64,
    /// Worker that executed the job (schedule-dependent; informational only).
    pub worker: usize,
    /// Wall-clock microseconds spent inside the job closure.
    pub micros: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = JobId(0).derive_seed(42);
        let b = JobId(1).derive_seed(42);
        let c = JobId(0).derive_seed(43);
        // Pure function of (base, id): re-deriving yields the same seed.
        assert_eq!(a, JobId(0).derive_seed(42));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // 1024 consecutive ids under one base never collide.
        let seeds: std::collections::BTreeSet<u64> =
            (0..1024).map(|i| JobId(i).derive_seed(7)).collect();
        assert_eq!(seeds.len(), 1024);
    }

    #[test]
    fn job_keys_are_path_safe_identities() {
        let key = JobKey::new("lightsabre", "6c62272e07bb0142");
        assert_eq!(key.namespace(), "lightsabre");
        assert_eq!(key.key(), "6c62272e07bb0142");
        assert_eq!(key.to_string(), "lightsabre/6c62272e07bb0142");
        assert_eq!(key, JobKey::new("lightsabre", "6c62272e07bb0142"));
        assert_ne!(key, JobKey::new("tket", "6c62272e07bb0142"));
    }

    #[test]
    #[should_panic(expected = "not path-safe")]
    fn job_keys_reject_path_separators() {
        JobKey::new("a/b", "c");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn job_keys_reject_empty_parts() {
        JobKey::new("", "c");
    }

    #[test]
    fn job_id_displays_its_index() {
        assert_eq!(JobId(17).to_string(), "job #17");
        assert_eq!(JobId(17).index(), 17);
    }

    #[test]
    fn job_record_serializes_flat() {
        let record = JobRecord {
            job: 3,
            seed: 9,
            worker: 1,
            micros: 1500,
        };
        let json = serde_json::to_string(&record).expect("serialize");
        assert!(json.contains("\"job\""));
        let back: JobRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, record);
    }
}
