//! Streaming progress and metrics sinks.
//!
//! The executor reports every completed job to a [`ProgressSink`] while the
//! run is still going, so long experiments can stream progress to stderr and
//! nightly CI can collect per-job wall-clock timings without the pipelines
//! knowing anything about either. Sinks observe jobs in **completion order**
//! (schedule-dependent); anything that must be deterministic sorts by job id,
//! as [`TimingSink::sorted_records`] does.

use crate::job::JobRecord;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Summary of a finished run, handed to [`ProgressSink::run_finished`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock microseconds of the whole run (claim → merge).
    pub wall_micros: u64,
    /// Sum of per-job wall-clock microseconds (≈ `wall_micros × threads`
    /// when the run scales perfectly; the gap measures scheduling loss).
    pub busy_micros: u64,
}

/// Observer of executor progress. All methods have empty defaults so sinks
/// implement only what they need; implementations must be `Sync` because
/// every worker thread reports through the same sink.
pub trait ProgressSink: Sync {
    /// Called once before the first job is claimed.
    fn run_started(&self, total_jobs: usize, threads: usize) {
        let _ = (total_jobs, threads);
    }

    /// Called by the executing worker as each job finishes.
    fn job_finished(&self, record: &JobRecord) {
        let _ = record;
    }

    /// Called (after [`job_finished`](Self::job_finished)) when a job ran
    /// past the engine's per-job deadline
    /// ([`crate::Engine::with_job_deadline`]). `limit` is the configured
    /// budget; the overrun is `record.micros` minus the budget. Cancellation
    /// is cooperative, so this fires when the overrunning job *returns* —
    /// jobs that degrade in time (e.g. a solver returning unproven at its
    /// deadline) land close to the budget rather than far past it.
    fn job_deadline_exceeded(&self, record: &JobRecord, limit: Duration) {
        let _ = (record, limit);
    }

    /// Called once after all results are merged.
    fn run_finished(&self, summary: &RunSummary) {
        let _ = summary;
    }
}

/// Sink that ignores everything (the default for library callers).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {}

/// Streams coarse progress lines to stderr: one line every `every` completed
/// jobs plus a final summary. Designed for the CLI binaries, where per-job
/// lines would be noise but silence over a multi-minute run is worse.
#[derive(Debug)]
pub struct StderrProgress {
    label: String,
    every: usize,
    completed: AtomicUsize,
    total: AtomicUsize,
}

impl StderrProgress {
    /// Creates a sink labelled `label` that prints every `every` jobs.
    pub fn new(label: impl Into<String>, every: usize) -> Self {
        StderrProgress {
            label: label.into(),
            every: every.max(1),
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
        }
    }
}

impl ProgressSink for StderrProgress {
    fn run_started(&self, total_jobs: usize, threads: usize) {
        // Reset the counter so one sink can serve several consecutive runs
        // (the ablations pipeline drives ~10 engine runs through one sink).
        self.completed.store(0, Ordering::Relaxed);
        self.total.store(total_jobs, Ordering::Relaxed);
        eprintln!(
            "{}: {} jobs on {} thread{}",
            self.label,
            total_jobs,
            threads,
            if threads == 1 { "" } else { "s" }
        );
    }

    fn job_finished(&self, _record: &JobRecord) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed);
        if done % self.every == 0 && done < total {
            eprintln!("{}: {done}/{total} jobs done", self.label);
        }
    }

    fn run_finished(&self, summary: &RunSummary) {
        eprintln!(
            "{}: {} jobs in {:.2}s wall ({:.2}s cpu-busy, {} threads)",
            self.label,
            summary.jobs,
            summary.wall_micros as f64 / 1e6,
            summary.busy_micros as f64 / 1e6,
            summary.threads
        );
    }
}

/// Collects every [`JobRecord`] plus the run summary of the **most recent**
/// engine run, for export as a JSON timing artifact (nightly CI uploads one
/// per engine smoke run). `run_started` clears the previous run's records,
/// so reusing one sink across several runs yields the last run's report
/// instead of an id-colliding merge; attach a fresh sink per run to keep
/// every report.
#[derive(Debug, Default)]
pub struct TimingSink {
    records: Mutex<Vec<JobRecord>>,
    summary: Mutex<Option<RunSummary>>,
}

/// The JSON document [`TimingSink::report`] produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Run-level totals.
    pub summary: RunSummary,
    /// One record per job, sorted by job id.
    pub jobs: Vec<JobRecord>,
}

impl TimingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected records sorted by job id (deterministic across thread
    /// counts, unlike the completion order they arrived in).
    pub fn sorted_records(&self) -> Vec<JobRecord> {
        let mut records = self.records.lock().expect("timing sink poisoned").clone();
        records.sort_unstable_by_key(|r| r.job);
        records
    }

    /// Builds the exportable report; `None` until a run has finished.
    pub fn report(&self) -> Option<TimingReport> {
        let summary = (*self.summary.lock().expect("timing sink poisoned"))?;
        Some(TimingReport {
            summary,
            jobs: self.sorted_records(),
        })
    }
}

impl ProgressSink for TimingSink {
    fn run_started(&self, _total_jobs: usize, _threads: usize) {
        self.records.lock().expect("timing sink poisoned").clear();
        *self.summary.lock().expect("timing sink poisoned") = None;
    }

    fn job_finished(&self, record: &JobRecord) {
        self.records
            .lock()
            .expect("timing sink poisoned")
            .push(*record);
    }

    fn run_finished(&self, summary: &RunSummary) {
        *self.summary.lock().expect("timing sink poisoned") = Some(*summary);
    }
}

/// Fans every callback out to several sinks, so a CLI can stream progress to
/// stderr *and* collect timings for export from the same run.
#[derive(Default)]
pub struct TeeSink<'a> {
    sinks: Vec<&'a dyn ProgressSink>,
}

impl<'a> TeeSink<'a> {
    /// Creates a tee over the given sinks (called in order).
    pub fn new(sinks: Vec<&'a dyn ProgressSink>) -> Self {
        TeeSink { sinks }
    }
}

impl ProgressSink for TeeSink<'_> {
    fn run_started(&self, total_jobs: usize, threads: usize) {
        for sink in &self.sinks {
            sink.run_started(total_jobs, threads);
        }
    }

    fn job_finished(&self, record: &JobRecord) {
        for sink in &self.sinks {
            sink.job_finished(record);
        }
    }

    fn job_deadline_exceeded(&self, record: &JobRecord, limit: Duration) {
        for sink in &self.sinks {
            sink.job_deadline_exceeded(record, limit);
        }
    }

    fn run_finished(&self, summary: &RunSummary) {
        for sink in &self.sinks {
            sink.run_finished(summary);
        }
    }
}

/// Converts a [`Duration`] to the microsecond resolution used in records,
/// saturating instead of overflowing for pathological (>584k-year) runs.
pub(crate) fn as_micros(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_sink_sorts_by_job_id() {
        let sink = TimingSink::new();
        for job in [2usize, 0, 1] {
            sink.job_finished(&JobRecord {
                job,
                seed: job as u64,
                worker: 0,
                micros: 10,
            });
        }
        assert!(sink.report().is_none(), "no summary before run_finished");
        sink.run_finished(&RunSummary {
            jobs: 3,
            threads: 2,
            wall_micros: 30,
            busy_micros: 30,
        });
        let report = sink.report().expect("summary recorded");
        let ids: Vec<usize> = report.jobs.iter().map(|r| r.job).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: TimingReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }

    #[test]
    fn timing_sink_captures_only_the_latest_run() {
        let sink = TimingSink::new();
        for run in 0..3u64 {
            sink.run_started(2, 1);
            for job in 0..2 {
                sink.job_finished(&JobRecord {
                    job,
                    seed: run,
                    worker: 0,
                    micros: run * 100,
                });
            }
            sink.run_finished(&RunSummary {
                jobs: 2,
                threads: 1,
                wall_micros: run * 200,
                busy_micros: run * 200,
            });
        }
        let report = sink.report().expect("finished");
        // No id collisions from earlier runs; summary matches the records.
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs.iter().all(|r| r.seed == 2));
        assert_eq!(report.summary.wall_micros, 400);
    }

    #[test]
    fn tee_sink_forwards_to_every_sink() {
        let a = TimingSink::new();
        let b = TimingSink::new();
        let tee = TeeSink::new(vec![&a, &b]);
        tee.run_started(1, 1);
        tee.job_finished(&JobRecord {
            job: 0,
            seed: 4,
            worker: 0,
            micros: 2,
        });
        tee.run_finished(&RunSummary {
            jobs: 1,
            threads: 1,
            wall_micros: 2,
            busy_micros: 2,
        });
        assert_eq!(a.sorted_records(), b.sorted_records());
        assert_eq!(a.report().expect("finished").summary.jobs, 1);
        assert_eq!(b.report().expect("finished").summary.jobs, 1);
    }

    #[test]
    fn stderr_progress_counts_without_panicking() {
        let sink = StderrProgress::new("test", 2);
        sink.run_started(3, 1);
        for job in 0..3 {
            sink.job_finished(&JobRecord {
                job,
                seed: 0,
                worker: 0,
                micros: 1,
            });
        }
        sink.run_finished(&RunSummary {
            jobs: 3,
            threads: 1,
            wall_micros: 3,
            busy_micros: 3,
        });
        assert_eq!(sink.completed.load(Ordering::Relaxed), 3);
    }
}
