//! Thread-count resolution shared by every pipeline and CLI.
//!
//! The whole workspace uses one convention: a thread count of
//! [`AUTO_THREADS`] (`0`) means "use every core the OS reports"
//! ([`std::thread::available_parallelism`]), and any positive value is an
//! explicit override. Configs store the raw value so they serialize
//! portably; resolution to a concrete count happens only at run time.

/// Sentinel thread count meaning "resolve to [`available_threads`] at run
/// time". Stored in configs instead of a resolved count so that a config
/// serialized on a 128-core machine does not pin a 4-core machine to 128
/// threads.
pub const AUTO_THREADS: usize = 0;

/// Number of hardware threads the OS reports, with a floor of 1 (the query
/// can fail on exotic platforms, in which case serial execution is the only
/// safe answer).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested thread count: [`AUTO_THREADS`] becomes
/// [`available_threads`], anything else is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == AUTO_THREADS {
        available_threads()
    } else {
        requested
    }
}

/// Parses the shared `--threads N` CLI flag out of pre-collected arguments.
///
/// Returns `None` when the flag is absent (callers then fall back to
/// [`AUTO_THREADS`]). A present flag with a missing or non-numeric value is
/// a usage error and panics with a usage message, matching how the bench
/// binaries treat malformed flags.
pub fn threads_from_args(args: &[String]) -> Option<usize> {
    let position = args.iter().position(|a| a == "--threads")?;
    let value = args
        .get(position + 1)
        .unwrap_or_else(|| panic!("--threads requires a value (a positive integer or 0 for auto)"));
    let threads = value
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("--threads value `{value}` is not a non-negative integer"));
    Some(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn auto_resolves_to_available_parallelism() {
        assert_eq!(resolve_threads(AUTO_THREADS), available_threads());
        assert!(resolve_threads(AUTO_THREADS) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn parses_threads_flag() {
        assert_eq!(threads_from_args(&args(&["--full"])), None);
        assert_eq!(threads_from_args(&args(&["--threads", "8"])), Some(8));
        assert_eq!(
            threads_from_args(&args(&["--full", "--threads", "0"])),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "--threads requires a value")]
    fn missing_threads_value_panics() {
        threads_from_args(&args(&["--threads"]));
    }

    #[test]
    #[should_panic(expected = "is not a non-negative integer")]
    fn malformed_threads_value_panics() {
        threads_from_args(&args(&["--threads", "many"]));
    }
}
