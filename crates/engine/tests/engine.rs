//! Integration tests for the executor's core contracts: determinism across
//! thread counts, correct stealing under skewed job durations, and structured
//! panic propagation.

use proptest::prelude::*;
use qubikos_engine::{Engine, EngineError, JobId, NullSink, TimingSink};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Runs the same job function over `jobs` at a given thread count and
/// returns `(value, seed)` pairs in merged output order.
fn run_at<T: Send + Clone>(
    threads: usize,
    base_seed: u64,
    jobs: &[u64],
    job_fn: impl Fn(u64, u64) -> T + Sync,
) -> Vec<(T, u64)> {
    Engine::new(threads)
        .with_base_seed(base_seed)
        .run(
            jobs,
            |_| (),
            |_, ctx, &job| job_fn(job, ctx.seed),
            &NullSink,
        )
        .expect("no panics")
        .into_iter()
        .map(|o| (o.value, o.seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The satellite's headline property: for any worklist and base seed, the
    /// merged output (values *and* derived seeds) is identical across 1, 2,
    /// and 8 threads.
    #[test]
    fn results_identical_across_thread_counts(
        jobs in proptest::collection::vec(0u64..1_000_000, 0..40),
        base_seed in 0u64..1000,
    ) {
        let job_fn = |job: u64, seed: u64| job.wrapping_mul(31).wrapping_add(seed);
        let serial = run_at(1, base_seed, &jobs, job_fn);
        let two = run_at(2, base_seed, &jobs, job_fn);
        let eight = run_at(8, base_seed, &jobs, job_fn);
        prop_assert_eq!(&serial, &two);
        prop_assert_eq!(&serial, &eight);
    }
}

/// Wildly skewed job durations exercise the stealing path: one job takes
/// ~50ms while 30 others take microseconds. With static half/half chunking
/// the long job's chunk-mate jobs would wait behind it; with stealing the
/// other worker drains everything else. Either way the merged output must be
/// in job order — and every job must run exactly once.
#[test]
fn skewed_durations_steal_and_merge_in_order() {
    // Job 0 is the slow one; it sits at the front so a static-chunking
    // executor would hide the bug (its chunk would be claimed first anyway).
    let jobs: Vec<u64> = (0..31).collect();
    let executions = AtomicUsize::new(0);
    let outputs = Engine::new(4)
        .run(
            &jobs,
            |_| (),
            |_, _, &job| {
                executions.fetch_add(1, Ordering::Relaxed);
                if job == 0 {
                    std::thread::sleep(Duration::from_millis(50));
                }
                job * 10
            },
            &NullSink,
        )
        .expect("no panics");
    assert_eq!(executions.load(Ordering::Relaxed), 31);
    let values: Vec<u64> = outputs.iter().map(|o| o.value).collect();
    assert_eq!(values, (0..31).map(|j| j * 10).collect::<Vec<_>>());
    // The slow job's timing is visible in its output record.
    assert!(outputs[0].duration >= Duration::from_millis(50));
    assert!(outputs[1].duration < Duration::from_millis(50));
}

/// Regression test for the seed's `expect("no worker panicked holding the
/// lock")` failure mode: a panicking job must surface the failing job's
/// identity and panic payload, not a poisoned-mutex message.
#[test]
fn job_panic_reports_identity_and_payload() {
    let jobs: Vec<u64> = (0..20).collect();
    let result = Engine::new(4).with_base_seed(3).run(
        &jobs,
        |_| (),
        |_, _, &job| {
            if job == 7 {
                panic!("router produced an invalid routing on instance {job}");
            }
            job
        },
        &NullSink,
    );
    match result {
        Err(EngineError::JobPanicked { id, seed, payload }) => {
            assert_eq!(id, JobId(7));
            assert_eq!(seed, JobId(7).derive_seed(3));
            assert!(payload.contains("invalid routing on instance 7"));
            let rendered = EngineError::JobPanicked { id, seed, payload }.to_string();
            assert!(rendered.contains("job #7"), "got: {rendered}");
        }
        other => panic!("expected a job panic, got {other:?}"),
    }
}

/// When several jobs panic concurrently, the reported failure is the one
/// nearest the start of the worklist, so failure reports are reproducible.
#[test]
fn earliest_panicking_job_wins() {
    let jobs: Vec<u64> = (0..16).collect();
    for _ in 0..8 {
        let result = Engine::new(8).run(
            &jobs,
            |_| (),
            |_, _, &job| {
                // Every job from 4 up panics; workers race to report.
                assert!(job < 4, "boom at {job}");
            },
            &NullSink,
        );
        match result {
            Err(EngineError::JobPanicked { id, .. }) => {
                // Job 4 is the earliest possible panic. Concurrent workers
                // may already be past it when the abort flag rises, but the
                // winner can never precede it.
                assert!(id.index() >= 4, "job {id} cannot have panicked");
            }
            other => panic!("expected a job panic, got {other:?}"),
        }
    }
}

/// Per-worker state is built once per worker and reused across that worker's
/// jobs (the router-reuse optimization relies on exactly this).
#[test]
fn worker_state_is_built_once_per_worker_and_reused() {
    let factory_calls = AtomicUsize::new(0);
    let jobs: Vec<u64> = (0..64).collect();
    let outputs = Engine::new(2)
        .run(
            &jobs,
            |worker| {
                factory_calls.fetch_add(1, Ordering::Relaxed);
                (worker, 0usize) // (worker id, jobs seen by this state)
            },
            |state, _, &job| {
                state.1 += 1;
                (job, state.1)
            },
            &NullSink,
        )
        .expect("no panics");
    assert_eq!(factory_calls.load(Ordering::Relaxed), 2);
    // Every job ran against a reused state: the per-state counters across
    // all outputs must cover 1..=k for each worker's share, summing to 64.
    let total_jobs: usize = outputs
        .iter()
        .map(|o| o.value.1)
        .filter(|&seen| seen == 1)
        .count();
    assert!(total_jobs <= 2, "at most one counter reset per worker");
    assert_eq!(outputs.len(), 64);
}

/// The timing sink observes every job exactly once and its sorted export is
/// in job order even though completion order is schedule-dependent.
#[test]
fn timing_sink_sees_every_job() {
    let jobs: Vec<u64> = (0..40).collect();
    let sink = TimingSink::new();
    Engine::new(4)
        .with_base_seed(11)
        .run(&jobs, |_| (), |_, _, &job| job, &sink)
        .expect("no panics");
    let report = sink.report().expect("run finished");
    assert_eq!(report.summary.jobs, 40);
    assert_eq!(report.jobs.len(), 40);
    for (index, record) in report.jobs.iter().enumerate() {
        assert_eq!(record.job, index);
        assert_eq!(record.seed, JobId(index).derive_seed(11));
    }
}
