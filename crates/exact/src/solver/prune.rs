//! Admissible in-search lower bound on the SWAPs still required.
//!
//! The pre-refactor prune only took the *maximum* per-gate deficit
//! `distance − 1` over pending gates with both qubits placed. This module
//! strengthens it with a packing argument over gates with pairwise-disjoint
//! qubit supports:
//!
//! * executing gate `g` requires its qubits at distance 1, so `g` needs at
//!   least `d(g) − 1` distance reduction, and a single SWAP reduces `d(g)`
//!   by at most 1 (a SWAP moving *both* of `g`'s qubits just exchanges them,
//!   changing nothing);
//! * a SWAP moves exactly two program qubits, and over a family of gates
//!   with pairwise-disjoint supports each moved qubit belongs to at most one
//!   family member — so one SWAP reduces the family's total deficit
//!   `D = Σ (d(g) − 1)` by at most 2;
//! * hence at least `⌈D/2⌉` SWAPs are needed, on top of the per-gate maximum
//!   (executions never move qubits, so distances change only through SWAPs).
//!
//! Every *unexecuted* gate participates, ready or not: it must reach
//! distance 1 eventually, whatever its dependencies. That makes the bound
//! invariant under greedy execution (greedy only executes distance-1 gates,
//! which carry deficit 0), which is what lets the search evaluate it on a
//! child *before* recursing — a bound-refuted child is never expanded at
//! all.
//!
//! The family is chosen greedily by descending deficit, which maximises the
//! packed sum in this small regime and keeps the check O(pending·log) per
//! candidate move with zero allocations (scratch buffers are reused across
//! the search).

use super::state::{SearchState, UNPLACED};
use qubikos_arch::Architecture;
use qubikos_circuit::DependencyDag;

/// Reusable scratch for [`exceeds_swap_budget`].
pub(crate) struct PruneScratch {
    /// Pending both-placed gates as `(deficit, qubit_a, qubit_b)`.
    pending: Vec<(usize, usize, usize)>,
    /// Program qubits already claimed by the greedy disjoint family.
    claimed: Vec<bool>,
    /// Qubits to unclaim after the scan (avoids clearing the whole vector).
    touched: Vec<usize>,
}

impl PruneScratch {
    /// Creates scratch for a program with `num_program` qubits.
    pub(crate) fn new(num_program: usize) -> Self {
        PruneScratch {
            pending: Vec::with_capacity(16),
            claimed: vec![false; num_program],
            touched: Vec::with_capacity(8),
        }
    }
}

/// Returns `true` when the admissible lower bound on the SWAPs needed to
/// finish the circuit from `state` — the maximum of the per-gate deficit and
/// the disjoint-family packing bound `⌈D/2⌉` — provably exceeds `budget`,
/// exiting as early as a single gate's deficit settles the answer.
pub(crate) fn exceeds_swap_budget(
    scratch: &mut PruneScratch,
    state: &SearchState,
    dag: &DependencyDag,
    arch: &Architecture,
    budget: usize,
) -> bool {
    scratch.pending.clear();
    for node in 0..dag.len() {
        if state.is_executed(node) {
            continue;
        }
        let (a, b) = dag.qubit_pair(node);
        let (pa, pb) = (state.position(a), state.position(b));
        if pa == UNPLACED || pb == UNPLACED {
            continue;
        }
        let deficit = arch.distance(pa, pb).saturating_sub(1);
        if deficit > budget {
            return true;
        }
        if deficit > 0 {
            scratch.pending.push((deficit, a, b));
        }
    }
    if scratch.pending.len() < 2 {
        return false; // per-gate maximum already known ≤ budget
    }

    // Greedy packing: largest deficits first, skipping gates whose support
    // intersects an already-claimed qubit. Sorting by (deficit desc, qubits)
    // keeps the choice — and therefore `nodes_explored` — deterministic.
    scratch
        .pending
        .sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    let mut packed_sum = 0usize;
    for &(deficit, a, b) in &scratch.pending {
        if scratch.claimed[a] || scratch.claimed[b] {
            continue;
        }
        scratch.claimed[a] = true;
        scratch.claimed[b] = true;
        scratch.touched.push(a);
        scratch.touched.push(b);
        packed_sum += deficit;
    }
    for q in scratch.touched.drain(..) {
        scratch.claimed[q] = false;
    }
    packed_sum.div_ceil(2) > budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::dedup::ZobristKeys;
    use qubikos_arch::devices;
    use qubikos_circuit::{Circuit, Gate};

    /// The exact bound implied by [`exceeds_swap_budget`]: the smallest
    /// budget the state does *not* exceed.
    fn bound_for(circuit: &Circuit, placements: &[(usize, usize)], arch: &Architecture) -> usize {
        let dag = DependencyDag::from_circuit(circuit);
        let num_program = circuit.num_qubits();
        let keys = ZobristKeys::new(
            arch.num_qubits(),
            arch.num_couplers(),
            num_program,
            dag.len(),
        );
        let mut state = SearchState::new(&dag, arch.num_qubits(), num_program);
        for &(q, loc) in placements {
            state.place(&keys, q, loc);
        }
        let mut scratch = PruneScratch::new(num_program);
        (0..)
            .find(|&b| !exceeds_swap_budget(&mut scratch, &state, &dag, arch, b))
            .expect("bound is finite")
    }

    #[test]
    fn unplaced_gates_contribute_nothing() {
        let arch = devices::line(4);
        let c = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(2, 3)]);
        assert_eq!(bound_for(&c, &[], &arch), 0);
    }

    #[test]
    fn single_gate_bound_is_distance_minus_one() {
        let arch = devices::line(5);
        let c = Circuit::from_gates(2, [Gate::cx(0, 1)]);
        // Qubits at the line's ends: distance 4 → at least 3 SWAPs.
        assert_eq!(bound_for(&c, &[(0, 0), (1, 4)], &arch), 3);
    }

    #[test]
    fn disjoint_family_beats_the_per_gate_max() {
        // Three independent gates, each with deficit 1, on a 3×3 grid:
        // per-gate max is 1 but ⌈3/2⌉ = 2 SWAPs are provably needed.
        let arch = devices::grid(3, 3);
        let c = Circuit::from_gates(6, [Gate::cx(0, 1), Gate::cx(2, 3), Gate::cx(4, 5)]);
        // Grid locations: rows 0-2 are (0,1,2), (3,4,5), (6,7,8). Pairs at
        // distance 2: (0,2), (3,5), (6,8).
        let placements = [(0, 0), (1, 2), (2, 3), (3, 5), (4, 6), (5, 8)];
        assert_eq!(bound_for(&c, &placements, &arch), 2);
    }

    #[test]
    fn overlapping_supports_fall_back_to_the_max() {
        // Two pending gates sharing qubit 1 cannot both join the family.
        let arch = devices::line(5);
        let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2)]);
        let placements = [(0, 0), (1, 2), (2, 4)];
        assert_eq!(bound_for(&c, &placements, &arch), 1);
    }

    #[test]
    fn non_ready_gates_still_count() {
        // A dependency chain: the second gate is not ready, but its placed
        // distance still lower-bounds the total.
        let arch = devices::line(5);
        let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(0, 2)]);
        let placements = [(0, 0), (1, 1), (2, 4)];
        // Gate (0,1) is executable (deficit 0); gate (0,2) sits at distance
        // 4 → 3 SWAPs, even though it is behind the first gate in the DAG.
        assert_eq!(bound_for(&c, &placements, &arch), 3);
    }
}
