//! Exhaustive minimal-SWAP search.
//!
//! The solver decides, for increasing `k`, whether the circuit can be
//! executed with at most `k` SWAP gates under *some* initial mapping. The
//! search assigns program qubits to physical qubits lazily (a program qubit
//! is only pinned down at the moment its first gate executes), which keeps
//! the branching factor independent of the device size for sparsely-used
//! devices while remaining complete:
//!
//! * executing a ready gate whose qubits are already mapped to adjacent
//!   locations is always done greedily (no choice is lost);
//! * a ready gate with unmapped qubits branches over every placement that
//!   makes it executable right now — deferring the placement decision to
//!   this moment is complete because an unmapped qubit's earlier positions
//!   cannot have influenced anything;
//! * a SWAP branches over every coupler with at least one mapped endpoint —
//!   SWAPs between two unmapped locations never change the reachable states.
//!
//! Infeasibility of `k-1` plus a witness at `k` proves optimality, exactly
//! the evidence OLSQ2 provides in the paper's §IV-A study.
//!
//! # Search-core architecture
//!
//! The DFS runs on one mutable [`state::SearchState`] with an undo journal
//! (no per-branch clones), deduplicates states through the Zobrist-hashed
//! transposition table in [`dedup`], canonicalizes SWAP sequences (no
//! immediate reversals; consecutive independent SWAPs in coupler-index
//! order), and prunes with the packing lower bound in [`prune`]. The
//! [`DependencyDag`] and all scratch are built **once per
//! [`ExactSolver::solve`]** and shared by every deepening iteration — the
//! transposition table included, since "state `S` cannot finish with `s`
//! SWAPs left" is a statement independent of the query that discovered it.
//!
//! The pre-refactor clone-per-branch DFS survives as [`reference`] for
//! differential tests and benchmarks.
//!
//! # Canonicalization soundness
//!
//! Both SWAP-ordering rules only prune move sequences that are *dominated*
//! by a sequence the search still explores:
//!
//! * **No immediate reversal.** Re-swapping the coupler just swapped, with
//!   no gate executed in between, returns to an earlier state with two fewer
//!   SWAPs left — any solution through it has a shorter counterpart without
//!   the pair.
//! * **Canonical order of consecutive independent SWAPs.** If SWAPs `e₂; e₁`
//!   on disjoint couplers run back-to-back (again, nothing executed between
//!   them), `e₁; e₂` reaches the same mapping. Greedy execution after `e₁`
//!   can only *add* executed gates, and having executed more gates never
//!   disables a continuation (executing a gate changes no positions, only
//!   clears dependencies) — so exploring the ordering with the smaller
//!   coupler index first loses nothing.
//!
//! Because these rules restrict a node's subtree based on the *incoming*
//! move, a state reached mid-SWAP-chain is not searched exhaustively in
//! isolation. Unrestricted transposition entries are therefore only
//! recorded at canonicalization-free contexts (after an execution, a
//! placement, or at the root), where the subtree is provably complete for
//! the state; restricted subtrees are recorded under a key qualified by the
//! incoming coupler, matching only the identical restriction. Probing the
//! *unrestricted* entry is safe from any context: it says no solution
//! exists from that state at all, which a fortiori covers the restricted
//! search.

pub mod reference;

pub(crate) mod dedup;
pub(crate) mod prune;
pub(crate) mod state;

use crate::lower_bound::swap_lower_bound;
use dedup::{TranspositionTable, ZobristKeys};
use prune::{exceeds_swap_budget, PruneScratch};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DependencyDag};
use qubikos_graph::Edge;
use serde::{Deserialize, Serialize};
use state::{SearchState, UNPLACED};
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    /// Number of search-core constructions (hence [`DependencyDag`] builds)
    /// on this thread — the regression counter behind the
    /// build-the-DAG-once-per-solve guarantee.
    static DAG_BUILDS: Cell<usize> = const { Cell::new(0) };
}

/// Number of exact-search [`DependencyDag`] builds performed by this thread
/// so far. A single [`ExactSolver::solve`] increments it exactly once, no
/// matter how many deepening iterations it runs.
pub fn dag_builds_on_this_thread() -> usize {
    DAG_BUILDS.with(Cell::get)
}

/// Configuration of the exact solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactConfig {
    /// Largest SWAP count to try before giving up.
    pub max_swaps: usize,
    /// Maximum number of search nodes per feasibility query; when exceeded
    /// the query (and therefore the overall result) is reported as unproven.
    pub node_budget: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_swaps: 8,
            node_budget: 20_000_000,
        }
    }
}

/// How a single bounded feasibility query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// A routing with at most the queried number of SWAPs exists.
    Feasible,
    /// No such routing exists (exhaustively proven).
    Infeasible,
    /// The node budget ran out before the search completed.
    BudgetExhausted,
    /// The wall-clock deadline passed before the search completed
    /// ([`ExactSolver::solve_with_deadline`]).
    DeadlineExceeded,
}

/// Per-`k` statistics of one feasibility query inside a solve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueryStats {
    /// The queried SWAP budget `k`.
    pub swaps: usize,
    /// Search nodes expanded by this query. When the outcome is
    /// [`QueryOutcome::BudgetExhausted`] this equals the configured
    /// `node_budget` exactly: the query hard-stops at the boundary.
    pub nodes: u64,
    /// Wall-clock time of this query in microseconds.
    pub wall_micros: u64,
    /// How the query ended.
    pub outcome: QueryOutcome,
}

/// Outcome of an exact solve.
///
/// Deliberately not `PartialEq`: `wall_micros` varies run to run. Compare
/// the semantic fields (`optimal_swaps`, `proven`, `nodes_explored`)
/// individually, as the golden fixtures do.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactResult {
    /// The optimal SWAP count, if the solver found a feasible `k` within
    /// `max_swaps`.
    pub optimal_swaps: Option<usize>,
    /// `true` when the reported value is certain: every smaller SWAP count
    /// was exhaustively refuted within the node budget.
    pub proven: bool,
    /// Total number of search nodes expanded across all feasibility queries.
    pub nodes_explored: u64,
    /// Per-`k` node counts and timings, in deepening order — shows where the
    /// budget went.
    pub queries: Vec<QueryStats>,
    /// Total wall-clock time of the solve in microseconds.
    pub wall_micros: u64,
    /// `true` when the solve was cut short by a wall-clock deadline
    /// ([`ExactSolver::solve_with_deadline`]) rather than finishing or
    /// exhausting its node budget. Implies `proven == false`.
    pub deadline_exceeded: bool,
}

/// Exhaustive exact minimal-SWAP solver (OLSQ2 substitute).
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    config: ExactConfig,
}

/// Answer of a single bounded feasibility query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feasibility {
    /// A routing with at most the queried number of SWAPs exists.
    Feasible,
    /// No such routing exists (exhaustively proven).
    Infeasible,
    /// The node budget ran out before the search completed.
    Unknown,
}

impl ExactSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ExactConfig) -> Self {
        ExactSolver { config }
    }

    /// Finds the minimum SWAP count for `circuit` on `arch`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the device provides.
    pub fn solve(&self, circuit: &Circuit, arch: &Architecture) -> ExactResult {
        self.solve_with_deadline(circuit, arch, None)
    }

    /// Like [`solve`](Self::solve), but aborts the search once `deadline`
    /// passes (checked every 1024 nodes, so overruns are bounded by the cost
    /// of ~1024 node expansions). A cut-short solve reports
    /// `deadline_exceeded: true`, `proven: false`, and
    /// [`QueryOutcome::DeadlineExceeded`] on its final query — the same
    /// graceful degradation as an exhausted node budget, so callers that
    /// already treat `unproven` correctly need no new handling.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the device provides.
    pub fn solve_with_deadline(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        deadline: Option<Instant>,
    ) -> ExactResult {
        assert!(
            circuit.num_qubits() <= arch.num_qubits(),
            "circuit does not fit the device"
        );
        let solve_start = Instant::now();
        let mut core = SearchCore::new(circuit, arch, self.config.node_budget, deadline);
        let mut queries = Vec::new();
        let mut nodes = 0u64;
        let start = swap_lower_bound(circuit, arch);
        for k in start..=self.config.max_swaps {
            let query_start = Instant::now();
            let feasibility = core.feasible_with(k);
            nodes += core.nodes;
            queries.push(QueryStats {
                swaps: k,
                nodes: core.nodes,
                wall_micros: query_start.elapsed().as_micros() as u64,
                outcome: match feasibility {
                    Feasibility::Feasible => QueryOutcome::Feasible,
                    Feasibility::Infeasible => QueryOutcome::Infeasible,
                    Feasibility::Unknown if core.timed_out => QueryOutcome::DeadlineExceeded,
                    Feasibility::Unknown => QueryOutcome::BudgetExhausted,
                },
            });
            match feasibility {
                Feasibility::Feasible => {
                    return ExactResult {
                        optimal_swaps: Some(k),
                        // All smaller k (if any beyond the certified lower
                        // bound) were refuted exhaustively, so the value is
                        // proven.
                        proven: true,
                        nodes_explored: nodes,
                        queries,
                        wall_micros: solve_start.elapsed().as_micros() as u64,
                        deadline_exceeded: false,
                    };
                }
                Feasibility::Infeasible => continue,
                Feasibility::Unknown => break,
            }
        }
        ExactResult {
            optimal_swaps: None,
            proven: false,
            nodes_explored: nodes,
            queries,
            wall_micros: solve_start.elapsed().as_micros() as u64,
            deadline_exceeded: core.timed_out,
        }
    }

    /// Checks whether `circuit` can be routed with at most `max_swaps` SWAPs.
    ///
    /// Returns `None` when the node budget was exhausted before an answer was
    /// established.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the device provides.
    pub fn is_feasible(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        max_swaps: usize,
    ) -> Option<bool> {
        assert!(
            circuit.num_qubits() <= arch.num_qubits(),
            "circuit does not fit the device"
        );
        let mut core = SearchCore::new(circuit, arch, self.config.node_budget, None);
        match core.feasible_with(max_swaps) {
            Feasibility::Feasible => Some(true),
            Feasibility::Infeasible => Some(false),
            Feasibility::Unknown => None,
        }
    }
}

/// All per-solve search machinery: the DAG, the Zobrist keys, the
/// transposition table, the mutable state, and the prune scratch. Built once
/// per [`ExactSolver::solve`] and reused across deepening iterations.
struct SearchCore<'a> {
    arch: &'a Architecture,
    dag: DependencyDag,
    couplers: Vec<Edge>,
    keys: ZobristKeys,
    tt: TranspositionTable,
    state: SearchState,
    scratch: PruneScratch,
    budget: u64,
    /// Nodes expanded by the current query.
    nodes: u64,
    /// Wall-clock cutoff; polled every 1024 nodes.
    deadline: Option<Instant>,
    /// Set once the deadline fires; distinguishes a deadline abort from a
    /// budget abort (both surface as [`Feasibility::Unknown`]).
    timed_out: bool,
}

impl<'a> SearchCore<'a> {
    fn new(
        circuit: &Circuit,
        arch: &'a Architecture,
        budget: u64,
        deadline: Option<Instant>,
    ) -> Self {
        let dag = DependencyDag::from_circuit(circuit);
        DAG_BUILDS.with(|c| c.set(c.get() + 1));
        let num_program = dag
            .gates()
            .iter()
            .map(|g| g.max_qubit() + 1)
            .max()
            .unwrap_or(0);
        let couplers: Vec<Edge> = arch.couplers().collect();
        let keys = ZobristKeys::new(arch.num_qubits(), couplers.len(), num_program, dag.len());
        let state = SearchState::new(&dag, arch.num_qubits(), num_program);
        let scratch = PruneScratch::new(num_program);
        SearchCore {
            arch,
            dag,
            couplers,
            keys,
            tt: TranspositionTable::new(),
            state,
            scratch,
            budget,
            nodes: 0,
            deadline,
            timed_out: false,
        }
    }

    /// One bounded feasibility query. The transposition table carries over
    /// from earlier queries of the same solve; everything else resets.
    fn feasible_with(&mut self, max_swaps: usize) -> Feasibility {
        self.nodes = 0;
        if self.dag.is_empty() {
            return Feasibility::Feasible;
        }
        debug_assert_eq!(self.state.mark(), 0, "state must be pristine per query");
        self.dfs(max_swaps, None)
    }

    /// Expands one search node: greedy-executes everything executable, then
    /// branches. `last_swap` is the coupler index of the immediately
    /// preceding SWAP if (and only if) no gate has executed since it.
    fn dfs(&mut self, swaps_left: usize, last_swap: Option<usize>) -> Feasibility {
        if self.nodes >= self.budget {
            // `Unknown` unwinds the whole DFS unconditionally (every caller
            // returns it straight through), so `nodes` is reported exactly
            // at the boundary.
            return Feasibility::Unknown;
        }
        // Poll the wall clock every 1024 nodes: a syscall per node would
        // dominate the microsecond-scale expansions, while 1024 bounds the
        // overrun past the deadline to ~1024 expansions.
        if let Some(deadline) = self.deadline {
            if self.nodes & 1023 == 0 && (self.timed_out || Instant::now() >= deadline) {
                self.timed_out = true;
                return Feasibility::Unknown;
            }
        }
        self.nodes += 1;
        let mark = self.state.mark();
        let executed = self.greedy_execute();
        let context = if executed > 0 { None } else { last_swap };
        let result = self.expand(swaps_left, context);
        self.state.rewind_to(&self.keys, &self.dag, mark);
        result
    }

    fn expand(&mut self, swaps_left: usize, last_swap: Option<usize>) -> Feasibility {
        if self.state.executed_count() == self.dag.len() {
            return Feasibility::Feasible;
        }
        // The packing bound was already checked by the parent when it
        // generated this node (it is greedy-invariant, see [`prune`]); only
        // the transposition probes remain. The unrestricted entry applies
        // from any context — it refutes *every* continuation — while the
        // context-qualified entry only matches the identical restriction.
        if let Some(stored) = self.tt.probe(self.state.hash()) {
            if stored as usize >= swaps_left {
                return Feasibility::Infeasible;
            }
        }
        if let Some(prev) = last_swap {
            if let Some(stored) = self
                .tt
                .probe(self.state.hash() ^ self.keys.swap_context(prev))
            {
                if stored as usize >= swaps_left {
                    return Feasibility::Infeasible;
                }
            }
        }

        // Branch 1: execute a ready gate by placing its unplaced qubit(s).
        // The undo journal restores the ready vector's exact order after
        // every child, so iterating by index is sound.
        let arch = self.arch;
        for i in 0..self.state.ready_len() {
            let node = self.state.ready_at(i);
            let (a, b) = self.dag.qubit_pair(node);
            let (pa, pb) = (self.state.position(a), self.state.position(b));
            match (pa == UNPLACED, pb == UNPLACED) {
                (false, false) => continue, // needs SWAPs, not placement
                (true, false) => {
                    for &loc in arch.neighbors(pb) {
                        if self.state.occupant(loc) != UNPLACED {
                            continue;
                        }
                        match self.place_execute(node, &[(a, loc)], swaps_left) {
                            Feasibility::Feasible => return Feasibility::Feasible,
                            Feasibility::Unknown => return Feasibility::Unknown,
                            Feasibility::Infeasible => {}
                        }
                    }
                }
                (false, true) => {
                    for &loc in arch.neighbors(pa) {
                        if self.state.occupant(loc) != UNPLACED {
                            continue;
                        }
                        match self.place_execute(node, &[(b, loc)], swaps_left) {
                            Feasibility::Feasible => return Feasibility::Feasible,
                            Feasibility::Unknown => return Feasibility::Unknown,
                            Feasibility::Infeasible => {}
                        }
                    }
                }
                (true, true) => {
                    for ci in 0..self.couplers.len() {
                        let edge = self.couplers[ci];
                        for (la, lb) in [(edge.u, edge.v), (edge.v, edge.u)] {
                            if self.state.occupant(la) != UNPLACED
                                || self.state.occupant(lb) != UNPLACED
                            {
                                continue;
                            }
                            match self.place_execute(node, &[(a, la), (b, lb)], swaps_left) {
                                Feasibility::Feasible => return Feasibility::Feasible,
                                Feasibility::Unknown => return Feasibility::Unknown,
                                Feasibility::Infeasible => {}
                            }
                        }
                    }
                }
            }
        }

        // Branch 2: spend a SWAP on any coupler touching a placed qubit,
        // subject to the canonicalization rules (module docs).
        if swaps_left > 0 {
            for ci in 0..self.couplers.len() {
                let edge = self.couplers[ci];
                if self.state.occupant(edge.u) == UNPLACED
                    && self.state.occupant(edge.v) == UNPLACED
                {
                    continue;
                }
                if let Some(prev) = last_swap {
                    if ci == prev {
                        continue; // immediate reversal
                    }
                    let p = self.couplers[prev];
                    let disjoint = edge.u != p.u && edge.u != p.v && edge.v != p.u && edge.v != p.v;
                    if disjoint && ci < prev {
                        continue; // non-canonical order of independent SWAPs
                    }
                }
                let mark = self.state.mark();
                self.state.apply_swap(&self.keys, edge.u, edge.v);
                // Generate-and-test: a child the packing bound refutes is
                // rewound without ever becoming a search node.
                let result = if exceeds_swap_budget(
                    &mut self.scratch,
                    &self.state,
                    &self.dag,
                    self.arch,
                    swaps_left - 1,
                ) {
                    Feasibility::Infeasible
                } else {
                    self.dfs(swaps_left - 1, Some(ci))
                };
                self.state.rewind_to(&self.keys, &self.dag, mark);
                match result {
                    Feasibility::Feasible => return Feasibility::Feasible,
                    Feasibility::Unknown => return Feasibility::Unknown,
                    Feasibility::Infeasible => {}
                }
            }
        }

        // Every child refuted exhaustively (budget aborts unwound above). A
        // restricted (mid-SWAP-chain) context searched only a subset of
        // moves, so its refutation is recorded under the context-qualified
        // key; only canonicalization-free subtrees may claim the
        // unrestricted entry.
        match last_swap {
            None => self.tt.record(self.state.hash(), swaps_left),
            Some(prev) => self
                .tt
                .record(self.state.hash() ^ self.keys.swap_context(prev), swaps_left),
        }
        Feasibility::Infeasible
    }

    /// Applies `placements`, executes `node`, bound-checks the child, and —
    /// unless the packing bound already refutes it — recurses; rewinds
    /// either way.
    fn place_execute(
        &mut self,
        node: usize,
        placements: &[(usize, usize)],
        swaps_left: usize,
    ) -> Feasibility {
        let mark = self.state.mark();
        for &(q, loc) in placements {
            self.state.place(&self.keys, q, loc);
        }
        self.state.execute(&self.keys, &self.dag, node);
        let result = if self.state.executed_count() == self.dag.len() {
            Feasibility::Feasible
        } else if exceeds_swap_budget(
            &mut self.scratch,
            &self.state,
            &self.dag,
            self.arch,
            swaps_left,
        ) {
            Feasibility::Infeasible
        } else {
            self.dfs(swaps_left, None)
        };
        self.state.rewind_to(&self.keys, &self.dag, mark);
        result
    }

    /// Executes every ready gate whose qubits are placed and adjacent. One
    /// pass over the incrementally-maintained ready vector suffices:
    /// executing a gate never changes positions (so scanned-and-skipped
    /// nodes stay unexecutable), swap-remove only moves a not-yet-scanned
    /// tail element forward, and newly ready successors are appended behind
    /// the cursor.
    fn greedy_execute(&mut self) -> usize {
        let mut executed = 0usize;
        let mut i = 0;
        while i < self.state.ready_len() {
            let node = self.state.ready_at(i);
            let (a, b) = self.dag.qubit_pair(node);
            let (pa, pb) = (self.state.position(a), self.state.position(b));
            if pa != UNPLACED && pb != UNPLACED && self.arch.are_coupled(pa, pb) {
                self.state.execute(&self.keys, &self.dag, node);
                executed += 1;
            } else {
                i += 1;
            }
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;

    fn solver() -> ExactSolver {
        ExactSolver::new(ExactConfig {
            max_swaps: 4,
            node_budget: 5_000_000,
        })
    }

    #[test]
    fn empty_circuit_needs_no_swaps() {
        let arch = devices::line(3);
        let result = solver().solve(&Circuit::new(3), &arch);
        assert_eq!(result.optimal_swaps, Some(0));
        assert!(result.proven);
    }

    #[test]
    fn embeddable_circuit_needs_no_swaps() {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(
            5,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(2, 3),
                Gate::cx(3, 4),
            ],
        );
        let result = solver().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(0));
    }

    #[test]
    fn triangle_on_line_needs_exactly_one_swap() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let result = solver().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(1));
        assert!(result.proven);
    }

    #[test]
    fn two_triangles_on_line_need_two_swaps() {
        // Two serialised triangle patterns over disjoint phases of the same
        // three qubits: each phase forces one SWAP on a line.
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
            ],
        );
        let result = solver().solve(&circuit, &arch);
        // After resolving the first triangle with one SWAP, the second
        // triangle again has all three pairs pending; a line can host at most
        // two of the three adjacencies under any mapping.
        assert_eq!(result.optimal_swaps, Some(2));
        assert!(result.proven);
    }

    #[test]
    fn star_with_five_leaves_on_grid_needs_one_swap() {
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        let result = solver().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(1));
        assert!(result.proven);
    }

    #[test]
    fn is_feasible_agrees_with_solve() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let s = solver();
        assert_eq!(s.is_feasible(&circuit, &arch, 0), Some(false));
        assert_eq!(s.is_feasible(&circuit, &arch, 1), Some(true));
        assert_eq!(s.is_feasible(&circuit, &arch, 3), Some(true));
    }

    #[test]
    fn exhausted_budget_reports_unproven() {
        let tiny = ExactSolver::new(ExactConfig {
            max_swaps: 4,
            node_budget: 1,
        });
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        let result = tiny.solve(&circuit, &arch);
        assert!(!result.proven);
        assert_eq!(result.optimal_swaps, None);
    }

    /// The budget is a hard stop: a query that exhausts it reports exactly
    /// `node_budget` nodes (no sibling drift past the boundary), the
    /// exhausting query is the last one recorded, and the solve total is the
    /// exact sum of the per-query counts.
    #[test]
    fn budget_exhaustion_reports_exact_node_counts() {
        let budget = 8u64;
        let capped = ExactSolver::new(ExactConfig {
            max_swaps: 4,
            node_budget: budget,
        });
        let arch = devices::line(3);
        // Two serialised triangles: the k = 1 refutation alone needs more
        // than 8 nodes, so the first query exhausts the budget mid-deepening.
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
            ],
        );
        let result = capped.solve(&circuit, &arch);
        assert!(!result.proven);
        let last = result.queries.last().expect("at least one query");
        assert_eq!(last.outcome, QueryOutcome::BudgetExhausted);
        assert_eq!(last.nodes, budget, "hard stop exactly at the budget");
        assert_eq!(
            result.nodes_explored,
            result.queries.iter().map(|q| q.nodes).sum::<u64>(),
            "total must be the exact per-query sum"
        );
    }

    /// One `solve()` builds the dependency DAG exactly once, shared across
    /// all iterative-deepening queries (the pre-refactor core rebuilt it per
    /// `k`).
    #[test]
    fn solve_builds_the_dag_at_most_once() {
        let arch = devices::line(3);
        // The two-triangle circuit starts deepening at the certified bound
        // of 1 and succeeds at 2, so the solve runs two queries.
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
            ],
        );
        let before = dag_builds_on_this_thread();
        let result = solver().solve(&circuit, &arch);
        assert!(
            result.queries.len() >= 2,
            "solve must deepen at least twice"
        );
        assert_eq!(
            dag_builds_on_this_thread() - before,
            1,
            "solve must build the DAG exactly once across all queries"
        );
    }

    #[test]
    fn per_query_stats_cover_the_deepening_path() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let result = solver().solve(&circuit, &arch);
        // The certified lower bound is 1, so the only query is k = 1.
        assert_eq!(result.queries.len(), 1);
        assert_eq!(result.queries[0].swaps, 1);
        assert_eq!(result.queries[0].outcome, QueryOutcome::Feasible);
        assert_eq!(result.queries[0].nodes, result.nodes_explored);
        assert!(result.nodes_explored > 0);
    }

    #[test]
    fn expired_deadline_degrades_to_unproven() {
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        // A deadline already in the past: the very first poll fires, so the
        // solve degrades immediately instead of searching.
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let result = solver().solve_with_deadline(&circuit, &arch, Some(past));
        assert!(result.deadline_exceeded);
        assert!(!result.proven);
        assert_eq!(result.optimal_swaps, None);
        assert_eq!(
            result.queries.last().expect("one query ran").outcome,
            QueryOutcome::DeadlineExceeded
        );
    }

    #[test]
    fn unreached_deadline_changes_nothing() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let with = solver().solve_with_deadline(&circuit, &arch, Some(far));
        let without = solver().solve(&circuit, &arch);
        assert!(!with.deadline_exceeded);
        assert_eq!(with.optimal_swaps, without.optimal_swaps);
        assert_eq!(with.proven, without.proven);
        assert_eq!(with.nodes_explored, without.nodes_explored);
    }

    #[test]
    fn respects_max_swaps_cap() {
        let capped = ExactSolver::new(ExactConfig {
            max_swaps: 0,
            node_budget: 1_000_000,
        });
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let result = capped.solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_circuit() {
        let arch = devices::line(2);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 3)]);
        let _ = solver().solve(&circuit, &arch);
    }
}
