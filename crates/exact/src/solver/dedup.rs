//! Search-state deduplication: Zobrist hashing and the transposition table.
//!
//! Commuting SWAPs make the naive DFS explore factorially many orderings of
//! the same physical permutation. Every search state is summarised by a
//! 64-bit Zobrist hash over its (occupancy, executed set) pair, maintained
//! incrementally by [`super::state::SearchState`]; the transposition table
//! remembers, per hash, the largest SWAP budget with which the state was
//! already exhaustively refuted, so a re-visit with the same or less budget
//! is cut immediately.
//!
//! # Soundness
//!
//! * Two states with equal (occupancy, executed set) are genuinely
//!   identical: `position` is the inverse of `occupant`, and
//!   `remaining_preds`/ready are functions of the executed set.
//! * "Infeasible from here with `s` SWAPs left" is monotone in `s`, so a
//!   stored refutation at budget `s` applies to any probe with budget ≤ `s` —
//!   including probes from *later* deepening iterations, which is why one
//!   table serves a whole `solve()`.
//! * Entries are recorded only for subtrees searched to completion (never
//!   after a node-budget abort); subtrees restricted by the SWAP
//!   canonicalizer are keyed by a context-qualified hash so they can never
//!   answer an unrestricted probe (see `super::SearchCore::expand` for the
//!   argument).
//! * Key collisions are the standard Zobrist caveat: with 64-bit hashes and
//!   the 20M-node default budget the birthday bound is ≈ 2·10⁻⁵ per solve —
//!   the same trade every transposition-table search (and OLSQ2's own hashed
//!   clause store) makes. The differential tests against the reference DFS
//!   double-check the answers.

use std::collections::HashMap;

/// Deterministic per-(location, program) and per-node Zobrist key tables.
///
/// Keys come from a fixed-seed SplitMix64 stream, so hashes — and therefore
/// `nodes_explored` — are identical across runs and platforms (the golden
/// fixtures rely on this).
pub(crate) struct ZobristKeys {
    num_program: usize,
    /// Key for "program qubit q occupies location l": `occupancy[l * num_program + q]`.
    occupancy: Vec<u64>,
    /// Key for "DAG node n has been executed".
    executed: Vec<u64>,
    /// Key qualifying a transposition entry recorded from the restricted
    /// context "the previous move was a silent SWAP on coupler c".
    swap_context: Vec<u64>,
}

impl ZobristKeys {
    /// Builds key tables for a device with `num_locations` physical qubits
    /// and `num_couplers` couplers, a program with `num_program` qubits and
    /// a DAG with `dag_len` nodes.
    pub(crate) fn new(
        num_locations: usize,
        num_couplers: usize,
        num_program: usize,
        dag_len: usize,
    ) -> Self {
        let mut stream = (0u64..).map(|i| splitmix64(0x5165_c04c_7a3c_6e1d ^ i));
        let occupancy = (&mut stream).take(num_locations * num_program).collect();
        let executed = (&mut stream).take(dag_len).collect();
        let swap_context = (&mut stream).take(num_couplers).collect();
        ZobristKeys {
            num_program,
            occupancy,
            executed,
            swap_context,
        }
    }

    /// Key for "program qubit `program` occupies `location`".
    #[inline]
    pub(crate) fn occupancy(&self, location: usize, program: usize) -> u64 {
        self.occupancy[location * self.num_program + program]
    }

    /// Key for "DAG node `node` executed".
    #[inline]
    pub(crate) fn executed(&self, node: usize) -> u64 {
        self.executed[node]
    }

    /// Context key for "reached by a silent SWAP on coupler `coupler`".
    #[inline]
    pub(crate) fn swap_context(&self, coupler: usize) -> u64 {
        self.swap_context[coupler]
    }
}

/// The SplitMix64 output function (Steele, Lea, Flood) — the same finaliser
/// the engine uses for per-job seeds; avalanche-complete, so sequential
/// inputs give independent-looking keys.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash → largest `swaps_left` with which the state was exhaustively refuted.
pub(crate) struct TranspositionTable {
    entries: HashMap<u64, u8>,
}

/// Hard cap on stored entries (≈ 4.2M), bounding worst-case table memory at
/// roughly 100 MB under the default 20M-node budget. Once full, existing
/// entries still update and probes still hit; only brand-new states stop
/// being recorded — a pure (and in practice unreachable on the §IV-A regime)
/// performance cliff, never a soundness issue.
const MAX_ENTRIES: usize = 1 << 22;

impl TranspositionTable {
    /// Creates an empty table.
    pub(crate) fn new() -> Self {
        TranspositionTable {
            entries: HashMap::new(),
        }
    }

    /// Largest refuted budget recorded for `hash`, if any.
    #[inline]
    pub(crate) fn probe(&self, hash: u64) -> Option<u8> {
        self.entries.get(&hash).copied()
    }

    /// Records that the state hashing to `hash` was exhaustively refuted with
    /// `swaps_left` SWAPs remaining.
    pub(crate) fn record(&mut self, hash: u64, swaps_left: usize) {
        let budget = u8::try_from(swaps_left.min(u8::MAX as usize)).expect("clamped");
        if let Some(entry) = self.entries.get_mut(&hash) {
            *entry = (*entry).max(budget);
        } else if self.entries.len() < MAX_ENTRIES {
            self.entries.insert(hash, budget);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = ZobristKeys::new(4, 3, 3, 5);
        let b = ZobristKeys::new(4, 3, 3, 5);
        assert_eq!(a.occupancy(2, 1), b.occupancy(2, 1));
        assert_eq!(a.executed(4), b.executed(4));
        assert_eq!(a.swap_context(2), b.swap_context(2));
        // Spot-check injectivity over the small tables.
        let mut all: Vec<u64> = Vec::new();
        for l in 0..4 {
            for q in 0..3 {
                all.push(a.occupancy(l, q));
            }
        }
        for n in 0..5 {
            all.push(a.executed(n));
        }
        for c in 0..3 {
            all.push(a.swap_context(c));
        }
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "zobrist keys collided");
    }

    #[test]
    fn table_keeps_the_largest_refuted_budget() {
        let mut tt = TranspositionTable::new();
        assert_eq!(tt.probe(7), None);
        tt.record(7, 2);
        assert_eq!(tt.probe(7), Some(2));
        tt.record(7, 1);
        assert_eq!(tt.probe(7), Some(2), "smaller budget must not overwrite");
        tt.record(7, 5);
        assert_eq!(tt.probe(7), Some(5));
    }
}
