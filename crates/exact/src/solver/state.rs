//! Mutable search state with do/undo semantics.
//!
//! The pre-refactor solver cloned its entire state (four `Vec` allocations)
//! at every branch — gigabytes of allocator traffic at the 20M-node budget.
//! [`SearchState`] instead applies every move in place and records an
//! [`UndoOp`] on a journal; the search rewinds to a [`Mark`] when it
//! backtracks, so one allocation-free state is shared by the whole DFS.
//!
//! The state also maintains two things the old solver recomputed with
//! O(dag_len) scans at every node:
//!
//! * the **ready set** (unexecuted nodes with all predecessors executed),
//!   kept as an index-backed vector with O(1) insert/remove whose exact
//!   element *order* is restored by the undo journal — callers may therefore
//!   iterate it by index across child searches;
//! * the **Zobrist hash** of (occupancy, executed set), updated
//!   incrementally by every move so the transposition table probe in the hot
//!   path is a single XOR-folded lookup.

use super::dedup::ZobristKeys;
use qubikos_circuit::{DagNodeId, DependencyDag};
use qubikos_graph::NodeId;

/// Sentinel for "program qubit not yet placed" / "location empty".
pub(crate) const UNPLACED: NodeId = usize::MAX;

/// Sentinel for "node not in the ready vector".
const NOT_READY: usize = usize::MAX;

/// One reversible move on the journal.
enum UndoOp {
    /// `place(program, …)` — undone by clearing the qubit's location.
    Place {
        /// The program qubit that was placed.
        program: NodeId,
    },
    /// `execute(node)` — undone by restoring predecessor counts and the
    /// ready vector (including the exact position `node` was removed from).
    Execute {
        /// The executed DAG node.
        node: DagNodeId,
        /// Index in the ready vector the node was swap-removed from.
        ready_index: usize,
    },
    /// `apply_swap(a, b)` — self-inverse.
    Swap {
        /// One endpoint of the swapped coupler.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

/// Journal position returned by [`SearchState::mark`].
pub(crate) type Mark = usize;

/// The single mutable state shared by every node of one exact search.
pub(crate) struct SearchState {
    /// Program qubit → physical location ([`UNPLACED`] when not yet placed).
    position: Vec<NodeId>,
    /// Physical location → program qubit ([`UNPLACED`] when empty).
    occupant: Vec<NodeId>,
    /// Remaining unexecuted predecessors per DAG node.
    remaining_preds: Vec<u32>,
    /// Whether each DAG node has been executed.
    executed: Vec<bool>,
    /// Number of DAG nodes executed so far.
    executed_count: usize,
    /// Ready (all predecessors executed, not yet executed) nodes.
    ready: Vec<DagNodeId>,
    /// Node → index in `ready`, or [`NOT_READY`].
    ready_pos: Vec<usize>,
    /// Incremental Zobrist hash of (occupancy, executed set).
    hash: u64,
    /// Undo journal; rewinding pops and reverses.
    journal: Vec<UndoOp>,
}

impl SearchState {
    /// Builds the initial (nothing placed, nothing executed) state.
    pub(crate) fn new(dag: &DependencyDag, num_locations: usize, num_program: usize) -> Self {
        let remaining_preds: Vec<u32> = (0..dag.len())
            .map(|i| u32::try_from(dag.predecessors(i).len()).expect("pred count fits u32"))
            .collect();
        let ready: Vec<DagNodeId> = (0..dag.len())
            .filter(|&i| remaining_preds[i] == 0)
            .collect();
        let mut ready_pos = vec![NOT_READY; dag.len()];
        for (i, &node) in ready.iter().enumerate() {
            ready_pos[node] = i;
        }
        SearchState {
            position: vec![UNPLACED; num_program],
            occupant: vec![UNPLACED; num_locations],
            remaining_preds,
            executed: vec![false; dag.len()],
            executed_count: 0,
            ready,
            ready_pos,
            hash: 0,
            journal: Vec::with_capacity(64),
        }
    }

    /// Physical location of `program`, or [`UNPLACED`].
    #[inline]
    pub(crate) fn position(&self, program: NodeId) -> NodeId {
        self.position[program]
    }

    /// Program qubit at `location`, or [`UNPLACED`].
    #[inline]
    pub(crate) fn occupant(&self, location: NodeId) -> NodeId {
        self.occupant[location]
    }

    /// Number of executed DAG nodes.
    #[inline]
    pub(crate) fn executed_count(&self) -> usize {
        self.executed_count
    }

    /// Whether DAG node `node` has been executed.
    #[inline]
    pub(crate) fn is_executed(&self, node: DagNodeId) -> bool {
        self.executed[node]
    }

    /// Number of ready nodes.
    #[inline]
    pub(crate) fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The `i`-th ready node. Because [`rewind_to`](Self::rewind_to) restores
    /// the ready vector's exact order, indices stay meaningful across a
    /// child search that is applied and rewound in between.
    #[inline]
    pub(crate) fn ready_at(&self, i: usize) -> DagNodeId {
        self.ready[i]
    }

    /// Current Zobrist hash of (occupancy, executed set).
    #[inline]
    pub(crate) fn hash(&self) -> u64 {
        self.hash
    }

    /// Current journal position; pass to [`rewind_to`](Self::rewind_to).
    #[inline]
    pub(crate) fn mark(&self) -> Mark {
        self.journal.len()
    }

    /// Places `program` on the empty `location`.
    pub(crate) fn place(&mut self, keys: &ZobristKeys, program: NodeId, location: NodeId) {
        debug_assert_eq!(self.position[program], UNPLACED);
        debug_assert_eq!(self.occupant[location], UNPLACED);
        self.position[program] = location;
        self.occupant[location] = program;
        self.hash ^= keys.occupancy(location, program);
        self.journal.push(UndoOp::Place { program });
    }

    /// Executes the ready node `node`, updating predecessor counts and the
    /// ready set incrementally.
    pub(crate) fn execute(&mut self, keys: &ZobristKeys, dag: &DependencyDag, node: DagNodeId) {
        debug_assert!(!self.executed[node]);
        let ready_index = self.ready_pos[node];
        debug_assert_ne!(ready_index, NOT_READY, "executed node must be ready");
        self.ready.swap_remove(ready_index);
        self.ready_pos[node] = NOT_READY;
        if let Some(&moved) = self.ready.get(ready_index) {
            self.ready_pos[moved] = ready_index;
        }
        self.executed[node] = true;
        self.executed_count += 1;
        self.hash ^= keys.executed(node);
        for &s in dag.successors(node) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready_pos[s] = self.ready.len();
                self.ready.push(s);
            }
        }
        self.journal.push(UndoOp::Execute { node, ready_index });
    }

    /// Swaps the occupants of coupler endpoints `a` and `b`.
    pub(crate) fn apply_swap(&mut self, keys: &ZobristKeys, a: NodeId, b: NodeId) {
        self.raw_swap(keys, a, b);
        self.journal.push(UndoOp::Swap { a, b });
    }

    /// Rewinds the journal (and hence the state, bit for bit) to `mark`.
    pub(crate) fn rewind_to(&mut self, keys: &ZobristKeys, dag: &DependencyDag, mark: Mark) {
        while self.journal.len() > mark {
            match self.journal.pop().expect("journal entry") {
                UndoOp::Place { program } => {
                    let location = self.position[program];
                    self.hash ^= keys.occupancy(location, program);
                    self.position[program] = UNPLACED;
                    self.occupant[location] = UNPLACED;
                }
                UndoOp::Execute { node, ready_index } => {
                    // Successors were appended to `ready` in forward order,
                    // so popping them in reverse order restores the vector to
                    // the instant after `node`'s own swap-remove…
                    for &s in dag.successors(node).iter().rev() {
                        self.remaining_preds[s] += 1;
                        if self.remaining_preds[s] == 1 {
                            let popped = self.ready.pop().expect("newly ready at tail");
                            debug_assert_eq!(popped, s);
                            self.ready_pos[s] = NOT_READY;
                        }
                    }
                    // …and re-inserting `node` at its recorded index (moving
                    // the displaced element back to the tail) reverses the
                    // swap-remove itself, restoring the exact order.
                    if ready_index == self.ready.len() {
                        self.ready.push(node);
                    } else {
                        let displaced = self.ready[ready_index];
                        self.ready_pos[displaced] = self.ready.len();
                        self.ready.push(displaced);
                        self.ready[ready_index] = node;
                    }
                    self.ready_pos[node] = ready_index;
                    self.executed[node] = false;
                    self.executed_count -= 1;
                    self.hash ^= keys.executed(node);
                }
                UndoOp::Swap { a, b } => self.raw_swap(keys, a, b),
            }
        }
    }

    /// Swap without journaling (shared by do and undo; a SWAP is self-inverse).
    fn raw_swap(&mut self, keys: &ZobristKeys, a: NodeId, b: NodeId) {
        let qa = self.occupant[a];
        let qb = self.occupant[b];
        if qa != UNPLACED {
            self.hash ^= keys.occupancy(a, qa) ^ keys.occupancy(b, qa);
            self.position[qa] = b;
        }
        if qb != UNPLACED {
            self.hash ^= keys.occupancy(b, qb) ^ keys.occupancy(a, qb);
            self.position[qb] = a;
        }
        self.occupant[a] = qb;
        self.occupant[b] = qa;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_circuit::{Circuit, Gate};

    fn sample() -> (DependencyDag, ZobristKeys) {
        let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let dag = DependencyDag::from_circuit(&c);
        let keys = ZobristKeys::new(4, 3, 3, dag.len());
        (dag, keys)
    }

    #[test]
    fn rewind_restores_everything_including_ready_order() {
        let (dag, keys) = sample();
        let mut state = SearchState::new(&dag, 4, 3);
        let mark = state.mark();
        let ready_before: Vec<_> = (0..state.ready_len()).map(|i| state.ready_at(i)).collect();
        let hash_before = state.hash();

        state.place(&keys, 0, 0);
        state.place(&keys, 1, 1);
        state.execute(&keys, &dag, 0);
        state.apply_swap(&keys, 1, 2);
        assert_eq!(state.executed_count(), 1);
        assert_eq!(state.position(1), 2);
        assert_ne!(state.hash(), hash_before);

        state.rewind_to(&keys, &dag, mark);
        assert_eq!(state.executed_count(), 0);
        assert_eq!(state.position(0), UNPLACED);
        assert_eq!(state.position(1), UNPLACED);
        assert_eq!(state.occupant(0), UNPLACED);
        assert_eq!(state.hash(), hash_before);
        let ready_after: Vec<_> = (0..state.ready_len()).map(|i| state.ready_at(i)).collect();
        assert_eq!(ready_after, ready_before);
    }

    #[test]
    fn execute_unlocks_successors() {
        let (dag, keys) = sample();
        let mut state = SearchState::new(&dag, 4, 3);
        assert_eq!(state.ready_len(), 1);
        state.place(&keys, 0, 0);
        state.place(&keys, 1, 1);
        state.execute(&keys, &dag, 0);
        // Gate 1 (qubits 1,2) becomes ready once gate 0 executed.
        assert_eq!(state.ready_len(), 1);
        assert_eq!(state.ready_at(0), 1);
        assert!(state.is_executed(0));
    }

    #[test]
    fn swap_moves_occupants_and_hash_is_move_order_independent() {
        let (dag, keys) = sample();
        let mut state = SearchState::new(&dag, 4, 3);
        state.place(&keys, 0, 0);
        state.place(&keys, 1, 1);
        state.apply_swap(&keys, 0, 1);
        let swapped_hash = state.hash();
        assert_eq!(state.occupant(0), 1);
        assert_eq!(state.occupant(1), 0);

        // Reaching the same occupancy by direct placement hashes identically.
        let mut direct = SearchState::new(&dag, 4, 3);
        direct.place(&keys, 1, 0);
        direct.place(&keys, 0, 1);
        assert_eq!(direct.hash(), swapped_hash);
    }
}
