//! The pre-refactor clone-per-branch DFS, kept verbatim as a baseline.
//!
//! This module exists for two consumers only:
//!
//! * the **differential tests**, which check that the optimized core in
//!   [`super`] (in-place do/undo state, transposition table, SWAP
//!   canonicalization, packing bound) reports identical
//!   `optimal_swaps`/`proven` answers on randomized instances;
//! * the **benchmarks** (`benches/exact_solver.rs`, the `exact_bench` bin),
//!   which quantify the node-count and wall-clock reduction against it.
//!
//! Do not use it in pipelines: it clones four `Vec`s per search node and
//! rescans the whole DAG for ready gates, which is exactly what the rewrite
//! removed. No optimization applies here — every difference from the
//! optimized core's search *order* is intentional, but the *answers* must
//! agree, which is what makes it a meaningful oracle.

use crate::lower_bound::swap_lower_bound;
use crate::solver::{ExactConfig, ExactResult, QueryOutcome, QueryStats};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DependencyDag};
use qubikos_graph::NodeId;
use std::time::Instant;

/// The pre-refactor exhaustive solver (see module docs). Same configuration
/// and result contract as [`crate::ExactSolver`], modulo node counts: the
/// naive DFS counts budget-aborted probes slightly past the budget instead
/// of hard-stopping at it.
#[derive(Debug, Clone, Default)]
pub struct ReferenceSolver {
    config: ExactConfig,
}

/// Answer of a single bounded feasibility query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feasibility {
    Feasible,
    Infeasible,
    Unknown,
}

impl ReferenceSolver {
    /// Creates a reference solver with the given configuration.
    pub fn new(config: ExactConfig) -> Self {
        ReferenceSolver { config }
    }

    /// Finds the minimum SWAP count for `circuit` on `arch` with the naive
    /// clone-per-branch search.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the device provides.
    pub fn solve(&self, circuit: &Circuit, arch: &Architecture) -> ExactResult {
        assert!(
            circuit.num_qubits() <= arch.num_qubits(),
            "circuit does not fit the device"
        );
        let solve_start = Instant::now();
        let mut queries = Vec::new();
        let mut nodes = 0u64;
        let start = swap_lower_bound(circuit, arch);
        for k in start..=self.config.max_swaps {
            let query_start = Instant::now();
            let mut search = Search::new(circuit, arch, self.config.node_budget);
            let feasibility = search.feasible_with(k);
            nodes += search.nodes;
            queries.push(QueryStats {
                swaps: k,
                nodes: search.nodes,
                wall_micros: query_start.elapsed().as_micros() as u64,
                outcome: match feasibility {
                    Feasibility::Feasible => QueryOutcome::Feasible,
                    Feasibility::Infeasible => QueryOutcome::Infeasible,
                    Feasibility::Unknown => QueryOutcome::BudgetExhausted,
                },
            });
            match feasibility {
                Feasibility::Feasible => {
                    return ExactResult {
                        optimal_swaps: Some(k),
                        proven: true,
                        nodes_explored: nodes,
                        queries,
                        wall_micros: solve_start.elapsed().as_micros() as u64,
                        deadline_exceeded: false,
                    };
                }
                Feasibility::Infeasible => continue,
                Feasibility::Unknown => break,
            }
        }
        ExactResult {
            optimal_swaps: None,
            proven: false,
            nodes_explored: nodes,
            queries,
            wall_micros: solve_start.elapsed().as_micros() as u64,
            deadline_exceeded: false,
        }
    }
}

/// DFS state for one feasibility query.
struct Search<'a> {
    arch: &'a Architecture,
    dag: DependencyDag,
    budget: u64,
    nodes: u64,
}

#[derive(Clone)]
struct State {
    /// Program qubit → physical location (usize::MAX when not yet placed).
    position: Vec<NodeId>,
    /// Physical location → program qubit (usize::MAX when empty).
    occupant: Vec<NodeId>,
    /// Whether each DAG node has been executed.
    executed: Vec<bool>,
    /// Remaining unexecuted predecessors per DAG node.
    remaining_preds: Vec<usize>,
    /// Number of DAG nodes executed so far.
    executed_count: usize,
}

const UNPLACED: NodeId = usize::MAX;

impl<'a> Search<'a> {
    fn new(circuit: &Circuit, arch: &'a Architecture, budget: u64) -> Self {
        let dag = DependencyDag::from_circuit(circuit);
        Search {
            arch,
            dag,
            budget,
            nodes: 0,
        }
    }

    fn feasible_with(&mut self, max_swaps: usize) -> Feasibility {
        if self.dag.is_empty() {
            return Feasibility::Feasible;
        }
        let num_program = self
            .dag
            .gates()
            .iter()
            .map(|g| g.max_qubit() + 1)
            .max()
            .unwrap_or(0);
        let state = State {
            position: vec![UNPLACED; num_program],
            occupant: vec![UNPLACED; self.arch.num_qubits()],
            executed: vec![false; self.dag.len()],
            remaining_preds: (0..self.dag.len())
                .map(|i| self.dag.predecessors(i).len())
                .collect(),
            executed_count: 0,
        };
        self.dfs(state, max_swaps)
    }

    fn dfs(&mut self, mut state: State, swaps_left: usize) -> Feasibility {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Feasibility::Unknown;
        }
        self.greedy_execute(&mut state);
        if state.executed_count == self.dag.len() {
            return Feasibility::Feasible;
        }
        if self.prune(&state, swaps_left) {
            return Feasibility::Infeasible;
        }

        let mut saw_unknown = false;

        // Branch 1: execute a ready gate by placing its unplaced qubit(s).
        for node in self.ready_nodes(&state) {
            let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
            let (pa, pb) = (state.position[a], state.position[b]);
            match (pa == UNPLACED, pb == UNPLACED) {
                (false, false) => continue, // needs SWAPs, not placement
                (true, false) => {
                    for &loc in self.arch.neighbors(pb) {
                        if state.occupant[loc] != UNPLACED {
                            continue;
                        }
                        let mut next = state.clone();
                        place(&mut next, a, loc);
                        execute(&mut next, &self.dag, node);
                        match self.dfs(next, swaps_left) {
                            Feasibility::Feasible => return Feasibility::Feasible,
                            Feasibility::Unknown => saw_unknown = true,
                            Feasibility::Infeasible => {}
                        }
                    }
                }
                (false, true) => {
                    for &loc in self.arch.neighbors(pa) {
                        if state.occupant[loc] != UNPLACED {
                            continue;
                        }
                        let mut next = state.clone();
                        place(&mut next, b, loc);
                        execute(&mut next, &self.dag, node);
                        match self.dfs(next, swaps_left) {
                            Feasibility::Feasible => return Feasibility::Feasible,
                            Feasibility::Unknown => saw_unknown = true,
                            Feasibility::Infeasible => {}
                        }
                    }
                }
                (true, true) => {
                    for edge in self.arch.couplers() {
                        for (la, lb) in [(edge.u, edge.v), (edge.v, edge.u)] {
                            if state.occupant[la] != UNPLACED || state.occupant[lb] != UNPLACED {
                                continue;
                            }
                            let mut next = state.clone();
                            place(&mut next, a, la);
                            place(&mut next, b, lb);
                            execute(&mut next, &self.dag, node);
                            match self.dfs(next, swaps_left) {
                                Feasibility::Feasible => return Feasibility::Feasible,
                                Feasibility::Unknown => saw_unknown = true,
                                Feasibility::Infeasible => {}
                            }
                        }
                    }
                }
            }
        }

        // Branch 2: spend a SWAP on any coupler touching a placed qubit.
        if swaps_left > 0 {
            for edge in self.arch.couplers() {
                if state.occupant[edge.u] == UNPLACED && state.occupant[edge.v] == UNPLACED {
                    continue;
                }
                let mut next = state.clone();
                apply_swap(&mut next, edge.u, edge.v);
                match self.dfs(next, swaps_left - 1) {
                    Feasibility::Feasible => return Feasibility::Feasible,
                    Feasibility::Unknown => saw_unknown = true,
                    Feasibility::Infeasible => {}
                }
            }
        }

        if saw_unknown {
            Feasibility::Unknown
        } else {
            Feasibility::Infeasible
        }
    }

    /// Executes every ready gate whose qubits are placed and adjacent, repeatedly.
    fn greedy_execute(&self, state: &mut State) {
        loop {
            let mut progressed = false;
            for node in 0..self.dag.len() {
                if state.executed[node] || state.remaining_preds[node] != 0 {
                    continue;
                }
                let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
                let (pa, pb) = (state.position[a], state.position[b]);
                if pa != UNPLACED && pb != UNPLACED && self.arch.are_coupled(pa, pb) {
                    execute(state, &self.dag, node);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Ready (all predecessors executed) but unexecuted DAG nodes.
    fn ready_nodes(&self, state: &State) -> Vec<usize> {
        (0..self.dag.len())
            .filter(|&n| !state.executed[n] && state.remaining_preds[n] == 0)
            .collect()
    }

    /// Admissible dead-end check: some unexecuted gate already has both
    /// qubits placed at a distance no SWAP budget can close.
    fn prune(&self, state: &State, swaps_left: usize) -> bool {
        for node in 0..self.dag.len() {
            if state.executed[node] {
                continue;
            }
            let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
            let (pa, pb) = (state.position[a], state.position[b]);
            if pa != UNPLACED && pb != UNPLACED {
                let needed = self.arch.distance(pa, pb).saturating_sub(1);
                if needed > swaps_left {
                    return true;
                }
            }
        }
        false
    }
}

fn place(state: &mut State, program: NodeId, location: NodeId) {
    debug_assert_eq!(state.position[program], UNPLACED);
    debug_assert_eq!(state.occupant[location], UNPLACED);
    state.position[program] = location;
    state.occupant[location] = program;
}

fn execute(state: &mut State, dag: &DependencyDag, node: usize) {
    debug_assert!(!state.executed[node]);
    state.executed[node] = true;
    state.executed_count += 1;
    for &s in dag.successors(node) {
        state.remaining_preds[s] -= 1;
    }
}

fn apply_swap(state: &mut State, a: NodeId, b: NodeId) {
    let qa = state.occupant[a];
    let qb = state.occupant[b];
    state.occupant[a] = qb;
    state.occupant[b] = qa;
    if qa != UNPLACED {
        state.position[qa] = b;
    }
    if qb != UNPLACED {
        state.position[qb] = a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;

    #[test]
    fn reference_still_solves_the_triangle() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let result = ReferenceSolver::default().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(1));
        assert!(result.proven);
        assert!(result.nodes_explored > 0);
    }
}
