//! Exhaustive minimal-SWAP search.
//!
//! The solver decides, for increasing `k`, whether the circuit can be
//! executed with at most `k` SWAP gates under *some* initial mapping. The
//! search assigns program qubits to physical qubits lazily (a program qubit
//! is only pinned down at the moment its first gate executes), which keeps
//! the branching factor independent of the device size for sparsely-used
//! devices while remaining complete:
//!
//! * executing a ready gate whose qubits are already mapped to adjacent
//!   locations is always done greedily (no choice is lost);
//! * a ready gate with unmapped qubits branches over every placement that
//!   makes it executable right now — deferring the placement decision to
//!   this moment is complete because an unmapped qubit's earlier positions
//!   cannot have influenced anything;
//! * a SWAP branches over every coupler with at least one mapped endpoint —
//!   SWAPs between two unmapped locations never change the reachable states.
//!
//! Infeasibility of `k-1` plus a witness at `k` proves optimality, exactly
//! the evidence OLSQ2 provides in the paper's §IV-A study.

use crate::lower_bound::swap_lower_bound;
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DependencyDag};
use qubikos_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Configuration of the exact solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactConfig {
    /// Largest SWAP count to try before giving up.
    pub max_swaps: usize,
    /// Maximum number of search nodes per feasibility query; when exceeded
    /// the query (and therefore the overall result) is reported as unproven.
    pub node_budget: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_swaps: 8,
            node_budget: 20_000_000,
        }
    }
}

/// Outcome of an exact solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactResult {
    /// The optimal SWAP count, if the solver found a feasible `k` within
    /// `max_swaps`.
    pub optimal_swaps: Option<usize>,
    /// `true` when the reported value is certain: every smaller SWAP count
    /// was exhaustively refuted within the node budget.
    pub proven: bool,
    /// Total number of search nodes expanded across all feasibility queries.
    pub nodes_explored: u64,
}

/// Exhaustive exact minimal-SWAP solver (OLSQ2 substitute).
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    config: ExactConfig,
}

/// Answer of a single bounded feasibility query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feasibility {
    /// A routing with at most the queried number of SWAPs exists.
    Feasible,
    /// No such routing exists (exhaustively proven).
    Infeasible,
    /// The node budget ran out before the search completed.
    Unknown,
}

impl ExactSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ExactConfig) -> Self {
        ExactSolver { config }
    }

    /// Finds the minimum SWAP count for `circuit` on `arch`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the device provides.
    pub fn solve(&self, circuit: &Circuit, arch: &Architecture) -> ExactResult {
        assert!(
            circuit.num_qubits() <= arch.num_qubits(),
            "circuit does not fit the device"
        );
        let mut nodes = 0u64;
        let start = swap_lower_bound(circuit, arch);
        for k in start..=self.config.max_swaps {
            let mut search = Search::new(circuit, arch, self.config.node_budget);
            let feasibility = search.feasible_with(k);
            nodes += search.nodes;
            match feasibility {
                Feasibility::Feasible => {
                    return ExactResult {
                        optimal_swaps: Some(k),
                        // All smaller k (if any beyond the certified lower
                        // bound) were refuted exhaustively, so the value is
                        // proven.
                        proven: true,
                        nodes_explored: nodes,
                    };
                }
                Feasibility::Infeasible => continue,
                Feasibility::Unknown => {
                    return ExactResult {
                        optimal_swaps: None,
                        proven: false,
                        nodes_explored: nodes,
                    };
                }
            }
        }
        ExactResult {
            optimal_swaps: None,
            proven: false,
            nodes_explored: nodes,
        }
    }

    /// Checks whether `circuit` can be routed with at most `max_swaps` SWAPs.
    ///
    /// Returns `None` when the node budget was exhausted before an answer was
    /// established.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the device provides.
    pub fn is_feasible(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        max_swaps: usize,
    ) -> Option<bool> {
        assert!(
            circuit.num_qubits() <= arch.num_qubits(),
            "circuit does not fit the device"
        );
        let mut search = Search::new(circuit, arch, self.config.node_budget);
        match search.feasible_with(max_swaps) {
            Feasibility::Feasible => Some(true),
            Feasibility::Infeasible => Some(false),
            Feasibility::Unknown => None,
        }
    }
}

/// DFS state for one feasibility query.
struct Search<'a> {
    arch: &'a Architecture,
    dag: DependencyDag,
    budget: u64,
    nodes: u64,
}

#[derive(Clone)]
struct State {
    /// Program qubit → physical location (usize::MAX when not yet placed).
    position: Vec<NodeId>,
    /// Physical location → program qubit (usize::MAX when empty).
    occupant: Vec<NodeId>,
    /// Whether each DAG node has been executed.
    executed: Vec<bool>,
    /// Remaining unexecuted predecessors per DAG node.
    remaining_preds: Vec<usize>,
    /// Number of DAG nodes executed so far.
    executed_count: usize,
}

const UNPLACED: NodeId = usize::MAX;

impl<'a> Search<'a> {
    fn new(circuit: &Circuit, arch: &'a Architecture, budget: u64) -> Self {
        let dag = DependencyDag::from_circuit(circuit);
        Search {
            arch,
            dag,
            budget,
            nodes: 0,
        }
    }

    fn feasible_with(&mut self, max_swaps: usize) -> Feasibility {
        if self.dag.is_empty() {
            return Feasibility::Feasible;
        }
        let num_program = self
            .dag
            .gates()
            .iter()
            .map(|g| g.max_qubit() + 1)
            .max()
            .unwrap_or(0);
        let state = State {
            position: vec![UNPLACED; num_program],
            occupant: vec![UNPLACED; self.arch.num_qubits()],
            executed: vec![false; self.dag.len()],
            remaining_preds: (0..self.dag.len())
                .map(|i| self.dag.predecessors(i).len())
                .collect(),
            executed_count: 0,
        };
        self.dfs(state, max_swaps)
    }

    fn dfs(&mut self, mut state: State, swaps_left: usize) -> Feasibility {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Feasibility::Unknown;
        }
        self.greedy_execute(&mut state);
        if state.executed_count == self.dag.len() {
            return Feasibility::Feasible;
        }
        if self.prune(&state, swaps_left) {
            return Feasibility::Infeasible;
        }

        let mut saw_unknown = false;

        // Branch 1: execute a ready gate by placing its unplaced qubit(s).
        for node in self.ready_nodes(&state) {
            let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
            let (pa, pb) = (state.position[a], state.position[b]);
            match (pa == UNPLACED, pb == UNPLACED) {
                (false, false) => continue, // needs SWAPs, not placement
                (true, false) => {
                    for &loc in self.arch.neighbors(pb) {
                        if state.occupant[loc] != UNPLACED {
                            continue;
                        }
                        let mut next = state.clone();
                        place(&mut next, a, loc);
                        execute(&mut next, &self.dag, node);
                        match self.dfs(next, swaps_left) {
                            Feasibility::Feasible => return Feasibility::Feasible,
                            Feasibility::Unknown => saw_unknown = true,
                            Feasibility::Infeasible => {}
                        }
                    }
                }
                (false, true) => {
                    for &loc in self.arch.neighbors(pa) {
                        if state.occupant[loc] != UNPLACED {
                            continue;
                        }
                        let mut next = state.clone();
                        place(&mut next, b, loc);
                        execute(&mut next, &self.dag, node);
                        match self.dfs(next, swaps_left) {
                            Feasibility::Feasible => return Feasibility::Feasible,
                            Feasibility::Unknown => saw_unknown = true,
                            Feasibility::Infeasible => {}
                        }
                    }
                }
                (true, true) => {
                    for edge in self.arch.couplers() {
                        for (la, lb) in [(edge.u, edge.v), (edge.v, edge.u)] {
                            if state.occupant[la] != UNPLACED || state.occupant[lb] != UNPLACED {
                                continue;
                            }
                            let mut next = state.clone();
                            place(&mut next, a, la);
                            place(&mut next, b, lb);
                            execute(&mut next, &self.dag, node);
                            match self.dfs(next, swaps_left) {
                                Feasibility::Feasible => return Feasibility::Feasible,
                                Feasibility::Unknown => saw_unknown = true,
                                Feasibility::Infeasible => {}
                            }
                        }
                    }
                }
            }
        }

        // Branch 2: spend a SWAP on any coupler touching a placed qubit.
        if swaps_left > 0 {
            for edge in self.arch.couplers() {
                if state.occupant[edge.u] == UNPLACED && state.occupant[edge.v] == UNPLACED {
                    continue;
                }
                let mut next = state.clone();
                apply_swap(&mut next, edge.u, edge.v);
                match self.dfs(next, swaps_left - 1) {
                    Feasibility::Feasible => return Feasibility::Feasible,
                    Feasibility::Unknown => saw_unknown = true,
                    Feasibility::Infeasible => {}
                }
            }
        }

        if saw_unknown {
            Feasibility::Unknown
        } else {
            Feasibility::Infeasible
        }
    }

    /// Executes every ready gate whose qubits are placed and adjacent, repeatedly.
    fn greedy_execute(&self, state: &mut State) {
        loop {
            let mut progressed = false;
            for node in 0..self.dag.len() {
                if state.executed[node] || state.remaining_preds[node] != 0 {
                    continue;
                }
                let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
                let (pa, pb) = (state.position[a], state.position[b]);
                if pa != UNPLACED && pb != UNPLACED && self.arch.are_coupled(pa, pb) {
                    execute(state, &self.dag, node);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Ready (all predecessors executed) but unexecuted DAG nodes.
    fn ready_nodes(&self, state: &State) -> Vec<usize> {
        (0..self.dag.len())
            .filter(|&n| !state.executed[n] && state.remaining_preds[n] == 0)
            .collect()
    }

    /// Admissible dead-end check: some unexecuted gate already has both
    /// qubits placed at a distance no SWAP budget can close.
    fn prune(&self, state: &State, swaps_left: usize) -> bool {
        for node in 0..self.dag.len() {
            if state.executed[node] {
                continue;
            }
            let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
            let (pa, pb) = (state.position[a], state.position[b]);
            if pa != UNPLACED && pb != UNPLACED {
                let needed = self.arch.distance(pa, pb).saturating_sub(1);
                if needed > swaps_left {
                    return true;
                }
            }
        }
        false
    }
}

fn place(state: &mut State, program: NodeId, location: NodeId) {
    debug_assert_eq!(state.position[program], UNPLACED);
    debug_assert_eq!(state.occupant[location], UNPLACED);
    state.position[program] = location;
    state.occupant[location] = program;
}

fn execute(state: &mut State, dag: &DependencyDag, node: usize) {
    debug_assert!(!state.executed[node]);
    state.executed[node] = true;
    state.executed_count += 1;
    for &s in dag.successors(node) {
        state.remaining_preds[s] -= 1;
    }
}

fn apply_swap(state: &mut State, a: NodeId, b: NodeId) {
    let qa = state.occupant[a];
    let qb = state.occupant[b];
    state.occupant[a] = qb;
    state.occupant[b] = qa;
    if qa != UNPLACED {
        state.position[qa] = b;
    }
    if qb != UNPLACED {
        state.position[qb] = a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;

    fn solver() -> ExactSolver {
        ExactSolver::new(ExactConfig {
            max_swaps: 4,
            node_budget: 5_000_000,
        })
    }

    #[test]
    fn empty_circuit_needs_no_swaps() {
        let arch = devices::line(3);
        let result = solver().solve(&Circuit::new(3), &arch);
        assert_eq!(result.optimal_swaps, Some(0));
        assert!(result.proven);
    }

    #[test]
    fn embeddable_circuit_needs_no_swaps() {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(
            5,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(2, 3),
                Gate::cx(3, 4),
            ],
        );
        let result = solver().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(0));
    }

    #[test]
    fn triangle_on_line_needs_exactly_one_swap() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let result = solver().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(1));
        assert!(result.proven);
    }

    #[test]
    fn two_triangles_on_line_need_two_swaps() {
        // Two serialised triangle patterns over disjoint phases of the same
        // three qubits: each phase forces one SWAP on a line.
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::cx(0, 2),
            ],
        );
        let result = solver().solve(&circuit, &arch);
        // After resolving the first triangle with one SWAP, the second
        // triangle again has all three pairs pending; a line can host at most
        // two of the three adjacencies under any mapping.
        assert_eq!(result.optimal_swaps, Some(2));
        assert!(result.proven);
    }

    #[test]
    fn star_with_five_leaves_on_grid_needs_one_swap() {
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        let result = solver().solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, Some(1));
        assert!(result.proven);
    }

    #[test]
    fn is_feasible_agrees_with_solve() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let s = solver();
        assert_eq!(s.is_feasible(&circuit, &arch, 0), Some(false));
        assert_eq!(s.is_feasible(&circuit, &arch, 1), Some(true));
        assert_eq!(s.is_feasible(&circuit, &arch, 3), Some(true));
    }

    #[test]
    fn exhausted_budget_reports_unproven() {
        let tiny = ExactSolver::new(ExactConfig {
            max_swaps: 4,
            node_budget: 1,
        });
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        let result = tiny.solve(&circuit, &arch);
        assert!(!result.proven);
        assert_eq!(result.optimal_swaps, None);
    }

    #[test]
    fn respects_max_swaps_cap() {
        let capped = ExactSolver::new(ExactConfig {
            max_swaps: 0,
            node_budget: 1_000_000,
        });
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let result = capped.solve(&circuit, &arch);
        assert_eq!(result.optimal_swaps, None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_circuit() {
        let arch = devices::line(2);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 3)]);
        let _ = solver().solve(&circuit, &arch);
    }
}
