//! Exact minimal-SWAP layout synthesis for small instances.
//!
//! The paper verifies QUBIKOS optimality with OLSQ2, a SAT/SMT-based exact
//! tool. This crate plays that role without an external solver (see
//! DESIGN.md, substitution 1): [`ExactSolver`] performs an exhaustive,
//! provably complete search over initial mappings and SWAP sequences, and
//! [`lower_bound`] provides cheap admissible lower bounds used both for
//! pruning and as stand-alone sanity checks.
//!
//! The search is exponential — exactly like the tool it replaces, it is only
//! meant for the optimality-study regime (§IV-A of the paper: ≤ 30 two-qubit
//! gates, ≤ 16 physical qubits, ≤ 4 SWAPs). The solver accepts an explicit
//! node budget and reports whether its answer is proven or was cut short.
//!
//! The search core runs on a single in-place state with an undo journal, a
//! Zobrist-hashed transposition table, canonicalized SWAP sequences, and a
//! packing lower bound (see [`solver`] for the architecture and the
//! soundness arguments); the naive pre-refactor DFS is preserved in
//! [`solver::reference`] as the differential-testing and benchmarking
//! baseline.
//!
//! # Example
//!
//! ```
//! use qubikos_arch::devices;
//! use qubikos_circuit::{Circuit, Gate};
//! use qubikos_exact::{ExactConfig, ExactSolver};
//!
//! // A 3-qubit "triangle" circuit on a 3-qubit line needs exactly one SWAP.
//! let arch = devices::line(3);
//! let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
//! let result = ExactSolver::new(ExactConfig::default()).solve(&circuit, &arch);
//! assert_eq!(result.optimal_swaps, Some(1));
//! assert!(result.proven);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lower_bound;
pub mod solver;

pub use lower_bound::{embedding_lower_bound, swap_lower_bound};
pub use solver::{ExactConfig, ExactResult, ExactSolver, QueryOutcome, QueryStats};
