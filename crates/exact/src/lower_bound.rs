//! Admissible lower bounds on the optimal SWAP count.

use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::{is_subgraph_isomorphic, Vf2Matcher};

/// Lower bound from interaction-graph embeddability: 0 if the interaction
/// graph embeds into the coupling graph (the circuit *might* be SWAP-free),
/// otherwise 1 (at least one SWAP is certainly required).
///
/// This is exactly Lemma 1 of the paper turned into a check: a circuit whose
/// interaction graph is not isomorphic to any subgraph of the coupling graph
/// cannot be executed under any single mapping.
pub fn embedding_lower_bound(circuit: &Circuit, arch: &Architecture) -> usize {
    if circuit.two_qubit_gate_count() == 0 {
        return 0;
    }
    let interaction = circuit.interaction_graph();
    if is_subgraph_isomorphic(&interaction, arch.coupling_graph()) {
        0
    } else {
        1
    }
}

/// Degree-surplus lower bound: every SWAP can only connect a program qubit to
/// qubits hosted on neighbouring physical locations, so if the interaction
/// graph has more edges incident to "over-subscribed" qubits than any
/// placement can satisfy, extra SWAPs are needed.
///
/// Concretely, for a program qubit `q` with interaction degree `d(q)` and a
/// device of maximum physical degree `Δ`, any single placement makes at most
/// `Δ` partners adjacent. Each further SWAP extends the set of partners `q`
/// can ever touch by at most `Δ - 1`: a SWAP that moves `q` itself exposes at
/// most `Δ - 1` positions not previously adjacent (one neighbour of the new
/// position is `q`'s origin), and a SWAP that moves a partner towards `q`
/// brings in at most one. Hence `s` SWAPs satisfy at most `Δ + s·(Δ - 1)`
/// partners, and `s ≥ ⌈(d(q) - Δ) / (Δ - 1)⌉` is admissible. (An earlier
/// revision of this bound charged one SWAP per surplus partner, which
/// overcounts exactly when moving `q` serves several partners at once — and
/// an inadmissible bound silently corrupts the exact solver's `proven`
/// answers, since the solver starts its iterative deepening here.)
pub fn degree_surplus_lower_bound(circuit: &Circuit, arch: &Architecture) -> usize {
    let interaction = circuit.interaction_graph();
    let max_physical_degree = arch.coupling_graph().max_degree();
    // Per-SWAP gain in reachable partners; clamped so degenerate single-edge
    // devices (Δ ≤ 1, where the true bound is unbounded) stay conservative.
    let gain_per_swap = max_physical_degree.saturating_sub(1).max(1);
    interaction
        .nodes()
        .map(|q| {
            interaction
                .degree(q)
                .saturating_sub(max_physical_degree)
                .div_ceil(gain_per_swap)
        })
        .max()
        .unwrap_or(0)
}

/// The best cheap lower bound we can certify without search: the maximum of
/// the embedding bound and the degree-surplus bound, with a bounded-effort
/// VF2 probe so the bound stays cheap on large inputs.
pub fn swap_lower_bound(circuit: &Circuit, arch: &Architecture) -> usize {
    let degree_bound = degree_surplus_lower_bound(circuit, arch);
    if degree_bound >= 1 {
        // Already know at least one SWAP is needed; the embedding probe can
        // only confirm that, so skip it.
        return degree_bound;
    }
    if circuit.two_qubit_gate_count() == 0 {
        return 0;
    }
    let interaction = circuit.interaction_graph();
    let embeds = Vf2Matcher::new(&interaction, arch.coupling_graph())
        .with_node_limit(2_000_000)
        .is_isomorphic_to_subgraph();
    usize::from(!embeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;

    #[test]
    fn embeddable_circuit_has_zero_bound() {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        assert_eq!(embedding_lower_bound(&circuit, &arch), 0);
        assert_eq!(swap_lower_bound(&circuit, &arch), 0);
    }

    #[test]
    fn triangle_on_line_needs_a_swap() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        assert_eq!(embedding_lower_bound(&circuit, &arch), 1);
        assert_eq!(swap_lower_bound(&circuit, &arch), 1);
    }

    #[test]
    fn empty_circuit_has_zero_bound() {
        let arch = devices::line(3);
        let circuit = Circuit::new(3);
        assert_eq!(embedding_lower_bound(&circuit, &arch), 0);
        assert_eq!(swap_lower_bound(&circuit, &arch), 0);
    }

    #[test]
    fn degree_surplus_counts_excess_neighbours() {
        // A star with 5 leaves on a grid whose max degree is 4: the hub needs
        // at least one SWAP to reach its fifth partner.
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 1);
        assert_eq!(swap_lower_bound(&circuit, &arch), 1);

        // Seven leaves: three partners beyond the first four, but one SWAP of
        // the hub can expose up to three new positions at once, so only one
        // extra SWAP is certain. (Claiming three here would be inadmissible:
        // grid instances with valid 2-SWAP solutions reach surplus 3.)
        let gates: Vec<Gate> = (1..=7).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(8, gates);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 1);
        assert_eq!(swap_lower_bound(&circuit, &arch), 1);

        // Eight leaves: 4 surplus over 3-per-SWAP gain needs two SWAPs.
        let gates: Vec<Gate> = (1..=8).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(9, gates);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 2);
        assert_eq!(swap_lower_bound(&circuit, &arch), 2);
    }

    #[test]
    fn degree_surplus_never_exceeds_a_known_valid_solution() {
        // Regression for the inadmissible pre-fix bound: this QUBIKOS
        // instance carries a certificate-validated 2-SWAP reference solution,
        // so no admissible lower bound may exceed 2.
        use qubikos::{generate, GeneratorConfig};
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(2, 20).with_seed(2_025_006_077))
            .expect("generates");
        assert!(swap_lower_bound(bench.circuit(), &arch) <= 2);
    }

    #[test]
    fn degree_surplus_is_zero_for_low_degree_circuits() {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2)]);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 0);
    }
}
