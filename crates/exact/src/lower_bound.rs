//! Admissible lower bounds on the optimal SWAP count.

use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::{is_subgraph_isomorphic, Vf2Matcher};

/// Lower bound from interaction-graph embeddability: 0 if the interaction
/// graph embeds into the coupling graph (the circuit *might* be SWAP-free),
/// otherwise 1 (at least one SWAP is certainly required).
///
/// This is exactly Lemma 1 of the paper turned into a check: a circuit whose
/// interaction graph is not isomorphic to any subgraph of the coupling graph
/// cannot be executed under any single mapping.
pub fn embedding_lower_bound(circuit: &Circuit, arch: &Architecture) -> usize {
    if circuit.two_qubit_gate_count() == 0 {
        return 0;
    }
    let interaction = circuit.interaction_graph();
    if is_subgraph_isomorphic(&interaction, arch.coupling_graph()) {
        0
    } else {
        1
    }
}

/// Degree-surplus lower bound: every SWAP can only connect a program qubit to
/// qubits hosted on neighbouring physical locations, so if the interaction
/// graph has more edges incident to "over-subscribed" qubits than any
/// placement can satisfy, extra SWAPs are needed.
///
/// Concretely, for a program qubit `q` with interaction degree `d(q)` mapped
/// to any physical qubit of degree `dp`, at least `d(q) - dp` of its
/// interaction partners must be brought in by SWAPs, and one SWAP brings in
/// at most one new partner for `q`. Maximising over program qubits (with the
/// most favourable physical qubit assumed) yields an admissible bound.
pub fn degree_surplus_lower_bound(circuit: &Circuit, arch: &Architecture) -> usize {
    let interaction = circuit.interaction_graph();
    let max_physical_degree = arch.coupling_graph().max_degree();
    interaction
        .nodes()
        .map(|q| interaction.degree(q).saturating_sub(max_physical_degree))
        .max()
        .unwrap_or(0)
}

/// The best cheap lower bound we can certify without search: the maximum of
/// the embedding bound and the degree-surplus bound, with a bounded-effort
/// VF2 probe so the bound stays cheap on large inputs.
pub fn swap_lower_bound(circuit: &Circuit, arch: &Architecture) -> usize {
    let degree_bound = degree_surplus_lower_bound(circuit, arch);
    if degree_bound >= 1 {
        // Already know at least one SWAP is needed; the embedding probe can
        // only confirm that, so skip it.
        return degree_bound;
    }
    if circuit.two_qubit_gate_count() == 0 {
        return 0;
    }
    let interaction = circuit.interaction_graph();
    let embeds = Vf2Matcher::new(&interaction, arch.coupling_graph())
        .with_node_limit(2_000_000)
        .is_isomorphic_to_subgraph();
    usize::from(!embeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;

    #[test]
    fn embeddable_circuit_has_zero_bound() {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        assert_eq!(embedding_lower_bound(&circuit, &arch), 0);
        assert_eq!(swap_lower_bound(&circuit, &arch), 0);
    }

    #[test]
    fn triangle_on_line_needs_a_swap() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        assert_eq!(embedding_lower_bound(&circuit, &arch), 1);
        assert_eq!(swap_lower_bound(&circuit, &arch), 1);
    }

    #[test]
    fn empty_circuit_has_zero_bound() {
        let arch = devices::line(3);
        let circuit = Circuit::new(3);
        assert_eq!(embedding_lower_bound(&circuit, &arch), 0);
        assert_eq!(swap_lower_bound(&circuit, &arch), 0);
    }

    #[test]
    fn degree_surplus_counts_excess_neighbours() {
        // A star with 5 leaves on a grid whose max degree is 4: the hub needs
        // at least one SWAP to reach its fifth partner.
        let arch = devices::grid(3, 3);
        let gates: Vec<Gate> = (1..=5).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(6, gates);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 1);
        assert_eq!(swap_lower_bound(&circuit, &arch), 1);

        // Seven leaves: at least three partners must be swapped in.
        let gates: Vec<Gate> = (1..=7).map(|i| Gate::cx(0, i)).collect();
        let circuit = Circuit::from_gates(8, gates);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 3);
        assert_eq!(swap_lower_bound(&circuit, &arch), 3);
    }

    #[test]
    fn degree_surplus_is_zero_for_low_degree_circuits() {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2)]);
        assert_eq!(degree_surplus_lower_bound(&circuit, &arch), 0);
    }
}
