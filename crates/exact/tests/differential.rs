//! Differential tests: the optimized search core against the pre-refactor
//! clone-per-branch DFS.
//!
//! The rewrite changed everything about *how* the space is searched —
//! in-place do/undo state, transposition table, SWAP-sequence
//! canonicalization, the packing lower bound — and none of it may change
//! *what* is found: `optimal_swaps` and `proven` must be bit-identical on
//! every instance both solvers can afford. Randomized circuits on a line and
//! a grid exercise exactly the regimes where the dedup/canonicalization
//! machinery fires (many commuting SWAP orderings on the line, branching
//! placements on the grid).

use proptest::prelude::*;
use qubikos_arch::devices;
use qubikos_circuit::{Circuit, Gate};
use qubikos_exact::solver::reference::ReferenceSolver;
use qubikos_exact::{ExactConfig, ExactSolver};

/// Strategy: a random all-two-qubit circuit (single-qubit gates never affect
/// SWAP optimality, so they would only dilute the search).
fn arb_circuit(num_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..num_qubits, 0..num_qubits).prop_filter_map("distinct qubits", move |(a, b)| {
        (a != b).then(|| Gate::cx(a, b))
    });
    proptest::collection::vec(gate, 1..max_gates + 1)
        .prop_map(move |gates| Circuit::from_gates(num_qubits, gates))
}

/// Config both solvers share; the budget is generous enough that every
/// generated instance is decided, so `proven` disagreements cannot hide
/// behind budget noise.
fn config(max_swaps: usize) -> ExactConfig {
    ExactConfig {
        max_swaps,
        node_budget: 5_000_000,
    }
}

fn assert_solvers_agree(circuit: &Circuit, arch: &qubikos_arch::Architecture, max_swaps: usize) {
    let optimized = ExactSolver::new(config(max_swaps)).solve(circuit, arch);
    let reference = ReferenceSolver::new(config(max_swaps)).solve(circuit, arch);
    assert_eq!(
        optimized.optimal_swaps, reference.optimal_swaps,
        "optimal_swaps diverged on {circuit:?}"
    );
    assert_eq!(
        optimized.proven, reference.proven,
        "proven diverged on {circuit:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Line devices maximise commuting-SWAP orderings — the transposition
    /// table's and the canonicalizer's favourite failure surface.
    #[test]
    fn optimized_and_reference_agree_on_the_line(circuit in arb_circuit(4, 7)) {
        let arch = devices::line(4);
        assert_solvers_agree(&circuit, &arch, 3);
    }

    /// Grid devices maximise placement branching (degree-4 centre), the
    /// in-place ready-set bookkeeping's favourite failure surface.
    #[test]
    fn optimized_and_reference_agree_on_the_grid(circuit in arb_circuit(6, 6)) {
        let arch = devices::grid(2, 3);
        assert_solvers_agree(&circuit, &arch, 2);
    }
}

/// A fixed sweep of deterministic seeds over real QUBIKOS instances — the
/// exact population the §IV-A study feeds the solver — so the differential
/// check also covers the generator's structured (backbone + padding) shape,
/// not just uniform-random circuits.
#[test]
fn optimized_and_reference_agree_on_qubikos_instances() {
    use qubikos::{generate, GeneratorConfig};
    let arch = devices::grid(3, 3);
    for designed in 1..=2usize {
        for seed in 0..3u64 {
            let bench = generate(&arch, &GeneratorConfig::new(designed, 12).with_seed(seed))
                .expect("generates");
            assert_solvers_agree(bench.circuit(), &arch, 3);
        }
    }
}
