//! Golden exact-solver regression fixtures (the `golden_swaps.rs` pattern
//! applied to the OLSQ2 substitute).
//!
//! Solves a fixed set of seeded QUBIKOS instances on Grid3x3 and Aspen-4 and
//! pins `optimal_swaps`, `proven`, **and `nodes_explored`** exactly. The
//! node count is a deliberate tripwire: any change to the search order, the
//! transposition table, the canonicalization rules, or the packing bound
//! shifts it — so a regression that silently blows the node budget back up
//! (or an "optimization" that quietly changes answers) fails here loudly
//! instead of drifting the §IV-A study's budget.
//!
//! If a change *intentionally* alters the search, regenerate the constants
//! and record the node-count movement in the PR description. Node counts
//! are deterministic across platforms and optimization levels: every
//! iteration order in the core is fixed and the Zobrist keys come from a
//! seeded SplitMix64 stream.

use qubikos::{generate, GeneratorConfig};
use qubikos_arch::DeviceKind;
use qubikos_exact::{ExactConfig, ExactSolver};

/// One pinned instance: (designed swaps, generator seed, expected nodes).
struct Fixture {
    swaps: usize,
    seed: u64,
    nodes: u64,
}

fn check_fixtures(device: DeviceKind, gates: usize, fixtures: &[Fixture]) {
    let arch = device.build();
    let solver = ExactSolver::new(ExactConfig::default());
    for f in fixtures {
        let bench = generate(
            &arch,
            &GeneratorConfig::new(f.swaps, gates).with_seed(f.seed),
        )
        .expect("generates");
        let result = solver.solve(bench.circuit(), &arch);
        let label = format!("{}/swaps={}/seed={}", device.name(), f.swaps, f.seed);
        assert_eq!(
            result.optimal_swaps,
            Some(f.swaps),
            "{label}: optimum changed"
        );
        assert!(result.proven, "{label}: result no longer proven");
        assert_eq!(
            result.nodes_explored, f.nodes,
            "{label}: search behaviour changed (got {} nodes, golden {})",
            result.nodes_explored, f.nodes
        );
    }
}

#[test]
fn golden_exact_on_grid3x3() {
    check_fixtures(
        DeviceKind::Grid3x3,
        16,
        &[
            Fixture {
                swaps: 1,
                seed: 11,
                nodes: 2669,
            },
            Fixture {
                swaps: 1,
                seed: 29,
                nodes: 1171,
            },
            Fixture {
                swaps: 2,
                seed: 11,
                nodes: 2407,
            },
            Fixture {
                swaps: 2,
                seed: 29,
                nodes: 1195,
            },
            Fixture {
                swaps: 3,
                seed: 11,
                nodes: 5492,
            },
            Fixture {
                swaps: 3,
                seed: 29,
                nodes: 6481,
            },
        ],
    );
}

#[test]
fn golden_exact_on_aspen4() {
    check_fixtures(
        DeviceKind::Aspen4,
        12,
        &[
            Fixture {
                swaps: 1,
                seed: 5,
                nodes: 9815,
            },
            Fixture {
                swaps: 1,
                seed: 29,
                nodes: 3640,
            },
            Fixture {
                swaps: 2,
                seed: 5,
                nodes: 341,
            },
            Fixture {
                swaps: 2,
                seed: 29,
                nodes: 1596,
            },
        ],
    );
}
