//! Compact undirected graph with adjacency lists.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a node in a [`Graph`].
///
/// Nodes are always the contiguous range `0..node_count()`, which lets
/// callers index auxiliary arrays (mappings, distance rows, decay tables)
/// directly by node id.
pub type NodeId = usize;

/// An undirected edge between two nodes.
///
/// Edges are stored in canonical order (`min`, `max`) so that two `Edge`
/// values compare equal regardless of the order the endpoints were given.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates a canonical edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; self-loops are never meaningful for coupling or
    /// interaction graphs.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert!(a != b, "self-loop edge ({a}, {a}) is not allowed");
        Edge {
            u: a.min(b),
            v: a.max(b),
        }
    }

    /// Returns the endpoint that is not `n`, or `None` if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.u {
            Some(self.v)
        } else if n == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Returns `true` if `n` is one of the endpoints.
    pub fn contains(&self, n: NodeId) -> bool {
        self.u == n || self.v == n
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((a, b): (NodeId, NodeId)) -> Self {
        Edge::new(a, b)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// An undirected simple graph stored as adjacency lists.
///
/// Node ids are dense (`0..node_count()`). Parallel edges and self-loops are
/// rejected. Adjacency lists are kept sorted so neighbour iteration is
/// deterministic, which keeps every seeded experiment reproducible.
///
/// # Example
///
/// ```
/// use qubikos_graph::Graph;
///
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph with no nodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or if an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::with_nodes(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Adds the undirected edge `(a, b)`. Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(a != b, "self-loop edge ({a}, {a}) is not allowed");
        let n = self.node_count();
        assert!(a < n && b < n, "edge ({a}, {b}) out of range for {n} nodes");
        if self.has_edge(a, b) {
            return false;
        }
        let pos_a = self.adjacency[a].binary_search(&b).unwrap_err();
        self.adjacency[a].insert(pos_a, b);
        let pos_b = self.adjacency[b].binary_search(&a).unwrap_err();
        self.adjacency[b].insert(pos_b, a);
        self.edge_count += 1;
        true
    }

    /// Returns `true` if the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a >= self.node_count() || b >= self.node_count() {
            return false;
        }
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Neighbours of `n` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adjacency[n]
    }

    /// Degree of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n].len()
    }

    /// Maximum degree over all nodes, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over node ids `0..node_count()`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count()
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| v > u)
                .map(move |&v| Edge { u, v })
        })
    }

    /// Sorted degree sequence (descending).
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut degs: Vec<usize> = self.adjacency.iter().map(Vec::len).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        degs
    }

    /// Number of nodes whose degree is at least `d`.
    pub fn count_nodes_with_degree_at_least(&self, d: usize) -> usize {
        self.adjacency.iter().filter(|nbrs| nbrs.len() >= d).count()
    }

    /// Returns `true` if the graph is connected (the empty graph is connected).
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        crate::traversal::connected_components(self).len() == 1
    }

    /// Induced subgraph on `nodes`, together with the mapping from new node
    /// ids to the original ids (`result.1[new] == old`).
    ///
    /// Nodes not present in `nodes` are dropped along with their incident
    /// edges. Duplicate entries in `nodes` are ignored.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let selected: BTreeSet<NodeId> = nodes.iter().copied().collect();
        let old_ids: Vec<NodeId> = selected.iter().copied().collect();
        let mut new_id = vec![usize::MAX; self.node_count()];
        for (new, &old) in old_ids.iter().enumerate() {
            new_id[old] = new;
        }
        let mut g = Graph::with_nodes(old_ids.len());
        for e in self.edges() {
            if selected.contains(&e.u) && selected.contains(&e.v) {
                g.add_edge(new_id[e.u], new_id[e.v]);
            }
        }
        (g, old_ids)
    }

    /// Relabels the graph nodes through `perm`, where `perm[old] == new`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..node_count()`.
    pub fn relabeled(&self, perm: &[NodeId]) -> Graph {
        assert_eq!(perm.len(), self.node_count(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut g = Graph::with_nodes(self.node_count());
        for e in self.edges() {
            g.add_edge(perm[e.u], perm[e.v]);
        }
        g
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(nodes={}, edges={})",
            self.node_count(),
            self.edge_count()
        )
    }
}

impl FromIterator<(NodeId, NodeId)> for Graph {
    /// Builds a graph from an edge list, sizing the node set to the largest
    /// endpoint seen.
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        let edges: Vec<(NodeId, NodeId)> = iter.into_iter().collect();
        let n = edges.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(0);
        Graph::from_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_is_canonical() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(3, 1).u, 1);
        assert_eq!(Edge::new(3, 1).v, 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(2, 2);
    }

    #[test]
    fn edge_other_and_contains() {
        let e = Edge::new(1, 4);
        assert_eq!(e.other(1), Some(4));
        assert_eq!(e.other(4), Some(1));
        assert_eq!(e.other(2), None);
        assert!(e.contains(1));
        assert!(!e.contains(0));
    }

    #[test]
    fn add_edge_and_query() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn duplicate_edge_is_ignored() {
        let mut g = Graph::with_nodes(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = path4();
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterator_is_canonical_and_complete() {
        let g = path4();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]
        );
    }

    #[test]
    fn degree_sequence_descending() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_sequence(), vec![3, 1, 1, 1]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.count_nodes_with_degree_at_least(2), 1);
        assert_eq!(g.count_nodes_with_degree_at_least(1), 4);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = path4();
        let (sub, ids) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(0, 1)); // old (1,2)
        assert!(sub.has_edge(1, 2)); // old (2,3)
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = path4();
        let (sub, ids) = g.induced_subgraph(&[2, 2, 3]);
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn relabeled_preserves_structure() {
        let g = path4();
        let relabeled = g.relabeled(&[3, 2, 1, 0]);
        assert_eq!(relabeled.edge_count(), 3);
        assert!(relabeled.has_edge(3, 2));
        assert!(relabeled.has_edge(2, 1));
        assert!(relabeled.has_edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabeled_rejects_non_permutation() {
        let g = path4();
        let _ = g.relabeled(&[0, 0, 1, 2]);
    }

    #[test]
    fn from_iterator_sizes_to_max_endpoint() {
        let g: Graph = [(0usize, 5usize), (5, 2)].into_iter().collect();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn connectivity() {
        assert!(path4().is_connected());
        let mut g = path4();
        g.add_node();
        assert!(!g.is_connected());
        assert!(Graph::new().is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", path4()).is_empty());
        assert!(!format!("{}", Edge::new(0, 1)).is_empty());
    }
}
