//! Distance oracles: exact hop distances behind one query API.
//!
//! Every SWAP router and exact lower bound in the suite scores against
//! coupling-graph distances. Up to ~50 qubits the right representation is the
//! eagerly-built dense [`DistanceMatrix`] (one BFS per node, O(n²) memory, a
//! single array read per query). At Eagle/Osprey scale (127/433 qubits,
//! heavy-hex) the n² matrix stops being free and almost all of it is never
//! read during a route: the [`BfsOracle`] instead keeps the adjacency in CSR
//! form and computes distance *rows* on demand, recycling them through a
//! small stamped LRU cache so repeated queries against the same source (the
//! common router access pattern — every candidate SWAP is scored against the
//! same handful of front-gate qubits) cost one array read.
//!
//! Both implementations answer **exact** BFS hop distances — the sparse
//! oracle is lazy, not approximate — so selecting one or the other can never
//! change a routing decision. [`DistanceOracle`] is the closed enum over the
//! two, chosen automatically by node count (see
//! [`OracleKind::auto_for`]) with an explicit override for tests and
//! benchmarks.

use crate::csr::CsrGraph;
use crate::distance::DistanceMatrix;
use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Largest node count for which [`OracleKind::auto_for`] picks the dense
/// matrix. Chosen so every original paper device through Sycamore-54 and
/// Rochester-53 keeps its zero-indirection dense path, while Eagle-127 and
/// Osprey-433 route without ever materializing n² distances.
pub const DENSE_ORACLE_MAX_NODES: usize = 64;

/// Number of distance rows the sparse oracle caches. Peak oracle memory is
/// `SPARSE_ROW_CACHE_CAPACITY × n` words — linear in the device size, never
/// quadratic — while still covering every qubit a routing front plausibly
/// touches between evictions.
pub const SPARSE_ROW_CACHE_CAPACITY: usize = 64;

/// Which distance-oracle implementation an architecture uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OracleKind {
    /// Eager all-pairs [`DistanceMatrix`] (O(n²) memory, O(1) queries).
    Dense,
    /// On-demand [`BfsOracle`] (O(cache × n) memory, amortized O(1) queries
    /// against cached rows, one BFS per cache miss).
    Sparse,
}

impl OracleKind {
    /// The automatic selection rule: dense up to
    /// [`DENSE_ORACLE_MAX_NODES`] nodes, sparse above.
    pub fn auto_for(nodes: usize) -> OracleKind {
        if nodes <= DENSE_ORACLE_MAX_NODES {
            OracleKind::Dense
        } else {
            OracleKind::Sparse
        }
    }

    /// Stable lower-case name (`"dense"` / `"sparse"`).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Dense => "dense",
            OracleKind::Sparse => "sparse",
        }
    }
}

/// Counters describing how an oracle has been used, for the bench layer's
/// per-route reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Point-distance queries answered. The dense matrix does not count its
    /// queries (an atomic increment would dominate its single array read),
    /// so this is 0 for [`OracleKind::Dense`].
    pub queries: u64,
    /// BFS rows computed. The dense matrix computes all `n` rows eagerly at
    /// construction; the sparse oracle counts every cache-miss BFS, so the
    /// value can exceed `n` when eviction recycles rows.
    pub rows_computed: u64,
    /// Queries answered from a cached row (always 0 for the dense matrix,
    /// which has no cache to hit).
    pub cache_hits: u64,
}

impl OracleStats {
    /// The difference `self - earlier`, for per-route deltas over a shared
    /// oracle.
    #[must_use]
    pub fn since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            queries: self.queries - earlier.queries,
            rows_computed: self.rows_computed - earlier.rows_computed,
            cache_hits: self.cache_hits - earlier.cache_hits,
        }
    }
}

/// One cached distance row.
#[derive(Debug)]
struct Slot {
    node: u32,
    last_used: u64,
    row: Arc<[usize]>,
}

/// The stamped LRU row cache plus the BFS scratch buffers, all behind one
/// mutex so a row compute reuses the same allocations across route calls.
#[derive(Debug)]
struct RowCache {
    /// `slot_of[node]` = slot index holding that node's row, or `NO_SLOT`.
    slot_of: Vec<u32>,
    slots: Vec<Slot>,
    clock: u64,
    dist_scratch: Vec<usize>,
    queue_scratch: VecDeque<u32>,
}

const NO_SLOT: u32 = u32::MAX;

impl RowCache {
    fn new(nodes: usize) -> Self {
        RowCache {
            slot_of: vec![NO_SLOT; nodes],
            slots: Vec::new(),
            clock: 0,
            dist_scratch: vec![0; nodes],
            queue_scratch: VecDeque::new(),
        }
    }

    /// The cached row for `node`, refreshing its LRU stamp.
    fn get(&mut self, node: NodeId) -> Option<Arc<[usize]>> {
        let slot = self.slot_of[node];
        if slot == NO_SLOT {
            return None;
        }
        self.clock += 1;
        let slot = &mut self.slots[slot as usize];
        slot.last_used = self.clock;
        Some(Arc::clone(&slot.row))
    }

    /// Computes the BFS row for `node` and caches it, evicting the least
    /// recently used row once `capacity` slots are full.
    fn compute_and_insert(
        &mut self,
        csr: &CsrGraph,
        node: NodeId,
        capacity: usize,
    ) -> Arc<[usize]> {
        csr.bfs_into(node, &mut self.dist_scratch, &mut self.queue_scratch);
        let row: Arc<[usize]> = Arc::from(&self.dist_scratch[..]);
        self.clock += 1;
        let slot_index = if self.slots.len() < capacity {
            self.slots.push(Slot {
                node: node as u32,
                last_used: self.clock,
                row: Arc::clone(&row),
            });
            self.slots.len() - 1
        } else {
            let (victim, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .expect("capacity is at least one slot");
            self.slot_of[self.slots[victim].node as usize] = NO_SLOT;
            self.slots[victim] = Slot {
                node: node as u32,
                last_used: self.clock,
                row: Arc::clone(&row),
            };
            victim
        };
        self.slot_of[node] = slot_index as u32;
        row
    }
}

/// On-demand exact-distance oracle over a CSR adjacency.
///
/// Queries are answered from BFS rows computed lazily and recycled through a
/// bounded LRU cache; see the module docs for the design rationale. All
/// distances are exact hop counts, so any two oracles over the same graph —
/// and the dense matrix — agree on every query regardless of cache state,
/// query order, or thread interleaving. Only the [`OracleStats`] counters
/// are schedule-dependent.
///
/// The oracle is internally synchronized (`&self` queries from any number of
/// threads); cloning produces an oracle over the same graph with a cold
/// cache and zeroed stats.
#[derive(Debug)]
pub struct BfsOracle {
    csr: CsrGraph,
    capacity: usize,
    cache: Mutex<RowCache>,
    queries: AtomicU64,
    rows_computed: AtomicU64,
    cache_hits: AtomicU64,
    /// `(diameter, connected)` of the graph, computed once on first use by a
    /// full BFS sweep that bypasses the row cache.
    extent: OnceLock<(Option<usize>, bool)>,
}

impl BfsOracle {
    /// An oracle over `graph` with the default row-cache capacity.
    pub fn new(graph: &Graph) -> Self {
        Self::with_row_capacity(graph, SPARSE_ROW_CACHE_CAPACITY)
    }

    /// An oracle over `graph` caching at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_row_capacity(graph: &Graph, capacity: usize) -> Self {
        assert!(capacity > 0, "row cache needs at least one slot");
        let csr = CsrGraph::from_graph(graph);
        let nodes = csr.node_count();
        BfsOracle {
            csr,
            capacity,
            cache: Mutex::new(RowCache::new(nodes)),
            queries: AtomicU64::new(0),
            rows_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            extent: OnceLock::new(),
        }
    }

    /// Number of nodes the oracle answers for.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Maximum number of rows the cache holds.
    pub fn row_cache_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rows currently cached (bounded by the capacity — the
    /// structural guarantee behind the O(capacity × n) memory bound).
    pub fn cached_rows(&self) -> usize {
        self.lock_cache().slots.len()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, RowCache> {
        // A panic while holding the lock can only leave a *valid* cache
        // behind (rows are inserted fully formed), so poisoning is not a
        // correctness signal worth propagating.
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Exact hop distance between `a` and `b` (`usize::MAX` when
    /// disconnected). See [`Self::try_distance`] for the checked variant.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range (checked in debug builds; in
    /// release builds the underlying indexing panics).
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let n = self.node_count();
        debug_assert!(a < n && b < n, "node out of range");
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.lock_cache();
        // Distances are symmetric: either endpoint's row answers the query,
        // which roughly halves the misses for scattered access patterns.
        if let Some(row) = cache.get(a) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return row[b];
        }
        if let Some(row) = cache.get(b) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return row[a];
        }
        self.rows_computed.fetch_add(1, Ordering::Relaxed);
        cache.compute_and_insert(&self.csr, a, self.capacity)[b]
    }

    /// Checked [`Self::distance`]: `None` when either node is out of range.
    pub fn try_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let n = self.node_count();
        (a < n && b < n).then(|| self.distance(a, b))
    }

    /// The full distance row from `a`, shared with the cache (cheap to
    /// clone, stays valid across later queries and evictions).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn distance_row(&self, a: NodeId) -> Arc<[usize]> {
        assert!(a < self.node_count(), "node out of range");
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.lock_cache();
        if let Some(row) = cache.get(a) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return row;
        }
        self.rows_computed.fetch_add(1, Ordering::Relaxed);
        cache.compute_and_insert(&self.csr, a, self.capacity)
    }

    /// Usage counters since construction (or since the last clone).
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            queries: self.queries.load(Ordering::Relaxed),
            rows_computed: self.rows_computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    fn extent(&self) -> (Option<usize>, bool) {
        *self.extent.get_or_init(|| {
            let n = self.node_count();
            if n == 0 {
                return (None, true);
            }
            // One BFS per node with a single reusable buffer: O(n·m) time,
            // O(n) memory, no cache pollution — the sweep runs at most once.
            let mut dist = vec![0usize; n];
            let mut queue = VecDeque::new();
            let mut max = 0;
            let mut connected = true;
            for start in 0..n {
                self.csr.bfs_into(start, &mut dist, &mut queue);
                for &d in &dist {
                    if d == usize::MAX {
                        connected = false;
                    } else {
                        max = max.max(d);
                    }
                }
            }
            let diameter = (connected && n >= 2).then_some(max);
            (diameter, connected)
        })
    }

    /// Largest finite distance, or `None` if the graph has fewer than two
    /// nodes or is disconnected (the [`DistanceMatrix::diameter`] contract).
    pub fn diameter(&self) -> Option<usize> {
        self.extent().0
    }

    /// `true` if every pair of nodes has a finite distance.
    pub fn is_connected(&self) -> bool {
        self.extent().1
    }
}

impl Clone for BfsOracle {
    /// Clones the graph structure with a cold cache and zeroed stats — a
    /// clone answers identically but re-derives its rows.
    fn clone(&self) -> Self {
        let nodes = self.csr.node_count();
        BfsOracle {
            csr: self.csr.clone(),
            capacity: self.capacity,
            cache: Mutex::new(RowCache::new(nodes)),
            queries: AtomicU64::new(0),
            rows_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            extent: self.extent.clone(),
        }
    }
}

impl PartialEq for BfsOracle {
    /// Structural equality: same graph and capacity. Cache contents and
    /// stats are usage artifacts, not identity.
    fn eq(&self, other: &Self) -> bool {
        self.csr == other.csr && self.capacity == other.capacity
    }
}

impl Eq for BfsOracle {}

/// A borrowed or shared distance row, depending on the oracle behind it.
///
/// Derefs to `[usize]`; `row[b]` is the distance from the row's source to
/// `b`.
#[derive(Debug, Clone)]
pub enum DistanceRow<'a> {
    /// A row borrowed straight out of the dense matrix.
    Borrowed(&'a [usize]),
    /// A row shared with the sparse oracle's cache.
    Shared(Arc<[usize]>),
}

impl Deref for DistanceRow<'_> {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        match self {
            DistanceRow::Borrowed(row) => row,
            DistanceRow::Shared(row) => row,
        }
    }
}

/// The distance oracle of an architecture: dense matrix or sparse on-demand
/// BFS, one query API (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistanceOracle {
    /// Eager all-pairs matrix.
    Dense(DistanceMatrix),
    /// Lazy cached-row oracle.
    Sparse(BfsOracle),
}

impl DistanceOracle {
    /// Builds the oracle [`OracleKind::auto_for`] selects for the graph's
    /// size.
    pub fn auto(graph: &Graph) -> Self {
        Self::build(graph, OracleKind::auto_for(graph.node_count()))
    }

    /// Builds the requested oracle kind, overriding the automatic rule.
    pub fn build(graph: &Graph, kind: OracleKind) -> Self {
        match kind {
            OracleKind::Dense => DistanceOracle::Dense(DistanceMatrix::new(graph)),
            OracleKind::Sparse => DistanceOracle::Sparse(BfsOracle::new(graph)),
        }
    }

    /// Which implementation this oracle is.
    pub fn kind(&self) -> OracleKind {
        match self {
            DistanceOracle::Dense(_) => OracleKind::Dense,
            DistanceOracle::Sparse(_) => OracleKind::Sparse,
        }
    }

    /// Number of nodes the oracle answers for.
    pub fn node_count(&self) -> usize {
        match self {
            DistanceOracle::Dense(matrix) => matrix.node_count(),
            DistanceOracle::Sparse(oracle) => oracle.node_count(),
        }
    }

    /// Exact hop distance between `a` and `b` (`usize::MAX` when
    /// disconnected).
    ///
    /// # Panics
    ///
    /// Out-of-range nodes are debug-asserted; release behaviour is
    /// unspecified (panic or an unrelated value). Use [`Self::try_distance`]
    /// when the indices are not already validated.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        match self {
            DistanceOracle::Dense(matrix) => matrix.get(a, b),
            DistanceOracle::Sparse(oracle) => oracle.distance(a, b),
        }
    }

    /// Checked [`Self::distance`]: `None` when either node is out of range.
    pub fn try_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        match self {
            DistanceOracle::Dense(matrix) => matrix.try_get(a, b),
            DistanceOracle::Sparse(oracle) => oracle.try_distance(a, b),
        }
    }

    /// The distances from `a` to every node.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn distance_row(&self, a: NodeId) -> DistanceRow<'_> {
        match self {
            DistanceOracle::Dense(matrix) => DistanceRow::Borrowed(matrix.row(a)),
            DistanceOracle::Sparse(oracle) => DistanceRow::Shared(oracle.distance_row(a)),
        }
    }

    /// Largest finite distance (see [`DistanceMatrix::diameter`]).
    pub fn diameter(&self) -> Option<usize> {
        match self {
            DistanceOracle::Dense(matrix) => matrix.diameter(),
            DistanceOracle::Sparse(oracle) => oracle.diameter(),
        }
    }

    /// `true` if every pair of nodes has a finite distance.
    pub fn is_connected(&self) -> bool {
        match self {
            DistanceOracle::Dense(matrix) => matrix.is_connected(),
            DistanceOracle::Sparse(oracle) => oracle.is_connected(),
        }
    }

    /// Usage counters. For the dense matrix: `rows_computed = n` (eager),
    /// queries and hits uncounted (0) — see [`OracleStats`].
    pub fn stats(&self) -> OracleStats {
        match self {
            DistanceOracle::Dense(matrix) => OracleStats {
                queries: 0,
                rows_computed: matrix.node_count() as u64,
                cache_hits: 0,
            },
            DistanceOracle::Sparse(oracle) => oracle.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn auto_rule_matches_threshold() {
        assert_eq!(OracleKind::auto_for(1), OracleKind::Dense);
        assert_eq!(
            OracleKind::auto_for(DENSE_ORACLE_MAX_NODES),
            OracleKind::Dense
        );
        assert_eq!(
            OracleKind::auto_for(DENSE_ORACLE_MAX_NODES + 1),
            OracleKind::Sparse
        );
        assert_eq!(OracleKind::Dense.name(), "dense");
        assert_eq!(OracleKind::Sparse.name(), "sparse");

        let small = generators::grid_graph(3, 3);
        assert_eq!(DistanceOracle::auto(&small).kind(), OracleKind::Dense);
        let large = generators::grid_graph(9, 10);
        assert_eq!(DistanceOracle::auto(&large).kind(), OracleKind::Sparse);
    }

    #[test]
    fn sparse_answers_match_dense_on_grid() {
        let g = generators::grid_graph(5, 6);
        let dense = DistanceMatrix::new(&g);
        let sparse = BfsOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(sparse.distance(a, b), dense.get(a, b), "({a}, {b})");
            }
        }
        assert_eq!(sparse.diameter(), dense.diameter());
        assert!(sparse.is_connected());
    }

    #[test]
    fn rows_match_and_survive_eviction() {
        let g = generators::grid_graph(4, 4);
        let dense = DistanceMatrix::new(&g);
        let sparse = BfsOracle::with_row_capacity(&g, 2);
        // Fetch every row with a 2-slot cache: each fetch evicts, but every
        // returned row stays valid (Arc) and exact.
        let rows: Vec<Arc<[usize]>> = g.nodes().map(|a| sparse.distance_row(a)).collect();
        for (a, row) in rows.iter().enumerate() {
            assert_eq!(&row[..], dense.row(a), "row {a}");
        }
        assert!(sparse.cached_rows() <= 2);
        assert_eq!(sparse.stats().rows_computed, g.node_count() as u64);
    }

    #[test]
    fn cache_hits_are_counted_and_symmetric() {
        let g = generators::path_graph(10);
        let oracle = BfsOracle::new(&g);
        assert_eq!(oracle.distance(0, 9), 9);
        let after_first = oracle.stats();
        assert_eq!(after_first.rows_computed, 1);
        assert_eq!(after_first.cache_hits, 0);
        // Same source row: hit.
        assert_eq!(oracle.distance(0, 4), 4);
        // Symmetric query answered by the cached source row: also a hit.
        assert_eq!(oracle.distance(5, 0), 5);
        let stats = oracle.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.rows_computed, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(
            stats.since(&after_first),
            OracleStats {
                queries: 2,
                rows_computed: 0,
                cache_hits: 2,
            }
        );
    }

    #[test]
    fn lru_evicts_the_stalest_row() {
        let g = generators::path_graph(6);
        let oracle = BfsOracle::with_row_capacity(&g, 2);
        let _ = oracle.distance(0, 1); // cache: {0}
        let _ = oracle.distance(1, 2); // cache: {0, 1}
        let _ = oracle.distance(0, 3); // refresh 0
        let _ = oracle.distance(2, 3); // evicts 1, cache: {0, 2}
        let before = oracle.stats().rows_computed;
        let _ = oracle.distance(0, 5); // still cached
        let _ = oracle.distance(2, 5); // still cached
        assert_eq!(oracle.stats().rows_computed, before);
        let _ = oracle.distance(1, 5); // 1 was evicted: recompute
        assert_eq!(oracle.stats().rows_computed, before + 1);
    }

    #[test]
    fn disconnected_graphs_report_max_and_no_diameter() {
        let mut g = generators::path_graph(3);
        let isolated = g.add_node();
        let oracle = BfsOracle::new(&g);
        assert_eq!(oracle.distance(0, isolated), usize::MAX);
        assert_eq!(oracle.diameter(), None);
        assert!(!oracle.is_connected());
        let auto = DistanceOracle::auto(&g);
        assert_eq!(auto.try_distance(0, isolated), Some(usize::MAX));
        assert!(!auto.is_connected());
    }

    #[test]
    fn try_distance_checks_bounds() {
        let g = generators::path_graph(4);
        for oracle in [
            DistanceOracle::build(&g, OracleKind::Dense),
            DistanceOracle::build(&g, OracleKind::Sparse),
        ] {
            assert_eq!(oracle.try_distance(0, 3), Some(3));
            assert_eq!(oracle.try_distance(0, 4), None);
            assert_eq!(oracle.try_distance(9, 0), None);
        }
    }

    #[test]
    fn clone_answers_identically_with_cold_state() {
        let g = generators::grid_graph(4, 4);
        let oracle = BfsOracle::new(&g);
        let _ = oracle.distance(0, 15);
        let clone = oracle.clone();
        assert_eq!(clone.stats(), OracleStats::default());
        assert_eq!(clone.cached_rows(), 0);
        assert_eq!(clone.distance(0, 15), oracle.distance(0, 15));
        assert_eq!(clone, oracle);
    }

    #[test]
    fn distance_row_agrees_between_oracles() {
        let g = generators::cycle_graph(9);
        let dense = DistanceOracle::build(&g, OracleKind::Dense);
        let sparse = DistanceOracle::build(&g, OracleKind::Sparse);
        for a in g.nodes() {
            assert_eq!(&dense.distance_row(a)[..], &sparse.distance_row(a)[..]);
        }
        assert_eq!(dense.diameter(), sparse.diameter());
        assert_eq!(dense.node_count(), sparse.node_count());
    }

    #[test]
    fn tiny_graphs() {
        let empty = BfsOracle::new(&Graph::new());
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.diameter(), None);
        assert!(empty.is_connected());
        let single = BfsOracle::new(&Graph::with_nodes(1));
        assert_eq!(single.distance(0, 0), 0);
        assert_eq!(single.diameter(), None);
        assert!(single.is_connected());
    }

    #[test]
    fn concurrent_queries_agree_with_dense() {
        let g = generators::grid_graph(8, 9);
        let dense = DistanceMatrix::new(&g);
        let oracle = BfsOracle::with_row_capacity(&g, 4);
        let n = g.node_count();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let oracle = &oracle;
                let dense = &dense;
                scope.spawn(move || {
                    for a in (t..n).step_by(4) {
                        for b in 0..n {
                            assert_eq!(oracle.distance(a, b), dense.get(a, b));
                        }
                    }
                });
            }
        });
        assert!(oracle.cached_rows() <= 4);
    }

    /// A random connected graph: a random spanning tree (each node links to
    /// a random earlier node) plus arbitrary extra edges.
    fn random_connected_graph(n: usize, parents: &[usize], extras: &[(usize, usize)]) -> Graph {
        let mut g = Graph::with_nodes(n);
        for (node, &p) in parents.iter().enumerate().take(n - 1) {
            let node = node + 1;
            g.add_edge(node, p % node);
        }
        for &(a, b) in extras {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(a, b);
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The satellite contract: the sparse oracle and the dense matrix
        /// agree on every pair of every random connected graph, including
        /// under a pathologically small cache.
        #[test]
        fn dense_equals_sparse_on_random_connected_graphs(
            n in 2usize..48,
            parents in proptest::collection::vec(0usize..1000, 47..48),
            extras in proptest::collection::vec((0usize..1000, 0usize..1000), 0..30),
            capacity in 1usize..6,
        ) {
            let g = random_connected_graph(n, &parents, &extras);
            prop_assert!(g.is_connected());
            let dense = DistanceMatrix::new(&g);
            let sparse = BfsOracle::with_row_capacity(&g, capacity);
            for a in g.nodes() {
                for b in g.nodes() {
                    prop_assert_eq!(sparse.distance(a, b), dense.get(a, b));
                }
            }
            prop_assert_eq!(sparse.diameter(), dense.diameter());
            prop_assert!(sparse.cached_rows() <= capacity);
        }
    }
}
