//! Distance oracles: exact hop distances behind one query API.
//!
//! Every SWAP router and exact lower bound in the suite scores against
//! coupling-graph distances. Up to ~50 qubits the right representation is the
//! eagerly-built dense [`DistanceMatrix`] (one BFS per node, O(n²) memory, a
//! single array read per query). At Eagle/Osprey scale (127/433 qubits,
//! heavy-hex) the n² matrix stops being free and almost all of it is never
//! read during a route: the [`BfsOracle`] instead keeps the adjacency in CSR
//! form and computes distance *rows* on demand, recycling them through a
//! small stamped LRU cache so repeated queries against the same source (the
//! common router access pattern — every candidate SWAP is scored against the
//! same handful of front-gate qubits) cost one array read.
//!
//! On top of the exact tiers sits the [`LandmarkOracle`]
//! (see [`crate::landmark`]): an exact `BfsOracle` paired with a small set of
//! landmark BFS rows answering O(L) triangle-inequality *bounds* for the
//! candidate-scan workload, with every point query still answered exactly.
//!
//! All point-distance answers are **exact** BFS hop distances — the sparse
//! and landmark oracles are lazy, not approximate — so selecting any tier
//! can never change a routing decision. [`DistanceOracle`] is the closed
//! enum over the three, chosen automatically by node count (see
//! [`OracleKind::auto_for`]) with an explicit override for tests and
//! benchmarks.
//!
//! The row cache additionally supports **pinning**: the routing kernel
//! marks the physical qubits of the current front gates as pinned (via
//! [`BfsOracle::pin_rows`]), and eviction then only considers unpinned
//! rows, so the handful of rows every candidate scan touches survive
//! scattered queries that would otherwise cycle them out.

use crate::csr::CsrGraph;
use crate::distance::DistanceMatrix;
use crate::graph::{Graph, NodeId};
use crate::landmark::LandmarkOracle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Largest node count for which [`OracleKind::auto_for`] picks the dense
/// matrix. Chosen so every original paper device through Sycamore-54 and
/// Rochester-53 keeps its zero-indirection dense path, while Eagle-127 and
/// Osprey-433 route without ever materializing n² distances.
pub const DENSE_ORACLE_MAX_NODES: usize = 64;

/// Floor on the number of distance rows the cached oracles keep resident.
/// The default capacity is [`default_row_capacity`] — `max(64, n/3)` — so
/// peak oracle memory stays well below the n² dense matrix while the cache
/// covers every qubit a routing front plausibly touches between evictions,
/// even on devices whose fronts span hundreds of qubits.
pub const SPARSE_ROW_CACHE_CAPACITY: usize = 64;

/// Default row-cache capacity for a device of `nodes` qubits: the
/// [`SPARSE_ROW_CACHE_CAPACITY`] floor, growing as `n/3` on large devices.
/// Routing fronts on device-width workloads touch O(n) distinct distance
/// sources per candidate scan; a capacity that scales with the device keeps
/// the per-decision working set resident (so front pinning has slots to
/// protect) while still staying a small fraction of the dense n² matrix.
pub fn default_row_capacity(nodes: usize) -> usize {
    (nodes / 3).max(SPARSE_ROW_CACHE_CAPACITY)
}

/// Which distance-oracle implementation an architecture uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OracleKind {
    /// Eager all-pairs [`DistanceMatrix`] (O(n²) memory, O(1) queries).
    Dense,
    /// On-demand [`BfsOracle`] (O(cache × n) memory, amortized O(1) queries
    /// against cached rows, one BFS per cache miss).
    Sparse,
    /// [`LandmarkOracle`]: the sparse oracle plus an O(L × n) landmark
    /// index answering approximate distance *bounds* in O(L), used by the
    /// routing kernel to prune candidate scans while point queries stay
    /// exact.
    Landmark,
}

impl OracleKind {
    /// The automatic selection rule: dense up to
    /// [`DENSE_ORACLE_MAX_NODES`] nodes, landmark-backed above (routing-
    /// scale devices want both the bounded row cache and the bound-query
    /// tier; plain `Sparse` remains an explicit choice for tests and
    /// benchmarks).
    pub fn auto_for(nodes: usize) -> OracleKind {
        if nodes <= DENSE_ORACLE_MAX_NODES {
            OracleKind::Dense
        } else {
            OracleKind::Landmark
        }
    }

    /// Stable lower-case name (`"dense"` / `"sparse"` / `"landmark"`).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Dense => "dense",
            OracleKind::Sparse => "sparse",
            OracleKind::Landmark => "landmark",
        }
    }
}

/// Counters describing how an oracle has been used, for the bench layer's
/// per-route reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Point-distance queries answered. The dense matrix does not count its
    /// queries (an atomic increment would dominate its single array read),
    /// so this is 0 for [`OracleKind::Dense`].
    pub queries: u64,
    /// BFS rows computed. The dense matrix computes all `n` rows eagerly at
    /// construction; the sparse oracle counts every cache-miss BFS, so the
    /// value can exceed `n` when eviction recycles rows.
    pub rows_computed: u64,
    /// Queries answered from a cached row (always 0 for the dense matrix,
    /// which has no cache to hit).
    pub cache_hits: u64,
    /// The subset of `cache_hits` answered from a *pinned* row — the
    /// front-locality hits the kernel→oracle hint channel exists to create.
    pub pinned_hits: u64,
    /// Approximate bound queries answered by the landmark index (0 unless
    /// the oracle is landmark-backed).
    pub landmark_queries: u64,
    /// Candidates that survived landmark bound pruning and fell back to
    /// exact scoring (recorded by the routing kernel; 0 unless
    /// landmark-backed).
    pub exact_fallbacks: u64,
}

impl OracleStats {
    /// The difference `self - earlier`, for per-route deltas over a shared
    /// oracle.
    #[must_use]
    pub fn since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            queries: self.queries - earlier.queries,
            rows_computed: self.rows_computed - earlier.rows_computed,
            cache_hits: self.cache_hits - earlier.cache_hits,
            pinned_hits: self.pinned_hits - earlier.pinned_hits,
            landmark_queries: self.landmark_queries - earlier.landmark_queries,
            exact_fallbacks: self.exact_fallbacks - earlier.exact_fallbacks,
        }
    }
}

/// One cached distance row.
#[derive(Debug)]
struct Slot {
    node: u32,
    last_used: u64,
    row: Arc<[usize]>,
}

/// The stamped LRU row cache plus the BFS scratch buffers, all behind one
/// mutex so a row compute reuses the same allocations across route calls.
#[derive(Debug)]
struct RowCache {
    /// `slot_of[node]` = slot index holding that node's row, or `NO_SLOT`.
    slot_of: Vec<u32>,
    slots: Vec<Slot>,
    clock: u64,
    /// `pinned[node]` = the node is in the current pin set (whether or not
    /// its row is resident — pinning protects rows, it does not prefetch).
    pinned: Vec<bool>,
    /// The nodes currently pinned, so replacing the pin set is O(|pins|).
    pin_list: Vec<u32>,
    dist_scratch: Vec<usize>,
    queue_scratch: VecDeque<u32>,
}

const NO_SLOT: u32 = u32::MAX;

impl RowCache {
    fn new(nodes: usize) -> Self {
        RowCache {
            slot_of: vec![NO_SLOT; nodes],
            slots: Vec::new(),
            clock: 0,
            pinned: vec![false; nodes],
            pin_list: Vec::new(),
            dist_scratch: vec![0; nodes],
            queue_scratch: VecDeque::new(),
        }
    }

    /// Replaces the pin set. Previously pinned rows become ordinary LRU
    /// citizens; rows for `nodes` (once computed) survive eviction.
    fn set_pins(&mut self, nodes: &[NodeId]) {
        for &node in &self.pin_list {
            self.pinned[node as usize] = false;
        }
        self.pin_list.clear();
        for &node in nodes {
            if !self.pinned[node] {
                self.pinned[node] = true;
                self.pin_list.push(node as u32);
            }
        }
    }

    /// The cached row for `node` (with its pin flag), refreshing its LRU
    /// stamp.
    fn get(&mut self, node: NodeId) -> Option<(Arc<[usize]>, bool)> {
        let slot = self.slot_of[node];
        if slot == NO_SLOT {
            return None;
        }
        self.clock += 1;
        let slot = &mut self.slots[slot as usize];
        slot.last_used = self.clock;
        Some((Arc::clone(&slot.row), self.pinned[node]))
    }

    /// Computes the BFS row for `node` and caches it, evicting the least
    /// recently used *unpinned* row once `capacity` slots are full (the
    /// plain LRU victim if every resident row is pinned — the cache must
    /// stay bounded even under an oversized pin set).
    fn compute_and_insert(
        &mut self,
        csr: &CsrGraph,
        node: NodeId,
        capacity: usize,
    ) -> Arc<[usize]> {
        csr.bfs_into(node, &mut self.dist_scratch, &mut self.queue_scratch);
        let row: Arc<[usize]> = Arc::from(&self.dist_scratch[..]);
        self.clock += 1;
        let slot_index = if self.slots.len() < capacity {
            self.slots.push(Slot {
                node: node as u32,
                last_used: self.clock,
                row: Arc::clone(&row),
            });
            self.slots.len() - 1
        } else {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !self.pinned[s.node as usize])
                .min_by_key(|(_, s)| s.last_used)
                .or_else(|| {
                    self.slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.last_used)
                })
                .map(|(i, _)| i)
                .expect("capacity is at least one slot");
            self.slot_of[self.slots[victim].node as usize] = NO_SLOT;
            self.slots[victim] = Slot {
                node: node as u32,
                last_used: self.clock,
                row: Arc::clone(&row),
            };
            victim
        };
        self.slot_of[node] = slot_index as u32;
        row
    }
}

/// On-demand exact-distance oracle over a CSR adjacency.
///
/// Queries are answered from BFS rows computed lazily and recycled through a
/// bounded LRU cache; see the module docs for the design rationale. All
/// distances are exact hop counts, so any two oracles over the same graph —
/// and the dense matrix — agree on every query regardless of cache state,
/// query order, or thread interleaving. Only the [`OracleStats`] counters
/// are schedule-dependent.
///
/// The oracle is internally synchronized (`&self` queries from any number of
/// threads); cloning produces an oracle over the same graph with a cold
/// cache and zeroed stats.
#[derive(Debug)]
pub struct BfsOracle {
    csr: CsrGraph,
    capacity: usize,
    cache: Mutex<RowCache>,
    queries: AtomicU64,
    rows_computed: AtomicU64,
    cache_hits: AtomicU64,
    pinned_hits: AtomicU64,
    /// `(diameter, connected)` of the graph, computed once on first use by a
    /// full BFS sweep that bypasses the row cache.
    extent: OnceLock<(Option<usize>, bool)>,
}

impl BfsOracle {
    /// An oracle over `graph` with the default row-cache capacity
    /// ([`default_row_capacity`] of the node count).
    pub fn new(graph: &Graph) -> Self {
        Self::with_row_capacity(graph, default_row_capacity(graph.node_count()))
    }

    /// An oracle over `graph` caching at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_row_capacity(graph: &Graph, capacity: usize) -> Self {
        assert!(capacity > 0, "row cache needs at least one slot");
        let csr = CsrGraph::from_graph(graph);
        let nodes = csr.node_count();
        BfsOracle {
            csr,
            capacity,
            cache: Mutex::new(RowCache::new(nodes)),
            queries: AtomicU64::new(0),
            rows_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            pinned_hits: AtomicU64::new(0),
            extent: OnceLock::new(),
        }
    }

    /// Number of nodes the oracle answers for.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Maximum number of rows the cache holds.
    pub fn row_cache_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rows currently cached (bounded by the capacity — the
    /// structural guarantee behind the O(capacity × n) memory bound).
    pub fn cached_rows(&self) -> usize {
        self.lock_cache().slots.len()
    }

    /// Replaces the set of pinned rows with `nodes` — the kernel→oracle
    /// hint channel. Pinned rows are skipped by LRU eviction (unless every
    /// resident row is pinned), so the distance sources a routing front
    /// queries on every candidate scan stay resident across scattered
    /// intervening queries. Pinning does not prefetch: a pinned node's row
    /// is still computed lazily on first query.
    ///
    /// Pinning is purely a replacement-policy hint; it never changes any
    /// distance answer. Out-of-range nodes are debug-asserted.
    pub fn pin_rows(&self, nodes: &[NodeId]) {
        debug_assert!(
            nodes.iter().all(|&n| n < self.node_count()),
            "pinned node out of range"
        );
        self.lock_cache().set_pins(nodes);
    }

    /// Number of nodes currently in the pin set (resident or not).
    pub fn pinned_nodes(&self) -> usize {
        self.lock_cache().pin_list.len()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, RowCache> {
        // A panic while holding the lock can only leave a *valid* cache
        // behind (rows are inserted fully formed), so poisoning is not a
        // correctness signal worth propagating.
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Exact hop distance between `a` and `b` (`usize::MAX` when
    /// disconnected). See [`Self::try_distance`] for the checked variant.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range (checked in debug builds; in
    /// release builds the underlying indexing panics).
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let n = self.node_count();
        debug_assert!(a < n && b < n, "node out of range");
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.lock_cache();
        // Distances are symmetric: either endpoint's row answers the query,
        // which roughly halves the misses for scattered access patterns.
        if let Some((row, pinned)) = cache.get(a) {
            self.record_hit(pinned);
            return row[b];
        }
        if let Some((row, pinned)) = cache.get(b) {
            self.record_hit(pinned);
            return row[a];
        }
        self.rows_computed.fetch_add(1, Ordering::Relaxed);
        cache.compute_and_insert(&self.csr, a, self.capacity)[b]
    }

    fn record_hit(&self, pinned: bool) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        if pinned {
            self.pinned_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Checked [`Self::distance`]: `None` when either node is out of range.
    pub fn try_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let n = self.node_count();
        (a < n && b < n).then(|| self.distance(a, b))
    }

    /// The full distance row from `a`, shared with the cache (cheap to
    /// clone, stays valid across later queries and evictions).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn distance_row(&self, a: NodeId) -> Arc<[usize]> {
        assert!(a < self.node_count(), "node out of range");
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.lock_cache();
        if let Some((row, pinned)) = cache.get(a) {
            self.record_hit(pinned);
            return row;
        }
        self.rows_computed.fetch_add(1, Ordering::Relaxed);
        cache.compute_and_insert(&self.csr, a, self.capacity)
    }

    /// The distance row from `a` if it is already resident in the cache —
    /// a peek that never triggers a BFS. The routing kernel uses this to
    /// upgrade landmark bound queries to exact (free) answers whenever the
    /// front-pinned working set has kept the row warm, while cold rows keep
    /// costing only an O(landmarks) bound instead of a full BFS.
    ///
    /// A hit refreshes the row's LRU stamp and counts toward `cache_hits`
    /// (and `pinned_hits` when pinned); a miss records nothing.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn cached_row(&self, a: NodeId) -> Option<Arc<[usize]>> {
        assert!(a < self.node_count(), "node out of range");
        let (row, pinned) = self.lock_cache().get(a)?;
        self.record_hit(pinned);
        Some(row)
    }

    /// Usage counters since construction (or since the last clone).
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            queries: self.queries.load(Ordering::Relaxed),
            rows_computed: self.rows_computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            pinned_hits: self.pinned_hits.load(Ordering::Relaxed),
            ..OracleStats::default()
        }
    }

    fn extent(&self) -> (Option<usize>, bool) {
        *self.extent.get_or_init(|| {
            let n = self.node_count();
            if n == 0 {
                return (None, true);
            }
            // One BFS per node with a single reusable buffer: O(n·m) time,
            // O(n) memory, no cache pollution — the sweep runs at most once.
            let mut dist = vec![0usize; n];
            let mut queue = VecDeque::new();
            let mut max = 0;
            let mut connected = true;
            for start in 0..n {
                self.csr.bfs_into(start, &mut dist, &mut queue);
                for &d in &dist {
                    if d == usize::MAX {
                        connected = false;
                    } else {
                        max = max.max(d);
                    }
                }
            }
            let diameter = (connected && n >= 2).then_some(max);
            (diameter, connected)
        })
    }

    /// Largest finite distance, or `None` if the graph has fewer than two
    /// nodes or is disconnected (the [`DistanceMatrix::diameter`] contract).
    pub fn diameter(&self) -> Option<usize> {
        self.extent().0
    }

    /// `true` if every pair of nodes has a finite distance.
    pub fn is_connected(&self) -> bool {
        self.extent().1
    }
}

impl Clone for BfsOracle {
    /// Clones the graph structure with a cold cache and zeroed stats — a
    /// clone answers identically but re-derives its rows.
    fn clone(&self) -> Self {
        let nodes = self.csr.node_count();
        BfsOracle {
            csr: self.csr.clone(),
            capacity: self.capacity,
            cache: Mutex::new(RowCache::new(nodes)),
            queries: AtomicU64::new(0),
            rows_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            pinned_hits: AtomicU64::new(0),
            extent: self.extent.clone(),
        }
    }
}

impl PartialEq for BfsOracle {
    /// Structural equality: same graph and capacity. Cache contents and
    /// stats are usage artifacts, not identity.
    fn eq(&self, other: &Self) -> bool {
        self.csr == other.csr && self.capacity == other.capacity
    }
}

impl Eq for BfsOracle {}

/// A borrowed or shared distance row, depending on the oracle behind it.
///
/// Derefs to `[usize]`; `row[b]` is the distance from the row's source to
/// `b`.
#[derive(Debug, Clone)]
pub enum DistanceRow<'a> {
    /// A row borrowed straight out of the dense matrix.
    Borrowed(&'a [usize]),
    /// A row shared with the sparse oracle's cache.
    Shared(Arc<[usize]>),
}

impl Deref for DistanceRow<'_> {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        match self {
            DistanceRow::Borrowed(row) => row,
            DistanceRow::Shared(row) => row,
        }
    }
}

/// The distance oracle of an architecture: dense matrix, sparse on-demand
/// BFS, or landmark-backed sparse BFS — one query API (see the module
/// docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistanceOracle {
    /// Eager all-pairs matrix.
    Dense(DistanceMatrix),
    /// Lazy cached-row oracle.
    Sparse(BfsOracle),
    /// Lazy cached-row oracle plus a landmark bound index.
    Landmark(LandmarkOracle),
}

impl DistanceOracle {
    /// Builds the oracle [`OracleKind::auto_for`] selects for the graph's
    /// size.
    pub fn auto(graph: &Graph) -> Self {
        Self::build(graph, OracleKind::auto_for(graph.node_count()))
    }

    /// Builds the requested oracle kind, overriding the automatic rule.
    pub fn build(graph: &Graph, kind: OracleKind) -> Self {
        Self::build_with_capacity(graph, kind, None)
    }

    /// Builds the requested oracle kind with an explicit row-cache
    /// capacity (`None` = [`default_row_capacity`] of the node count). The
    /// dense matrix has no cache; its capacity is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `row_capacity` is `Some(0)` for a cached kind.
    pub fn build_with_capacity(
        graph: &Graph,
        kind: OracleKind,
        row_capacity: Option<usize>,
    ) -> Self {
        let capacity = row_capacity.unwrap_or_else(|| default_row_capacity(graph.node_count()));
        match kind {
            OracleKind::Dense => DistanceOracle::Dense(DistanceMatrix::new(graph)),
            OracleKind::Sparse => {
                DistanceOracle::Sparse(BfsOracle::with_row_capacity(graph, capacity))
            }
            OracleKind::Landmark => DistanceOracle::Landmark(LandmarkOracle::with_config(
                graph,
                capacity,
                crate::landmark::default_landmark_count(graph.node_count()),
            )),
        }
    }

    /// Which implementation this oracle is.
    pub fn kind(&self) -> OracleKind {
        match self {
            DistanceOracle::Dense(_) => OracleKind::Dense,
            DistanceOracle::Sparse(_) => OracleKind::Sparse,
            DistanceOracle::Landmark(_) => OracleKind::Landmark,
        }
    }

    /// The landmark tier, when this oracle has one. The routing kernel uses
    /// this to decide whether bound-based candidate pruning is available.
    pub fn landmark(&self) -> Option<&LandmarkOracle> {
        match self {
            DistanceOracle::Landmark(oracle) => Some(oracle),
            _ => None,
        }
    }

    /// The bounded row-cache tier behind this oracle, if it has one (the
    /// sparse oracle itself, or the landmark oracle's exact tier).
    pub fn row_tier(&self) -> Option<&BfsOracle> {
        match self {
            DistanceOracle::Dense(_) => None,
            DistanceOracle::Sparse(oracle) => Some(oracle),
            DistanceOracle::Landmark(oracle) => Some(oracle.exact()),
        }
    }

    /// Forwards a pin set to the row cache (see [`BfsOracle::pin_rows`]);
    /// a no-op for the dense matrix, which keeps every row resident.
    pub fn pin_rows(&self, nodes: &[NodeId]) {
        if let Some(tier) = self.row_tier() {
            tier.pin_rows(nodes);
        }
    }

    /// Number of nodes the oracle answers for.
    pub fn node_count(&self) -> usize {
        match self {
            DistanceOracle::Dense(matrix) => matrix.node_count(),
            DistanceOracle::Sparse(oracle) => oracle.node_count(),
            DistanceOracle::Landmark(oracle) => oracle.node_count(),
        }
    }

    /// Exact hop distance between `a` and `b` (`usize::MAX` when
    /// disconnected).
    ///
    /// # Panics
    ///
    /// Out-of-range nodes are debug-asserted; release behaviour is
    /// unspecified (panic or an unrelated value). Use [`Self::try_distance`]
    /// when the indices are not already validated.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        match self {
            DistanceOracle::Dense(matrix) => matrix.get(a, b),
            DistanceOracle::Sparse(oracle) => oracle.distance(a, b),
            DistanceOracle::Landmark(oracle) => oracle.distance(a, b),
        }
    }

    /// Checked [`Self::distance`]: `None` when either node is out of range.
    pub fn try_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        match self {
            DistanceOracle::Dense(matrix) => matrix.try_get(a, b),
            DistanceOracle::Sparse(oracle) => oracle.try_distance(a, b),
            DistanceOracle::Landmark(oracle) => oracle.try_distance(a, b),
        }
    }

    /// The distances from `a` to every node.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn distance_row(&self, a: NodeId) -> DistanceRow<'_> {
        match self {
            DistanceOracle::Dense(matrix) => DistanceRow::Borrowed(matrix.row(a)),
            DistanceOracle::Sparse(oracle) => DistanceRow::Shared(oracle.distance_row(a)),
            DistanceOracle::Landmark(oracle) => DistanceRow::Shared(oracle.distance_row(a)),
        }
    }

    /// Largest finite distance (see [`DistanceMatrix::diameter`]).
    pub fn diameter(&self) -> Option<usize> {
        match self {
            DistanceOracle::Dense(matrix) => matrix.diameter(),
            DistanceOracle::Sparse(oracle) => oracle.diameter(),
            DistanceOracle::Landmark(oracle) => oracle.diameter(),
        }
    }

    /// `true` if every pair of nodes has a finite distance.
    pub fn is_connected(&self) -> bool {
        match self {
            DistanceOracle::Dense(matrix) => matrix.is_connected(),
            DistanceOracle::Sparse(oracle) => oracle.is_connected(),
            DistanceOracle::Landmark(oracle) => oracle.is_connected(),
        }
    }

    /// Usage counters. For the dense matrix: `rows_computed = n` (eager),
    /// queries and hits uncounted (0) — see [`OracleStats`].
    pub fn stats(&self) -> OracleStats {
        match self {
            DistanceOracle::Dense(matrix) => OracleStats {
                rows_computed: matrix.node_count() as u64,
                ..OracleStats::default()
            },
            DistanceOracle::Sparse(oracle) => oracle.stats(),
            DistanceOracle::Landmark(oracle) => oracle.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn auto_rule_matches_threshold() {
        assert_eq!(OracleKind::auto_for(1), OracleKind::Dense);
        assert_eq!(
            OracleKind::auto_for(DENSE_ORACLE_MAX_NODES),
            OracleKind::Dense
        );
        assert_eq!(
            OracleKind::auto_for(DENSE_ORACLE_MAX_NODES + 1),
            OracleKind::Landmark
        );
        assert_eq!(OracleKind::Dense.name(), "dense");
        assert_eq!(OracleKind::Sparse.name(), "sparse");
        assert_eq!(OracleKind::Landmark.name(), "landmark");

        let small = generators::grid_graph(3, 3);
        assert_eq!(DistanceOracle::auto(&small).kind(), OracleKind::Dense);
        let large = generators::grid_graph(9, 10);
        assert_eq!(DistanceOracle::auto(&large).kind(), OracleKind::Landmark);
    }

    #[test]
    fn sparse_answers_match_dense_on_grid() {
        let g = generators::grid_graph(5, 6);
        let dense = DistanceMatrix::new(&g);
        let sparse = BfsOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(sparse.distance(a, b), dense.get(a, b), "({a}, {b})");
            }
        }
        assert_eq!(sparse.diameter(), dense.diameter());
        assert!(sparse.is_connected());
    }

    #[test]
    fn rows_match_and_survive_eviction() {
        let g = generators::grid_graph(4, 4);
        let dense = DistanceMatrix::new(&g);
        let sparse = BfsOracle::with_row_capacity(&g, 2);
        // Fetch every row with a 2-slot cache: each fetch evicts, but every
        // returned row stays valid (Arc) and exact.
        let rows: Vec<Arc<[usize]>> = g.nodes().map(|a| sparse.distance_row(a)).collect();
        for (a, row) in rows.iter().enumerate() {
            assert_eq!(&row[..], dense.row(a), "row {a}");
        }
        assert!(sparse.cached_rows() <= 2);
        assert_eq!(sparse.stats().rows_computed, g.node_count() as u64);
    }

    #[test]
    fn cache_hits_are_counted_and_symmetric() {
        let g = generators::path_graph(10);
        let oracle = BfsOracle::new(&g);
        assert_eq!(oracle.distance(0, 9), 9);
        let after_first = oracle.stats();
        assert_eq!(after_first.rows_computed, 1);
        assert_eq!(after_first.cache_hits, 0);
        // Same source row: hit.
        assert_eq!(oracle.distance(0, 4), 4);
        // Symmetric query answered by the cached source row: also a hit.
        assert_eq!(oracle.distance(5, 0), 5);
        let stats = oracle.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.rows_computed, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(
            stats.since(&after_first),
            OracleStats {
                queries: 2,
                rows_computed: 0,
                cache_hits: 2,
                ..OracleStats::default()
            }
        );
    }

    /// Satellite contract: a 1-slot cache and an over-provisioned cache are
    /// both still exact — capacity is a performance knob, never a
    /// correctness input.
    #[test]
    fn extreme_capacities_stay_exact() {
        let g = generators::grid_graph(4, 5);
        let dense = DistanceMatrix::new(&g);
        let n = g.node_count();
        for capacity in [1, n, n * 2] {
            let sparse = BfsOracle::with_row_capacity(&g, capacity);
            for a in g.nodes() {
                for b in g.nodes() {
                    assert_eq!(sparse.distance(a, b), dense.get(a, b), "cap {capacity}");
                }
            }
            assert!(sparse.cached_rows() <= capacity);
        }
        let generous = BfsOracle::with_row_capacity(&g, n);
        for a in g.nodes() {
            let _ = generous.distance_row(a);
        }
        // With capacity >= n nothing is ever evicted.
        assert_eq!(generous.cached_rows(), n);
        assert_eq!(generous.stats().rows_computed, n as u64);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = BfsOracle::with_row_capacity(&generators::path_graph(3), 0);
    }

    /// Satellite contract: pinned rows survive eviction; unpinned rows
    /// still evict in LRU stamp order.
    #[test]
    fn pinned_rows_survive_and_unpinned_evict_in_stamp_order() {
        let g = generators::path_graph(8);
        let oracle = BfsOracle::with_row_capacity(&g, 3);
        oracle.pin_rows(&[0]);
        let _ = oracle.distance_row(0); // cache: {0*} (pinned)
        let _ = oracle.distance_row(1); // cache: {0*, 1}
        let _ = oracle.distance_row(2); // cache: {0*, 1, 2}
        let _ = oracle.distance(1, 7); // refresh 1: stamp order now 2 < 1
        let before = oracle.stats().rows_computed;
        let _ = oracle.distance_row(3); // full: evicts 2 (stalest unpinned), NOT pinned 0
        let _ = oracle.distance(0, 5); // pinned row still resident
        let _ = oracle.distance(1, 5); // refreshed row still resident
        assert_eq!(oracle.stats().rows_computed, before + 1);
        let _ = oracle.distance_row(2); // 2 was the eviction victim: recompute
        assert_eq!(oracle.stats().rows_computed, before + 2);
    }

    #[test]
    fn all_pinned_cache_falls_back_to_plain_lru() {
        let g = generators::path_graph(6);
        let oracle = BfsOracle::with_row_capacity(&g, 2);
        oracle.pin_rows(&[0, 1]);
        let _ = oracle.distance_row(0);
        let _ = oracle.distance_row(1);
        // Every slot is pinned; inserting a third row must still succeed
        // (bounded memory beats the pin hint) by evicting the stalest row.
        let _ = oracle.distance_row(2);
        assert_eq!(oracle.cached_rows(), 2);
        let before = oracle.stats().rows_computed;
        let _ = oracle.distance(1, 3); // row 1 survived (row 0 was stalest)
        assert_eq!(oracle.stats().rows_computed, before);
    }

    #[test]
    fn pinned_hits_are_counted_and_pin_set_is_replaceable() {
        let g = generators::path_graph(8);
        let oracle = BfsOracle::new(&g);
        oracle.pin_rows(&[3, 3, 4]); // duplicates collapse
        assert_eq!(oracle.pinned_nodes(), 2);
        let _ = oracle.distance(3, 0); // miss (pinning does not prefetch)
        let _ = oracle.distance(3, 1); // pinned hit
        let _ = oracle.distance(5, 3); // symmetric pinned hit via row 3
        let stats = oracle.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.pinned_hits, 2);
        // Replacing the pin set unpins 3 and 4; hits on row 3 are now plain.
        oracle.pin_rows(&[5]);
        assert_eq!(oracle.pinned_nodes(), 1);
        let _ = oracle.distance(3, 2);
        let stats = oracle.stats();
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(stats.pinned_hits, 2);
        // Clearing pins entirely.
        oracle.pin_rows(&[]);
        assert_eq!(oracle.pinned_nodes(), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_row() {
        let g = generators::path_graph(6);
        let oracle = BfsOracle::with_row_capacity(&g, 2);
        let _ = oracle.distance(0, 1); // cache: {0}
        let _ = oracle.distance(1, 2); // cache: {0, 1}
        let _ = oracle.distance(0, 3); // refresh 0
        let _ = oracle.distance(2, 3); // evicts 1, cache: {0, 2}
        let before = oracle.stats().rows_computed;
        let _ = oracle.distance(0, 5); // still cached
        let _ = oracle.distance(2, 5); // still cached
        assert_eq!(oracle.stats().rows_computed, before);
        let _ = oracle.distance(1, 5); // 1 was evicted: recompute
        assert_eq!(oracle.stats().rows_computed, before + 1);
    }

    #[test]
    fn disconnected_graphs_report_max_and_no_diameter() {
        let mut g = generators::path_graph(3);
        let isolated = g.add_node();
        let oracle = BfsOracle::new(&g);
        assert_eq!(oracle.distance(0, isolated), usize::MAX);
        assert_eq!(oracle.diameter(), None);
        assert!(!oracle.is_connected());
        let auto = DistanceOracle::auto(&g);
        assert_eq!(auto.try_distance(0, isolated), Some(usize::MAX));
        assert!(!auto.is_connected());
    }

    #[test]
    fn try_distance_checks_bounds() {
        let g = generators::path_graph(4);
        for oracle in [
            DistanceOracle::build(&g, OracleKind::Dense),
            DistanceOracle::build(&g, OracleKind::Sparse),
            DistanceOracle::build(&g, OracleKind::Landmark),
        ] {
            assert_eq!(oracle.try_distance(0, 3), Some(3));
            assert_eq!(oracle.try_distance(0, 4), None);
            assert_eq!(oracle.try_distance(9, 0), None);
        }
    }

    #[test]
    fn clone_answers_identically_with_cold_state() {
        let g = generators::grid_graph(4, 4);
        let oracle = BfsOracle::new(&g);
        let _ = oracle.distance(0, 15);
        let clone = oracle.clone();
        assert_eq!(clone.stats(), OracleStats::default());
        assert_eq!(clone.cached_rows(), 0);
        assert_eq!(clone.distance(0, 15), oracle.distance(0, 15));
        assert_eq!(clone, oracle);
    }

    #[test]
    fn distance_row_agrees_between_oracles() {
        let g = generators::cycle_graph(9);
        let dense = DistanceOracle::build(&g, OracleKind::Dense);
        let sparse = DistanceOracle::build(&g, OracleKind::Sparse);
        let landmark = DistanceOracle::build(&g, OracleKind::Landmark);
        for a in g.nodes() {
            assert_eq!(&dense.distance_row(a)[..], &sparse.distance_row(a)[..]);
            assert_eq!(&dense.distance_row(a)[..], &landmark.distance_row(a)[..]);
        }
        assert_eq!(dense.diameter(), sparse.diameter());
        assert_eq!(dense.diameter(), landmark.diameter());
        assert_eq!(dense.node_count(), sparse.node_count());
        assert!(landmark.landmark().is_some());
        assert!(landmark.row_tier().is_some());
        assert!(dense.landmark().is_none());
        assert!(dense.row_tier().is_none());
        dense.pin_rows(&[0]); // no-op, must not panic
    }

    #[test]
    fn build_with_capacity_threads_through_both_cached_kinds() {
        let g = generators::grid_graph(3, 4);
        for kind in [OracleKind::Sparse, OracleKind::Landmark] {
            let oracle = DistanceOracle::build_with_capacity(&g, kind, Some(5));
            assert_eq!(
                oracle.row_tier().expect("cached kind").row_cache_capacity(),
                5
            );
            let default = DistanceOracle::build_with_capacity(&g, kind, None);
            assert_eq!(
                default
                    .row_tier()
                    .expect("cached kind")
                    .row_cache_capacity(),
                default_row_capacity(g.node_count())
            );
        }
    }

    #[test]
    fn default_capacity_floors_small_devices_and_scales_large_ones() {
        // Small and mid-size devices keep the 64-row floor; device-width
        // fronts on large lattices get n/3 slots so pinning has room to
        // protect the per-decision working set.
        assert_eq!(default_row_capacity(0), SPARSE_ROW_CACHE_CAPACITY);
        assert_eq!(default_row_capacity(127), SPARSE_ROW_CACHE_CAPACITY);
        assert_eq!(default_row_capacity(192), SPARSE_ROW_CACHE_CAPACITY);
        assert_eq!(default_row_capacity(433), 144);
        assert!(default_row_capacity(433) < 433);
    }

    #[test]
    fn tiny_graphs() {
        let empty = BfsOracle::new(&Graph::new());
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.diameter(), None);
        assert!(empty.is_connected());
        let single = BfsOracle::new(&Graph::with_nodes(1));
        assert_eq!(single.distance(0, 0), 0);
        assert_eq!(single.diameter(), None);
        assert!(single.is_connected());
    }

    #[test]
    fn concurrent_queries_agree_with_dense() {
        let g = generators::grid_graph(8, 9);
        let dense = DistanceMatrix::new(&g);
        let oracle = BfsOracle::with_row_capacity(&g, 4);
        let n = g.node_count();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let oracle = &oracle;
                let dense = &dense;
                scope.spawn(move || {
                    for a in (t..n).step_by(4) {
                        for b in 0..n {
                            assert_eq!(oracle.distance(a, b), dense.get(a, b));
                        }
                    }
                });
            }
        });
        assert!(oracle.cached_rows() <= 4);
    }

    /// A random connected graph: a random spanning tree (each node links to
    /// a random earlier node) plus arbitrary extra edges.
    fn random_connected_graph(n: usize, parents: &[usize], extras: &[(usize, usize)]) -> Graph {
        let mut g = Graph::with_nodes(n);
        for (node, &p) in parents.iter().enumerate().take(n - 1) {
            let node = node + 1;
            g.add_edge(node, p % node);
        }
        for &(a, b) in extras {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(a, b);
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The satellite contract: the sparse oracle and the dense matrix
        /// agree on every pair of every random connected graph, including
        /// under a pathologically small cache.
        #[test]
        fn dense_equals_sparse_on_random_connected_graphs(
            n in 2usize..48,
            parents in proptest::collection::vec(0usize..1000, 47..48),
            extras in proptest::collection::vec((0usize..1000, 0usize..1000), 0..30),
            capacity in 1usize..6,
        ) {
            let g = random_connected_graph(n, &parents, &extras);
            prop_assert!(g.is_connected());
            let dense = DistanceMatrix::new(&g);
            let sparse = BfsOracle::with_row_capacity(&g, capacity);
            for a in g.nodes() {
                for b in g.nodes() {
                    prop_assert_eq!(sparse.distance(a, b), dense.get(a, b));
                }
            }
            prop_assert_eq!(sparse.diameter(), dense.diameter());
            prop_assert!(sparse.cached_rows() <= capacity);
        }
    }
}
