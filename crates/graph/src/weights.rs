//! Per-coupler SWAP-cost weights.
//!
//! Every router scores a candidate SWAP through the routing kernel's
//! multiplier pipeline (`SwapScorer::prune_candidates` and the exact
//! selection scan in the layout crate). A [`CouplerWeights`] assigns each
//! coupler edge a positive cost factor that composes into that pipeline, so
//! heterogeneous devices — where some couplers are noisier and a SWAP on
//! them is effectively more expensive — are just another weighting rather
//! than a separate routing mode.
//!
//! Two constructions are provided:
//!
//! * [`CouplerWeights::uniform`] — every coupler weighs exactly `1.0`.
//!   Because IEEE-754 multiplication by `1.0` is an exact identity, a
//!   router threading uniform weights through its score pipeline emits a
//!   SWAP stream *bit-identical* to one that never heard of weights; the
//!   golden fixtures pin this.
//! * [`CouplerWeights::fidelity_derived`] — a deterministic synthetic noise
//!   model: each coupler draws a fidelity-style factor from a seeded hash
//!   of its endpoints, yielding weights in `[1.0, 2.0)`. A SWAP is three CX
//!   gates, so an edge with a lower two-qubit fidelity costs proportionally
//!   more; routers steered by these weights prefer detours over quiet
//!   couplers.
//!
//! Hop *distances* stay unweighted integers throughout — weights scale the
//! cost of performing a SWAP on an edge, not the length of paths through
//! it, which keeps every distance-oracle tier (and its exactness
//! guarantees) untouched.

use crate::graph::{Graph, NodeId};

/// Positive per-coupler SWAP-cost factors for one device graph. See the
/// module docs for the contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CouplerWeights {
    /// Weighted adjacency mirror of the coupling graph; empty means uniform
    /// (every edge weighs exactly `1.0` without storing anything).
    adjacency: Vec<Vec<(NodeId, f64)>>,
}

impl CouplerWeights {
    /// Uniform weights: every coupler weighs exactly `1.0`.
    pub fn uniform() -> Self {
        CouplerWeights::default()
    }

    /// Builds weights from an explicit per-edge function over `graph`'s
    /// couplers. `f` is called once per edge with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a non-finite or non-positive weight; the
    /// scorer's pruning-soundness argument requires positive multipliers.
    pub fn from_fn(graph: &Graph, mut f: impl FnMut(NodeId, NodeId) -> f64) -> Self {
        let mut adjacency = vec![Vec::new(); graph.node_count()];
        for e in graph.edges() {
            let w = f(e.u, e.v);
            assert!(
                w.is_finite() && w > 0.0,
                "coupler weight for ({}, {}) must be finite and positive, got {w}",
                e.u,
                e.v
            );
            adjacency[e.u].push((e.v, w));
            adjacency[e.v].push((e.u, w));
        }
        CouplerWeights { adjacency }
    }

    /// Deterministic synthetic fidelity model: each coupler's weight is
    /// `1.0 + frac` where `frac ∈ [0, 1)` is drawn from a seeded hash of
    /// the (unordered) endpoint pair. The same `(graph, seed)` always
    /// yields the same weights, on any platform.
    pub fn fidelity_derived(graph: &Graph, seed: u64) -> Self {
        Self::from_fn(graph, |u, v| {
            let h = splitmix64(seed ^ splitmix64((u as u64) << 32 | v as u64));
            // Map the top 53 bits to [0, 1) — exact in f64.
            1.0 + (h >> 11) as f64 / (1u64 << 53) as f64
        })
    }

    /// Returns `true` for the uniform weighting, where every
    /// [`Self::weight`] is exactly `1.0` and multiplying a score by it is a
    /// bitwise no-op.
    pub fn is_uniform(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// The weight of the coupler `(a, b)` (order-insensitive). Exactly
    /// `1.0` under uniform weights or for a pair that is not a coupler.
    pub fn weight(&self, a: NodeId, b: NodeId) -> f64 {
        match self.adjacency.get(a) {
            Some(row) => row
                .iter()
                .find(|&&(n, _)| n == b)
                .map(|&(_, w)| w)
                .unwrap_or(1.0),
            None => 1.0,
        }
    }
}

/// The splitmix64 mixing function — a tiny, well-distributed, platform-
/// independent hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_weighs_every_edge_exactly_one() {
        let w = CouplerWeights::uniform();
        assert!(w.is_uniform());
        assert_eq!(w.weight(0, 1), 1.0);
        assert_eq!(w.weight(100, 7), 1.0);
    }

    #[test]
    fn from_fn_is_symmetric_and_exact() {
        let g = generators::grid_graph(2, 3);
        let w = CouplerWeights::from_fn(&g, |u, v| 1.0 + (u + v) as f64);
        assert!(!w.is_uniform());
        for e in g.edges() {
            assert_eq!(w.weight(e.u, e.v), 1.0 + (e.u + e.v) as f64);
            assert_eq!(w.weight(e.v, e.u), w.weight(e.u, e.v));
        }
        // Non-edges fall back to the neutral weight.
        assert_eq!(w.weight(0, 5), 1.0);
    }

    #[test]
    fn fidelity_weights_are_deterministic_and_bounded() {
        let g = generators::grid_graph(3, 3);
        let a = CouplerWeights::fidelity_derived(&g, 42);
        let b = CouplerWeights::fidelity_derived(&g, 42);
        assert_eq!(a, b);
        let other = CouplerWeights::fidelity_derived(&g, 43);
        assert_ne!(a, other, "different seeds must perturb some edge");
        for e in g.edges() {
            let w = a.weight(e.u, e.v);
            assert!((1.0..2.0).contains(&w), "weight {w} out of range");
        }
        assert!(!a.is_uniform());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_non_positive_weights() {
        let g = generators::path_graph(3);
        let _ = CouplerWeights::from_fn(&g, |_, _| 0.0);
    }
}
