//! All-pairs shortest-path distances.
//!
//! Every SWAP-routing heuristic in the suite scores candidate SWAPs by how
//! much they reduce the coupling-graph distance between the qubits of pending
//! gates, so the distance matrix is precomputed once per architecture and
//! shared.

use crate::graph::{Graph, NodeId};
use crate::traversal::bfs_distances;
use serde::{Deserialize, Serialize};

/// Dense all-pairs shortest-path (hop) distance matrix.
///
/// Distances between nodes in different connected components are
/// `usize::MAX`.
///
/// # Example
///
/// ```
/// use qubikos_graph::{generators, DistanceMatrix};
///
/// let grid = generators::grid_graph(3, 3);
/// let dist = DistanceMatrix::new(&grid);
/// assert_eq!(dist.get(0, 8), 4);
/// assert_eq!(dist.get(4, 4), 0);
/// assert_eq!(dist.diameter(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<usize>,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths with one BFS per node.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut data = Vec::with_capacity(n * n);
        for u in graph.nodes() {
            data.extend(bfs_distances(graph, u));
        }
        DistanceMatrix { n, data }
    }

    /// Number of nodes the matrix was computed for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Distance between `a` and `b` (`usize::MAX` if disconnected).
    ///
    /// This is the unchecked hot-path accessor: node validity is only
    /// debug-asserted. In release builds an out-of-range node either panics
    /// on the flat-index bound or — because `a * n + b` can land inside the
    /// backing array for a different pair — returns the distance of an
    /// unrelated pair. Callers that have not already validated their indices
    /// must use [`Self::try_get`].
    pub fn get(&self, a: NodeId, b: NodeId) -> usize {
        debug_assert!(a < self.n && b < self.n, "node out of range");
        self.data[a * self.n + b]
    }

    /// Checked [`Self::get`]: `None` when either node is out of range.
    pub fn try_get(&self, a: NodeId, b: NodeId) -> Option<usize> {
        (a < self.n && b < self.n).then(|| self.data[a * self.n + b])
    }

    /// Row of distances from `a` to every node.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn row(&self, a: NodeId) -> &[usize] {
        assert!(a < self.n, "node out of range");
        &self.data[a * self.n..(a + 1) * self.n]
    }

    /// Largest finite distance, or `None` if the graph has fewer than two
    /// nodes or is disconnected.
    pub fn diameter(&self) -> Option<usize> {
        if self.n < 2 {
            return None;
        }
        let mut max = 0;
        for &d in &self.data {
            if d == usize::MAX {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }

    /// Returns `true` if every pair of nodes has a finite distance.
    pub fn is_connected(&self) -> bool {
        self.data.iter().all(|&d| d != usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_path() {
        let g = generators::path_graph(4);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.get(0, 3), 3);
        assert_eq!(d.get(3, 0), 3);
        assert_eq!(d.get(1, 1), 0);
        assert_eq!(d.diameter(), Some(3));
        assert!(d.is_connected());
    }

    #[test]
    fn symmetric_on_random_like_graph() {
        let g = generators::grid_graph(4, 5);
        let d = DistanceMatrix::new(&g);
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                assert_eq!(d.get(a, b), d.get(b, a));
            }
        }
    }

    #[test]
    fn disconnected_graph_reports_max() {
        let mut g = generators::path_graph(2);
        g.add_node();
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.get(0, 2), usize::MAX);
        assert_eq!(d.diameter(), None);
        assert!(!d.is_connected());
    }

    #[test]
    fn row_matches_get() {
        let g = generators::cycle_graph(6);
        let d = DistanceMatrix::new(&g);
        let row = d.row(2);
        for b in 0..6 {
            assert_eq!(row[b], d.get(2, b));
        }
    }

    #[test]
    fn tiny_graphs() {
        let d = DistanceMatrix::new(&Graph::with_nodes(1));
        assert_eq!(d.diameter(), None);
        assert!(d.is_connected());
        let d = DistanceMatrix::new(&Graph::new());
        assert_eq!(d.node_count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics_in_debug() {
        let g = generators::path_graph(2);
        let d = DistanceMatrix::new(&g);
        let _ = d.get(0, 7);
    }

    #[test]
    fn try_get_checks_bounds() {
        let g = generators::path_graph(3);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.try_get(0, 2), Some(2));
        assert_eq!(d.try_get(0, 3), None);
        assert_eq!(d.try_get(5, 0), None);
    }
}
