//! Landmark (Thorup–Zwick-style) approximate distance bounds.
//!
//! The routers' candidate scans ask for thousands of point distances per
//! routing decision, almost all of which only need to be *compared*, not
//! known exactly: a candidate SWAP whose best-case cost is worse than some
//! other candidate's worst-case cost can be discarded without ever fetching
//! an exact BFS row. A [`LandmarkIndex`] makes that comparison O(L): pick
//! `L` landmarks (degree-seeded, then farthest-point coverage), run one BFS
//! per landmark at construction, and answer every later query `(a, b)` with
//! the triangle-inequality bracket
//!
//! ```text
//!   max_l |d(l,a) - d(l,b)|  <=  d(a,b)  <=  min_l d(l,a) + d(l,b)
//! ```
//!
//! Both bounds are exact integers derived from exact BFS rows, so the
//! bracket always contains the true distance — the property the routing
//! kernel's prune-then-tie-break scan relies on for bit-identical results.
//!
//! [`LandmarkOracle`] packages the index with an exact [`BfsOracle`]: point
//! queries and rows stay exact (routing decisions never change), while the
//! bounds answer the candidate-scan workload without touching the bounded
//! row cache. This is the third [`crate::DistanceOracle`] tier, selected
//! automatically for routing-scale devices.

use crate::csr::CsrGraph;
use crate::graph::{Graph, NodeId};
use crate::oracle::{BfsOracle, OracleStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distance sentinel for unreachable nodes inside the packed `u32` rows.
const UNREACHABLE: u32 = u32::MAX;

/// Default landmark count for an `n`-node graph: `ceil(sqrt(n))`, clamped
/// to `[4, 32]` (and to `n`). Eagle-127 gets 12 landmarks, Osprey-433 gets
/// 21 — a few kilobytes of rows against microsecond-scale bound queries.
pub fn default_landmark_count(n: usize) -> usize {
    let sqrt = (n as f64).sqrt().ceil() as usize;
    sqrt.clamp(4, 32).min(n.max(1))
}

/// The landmark distance index: `L` exact BFS rows plus the
/// triangle-inequality bound machinery. See the module docs.
#[derive(Debug)]
pub struct LandmarkIndex {
    /// Chosen landmark nodes, in selection order.
    landmarks: Vec<u32>,
    /// `rows[l * n + v]` = exact hop distance from landmark `l` to `v`.
    rows: Vec<u32>,
    n: usize,
    /// Bound queries answered (the `landmark_queries` stat).
    queries: AtomicU64,
}

impl LandmarkIndex {
    /// Builds an index over `graph` with [`default_landmark_count`]
    /// landmarks.
    pub fn new(graph: &Graph) -> Self {
        Self::with_landmarks(graph, default_landmark_count(graph.node_count()))
    }

    /// Builds an index with (up to) `count` landmarks.
    ///
    /// Selection is deterministic: the first landmark is the
    /// highest-degree node (lowest id on ties); each subsequent landmark is
    /// the node farthest from every chosen landmark (ties: higher degree,
    /// then lower id), so landmarks spread out to cover the graph.
    /// Selection stops early once every node is itself a landmark.
    pub fn with_landmarks(graph: &Graph, count: usize) -> Self {
        let csr = CsrGraph::from_graph(graph);
        let n = csr.node_count();
        if n == 0 {
            return LandmarkIndex {
                landmarks: Vec::new(),
                rows: Vec::new(),
                n: 0,
                queries: AtomicU64::new(0),
            };
        }
        let count = count.clamp(1, n);
        let mut landmarks: Vec<u32> = Vec::with_capacity(count);
        let mut rows: Vec<u32> = Vec::with_capacity(count * n);
        // nearest[v] = hop distance from v to its closest chosen landmark.
        let mut nearest = vec![usize::MAX; n];
        let mut dist = vec![0usize; n];
        let mut queue = VecDeque::new();
        let mut is_landmark = vec![false; n];

        let first = (0..n)
            .max_by_key(|&v| (csr.degree(v), std::cmp::Reverse(v)))
            .expect("n > 0");
        let mut next = first;
        for _ in 0..count {
            landmarks.push(next as u32);
            is_landmark[next] = true;
            csr.bfs_into(next, &mut dist, &mut queue);
            for &d in &dist[..n] {
                rows.push(if d == usize::MAX {
                    UNREACHABLE
                } else {
                    u32::try_from(d).expect("hop distance fits u32")
                });
            }
            for (v, &d) in dist[..n].iter().enumerate() {
                if d < nearest[v] {
                    nearest[v] = d;
                }
            }
            // Farthest-point step; uncovered components (distance MAX) are
            // picked first, giving every component coverage.
            let Some(candidate) = (0..n)
                .filter(|&v| !is_landmark[v])
                .max_by_key(|&v| (nearest[v], csr.degree(v), std::cmp::Reverse(v)))
            else {
                break; // every node is a landmark
            };
            next = candidate;
        }
        LandmarkIndex {
            landmarks,
            rows,
            n,
            queries: AtomicU64::new(0),
        }
    }

    /// Number of landmarks in the index.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// The landmark nodes, in selection order.
    pub fn landmarks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.landmarks.iter().map(|&l| l as NodeId)
    }

    /// Number of nodes the index answers for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Bound queries answered since construction (or the last clone).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The triangle-inequality bracket `(lower, upper)` with
    /// `lower <= d(a, b) <= upper`, in O(landmarks).
    ///
    /// `upper` is `usize::MAX` when no landmark connects `a` and `b`;
    /// `lower` is `usize::MAX` when some landmark proves the pair
    /// disconnected. On connected graphs both are always finite, and the
    /// bracket collapses to the exact distance whenever `a` or `b` is a
    /// landmark (or the pair is degenerate).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range (checked in debug builds; in
    /// release builds the underlying indexing panics).
    pub fn bounds(&self, a: NodeId, b: NodeId) -> (usize, usize) {
        debug_assert!(a < self.n && b < self.n, "node out of range");
        self.queries.fetch_add(1, Ordering::Relaxed);
        if a == b {
            return (0, 0);
        }
        let mut lower = 1usize; // distinct nodes are at least one hop apart
        let mut upper = usize::MAX;
        for l in 0..self.landmarks.len() {
            let da = self.rows[l * self.n + a];
            let db = self.rows[l * self.n + b];
            match (da == UNREACHABLE, db == UNREACHABLE) {
                (false, false) => {
                    let (da, db) = (da as usize, db as usize);
                    upper = upper.min(da + db);
                    lower = lower.max(da.abs_diff(db));
                    if lower == upper {
                        break; // bracket is tight: the bound is exact
                    }
                }
                (true, true) => {} // landmark sees neither endpoint
                // Exactly one endpoint shares a component with the
                // landmark, so the two endpoints are disconnected.
                _ => return (usize::MAX, usize::MAX),
            }
        }
        (lower, upper)
    }

    /// Clones the rows with a zeroed query counter.
    fn clone_cold(&self) -> Self {
        LandmarkIndex {
            landmarks: self.landmarks.clone(),
            rows: self.rows.clone(),
            n: self.n,
            queries: AtomicU64::new(0),
        }
    }
}

/// The two-tier routing-scale oracle: a [`LandmarkIndex`] for approximate
/// bound queries over an exact [`BfsOracle`] for everything else.
///
/// Point distances, rows, diameter and connectivity all delegate to the
/// exact tier, so swapping this oracle in for the dense matrix or the plain
/// sparse oracle can never change a routing result — the landmark tier only
/// adds [`Self::bounds`] (used by the SWAP scorer to prune candidates) and
/// the counters describing how often the exact tier was consulted.
#[derive(Debug)]
pub struct LandmarkOracle {
    exact: BfsOracle,
    index: LandmarkIndex,
    /// Candidates that survived bound pruning and were scored exactly
    /// (recorded by the routing kernel via
    /// [`Self::record_exact_fallbacks`]).
    exact_fallbacks: AtomicU64,
}

impl LandmarkOracle {
    /// An oracle over `graph` with the default row-cache capacity and
    /// landmark count.
    pub fn new(graph: &Graph) -> Self {
        Self::with_config(
            graph,
            crate::oracle::default_row_capacity(graph.node_count()),
            default_landmark_count(graph.node_count()),
        )
    }

    /// An oracle caching at most `row_capacity` exact rows, with
    /// `landmark_count` landmarks.
    ///
    /// # Panics
    ///
    /// Panics if `row_capacity` is zero.
    pub fn with_config(graph: &Graph, row_capacity: usize, landmark_count: usize) -> Self {
        LandmarkOracle {
            exact: BfsOracle::with_row_capacity(graph, row_capacity),
            index: LandmarkIndex::with_landmarks(graph, landmark_count),
            exact_fallbacks: AtomicU64::new(0),
        }
    }

    /// The landmark bound index.
    pub fn index(&self) -> &LandmarkIndex {
        &self.index
    }

    /// The exact tier.
    pub fn exact(&self) -> &BfsOracle {
        &self.exact
    }

    /// Triangle-inequality distance bracket; see [`LandmarkIndex::bounds`].
    pub fn bounds(&self, a: NodeId, b: NodeId) -> (usize, usize) {
        self.index.bounds(a, b)
    }

    /// Exact hop distance (delegates to the exact tier; see
    /// [`BfsOracle::distance`]).
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.exact.distance(a, b)
    }

    /// Checked [`Self::distance`].
    pub fn try_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.exact.try_distance(a, b)
    }

    /// Exact distance row, shared with the exact tier's cache.
    pub fn distance_row(&self, a: NodeId) -> Arc<[usize]> {
        self.exact.distance_row(a)
    }

    /// Number of nodes the oracle answers for.
    pub fn node_count(&self) -> usize {
        self.exact.node_count()
    }

    /// Largest finite distance (the [`BfsOracle::diameter`] contract).
    pub fn diameter(&self) -> Option<usize> {
        self.exact.diameter()
    }

    /// `true` if every pair of nodes has a finite distance.
    pub fn is_connected(&self) -> bool {
        self.exact.is_connected()
    }

    /// Records `count` candidates that bound pruning could not discard and
    /// that were therefore scored through the exact tier.
    pub fn record_exact_fallbacks(&self, count: u64) {
        self.exact_fallbacks.fetch_add(count, Ordering::Relaxed);
    }

    /// Combined usage counters of both tiers.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            landmark_queries: self.index.queries(),
            exact_fallbacks: self.exact_fallbacks.load(Ordering::Relaxed),
            ..self.exact.stats()
        }
    }

    /// The measured stretch of the landmark upper bound against exact
    /// distances, sampled over (at most) `max_sources` evenly spaced BFS
    /// sources paired with every target: `max upper / d(a, b)` over sampled
    /// pairs with `d > 0`. Deterministic; `1.0` means every sampled upper
    /// bound was exact. Exact rows are fetched through the exact tier, so
    /// the sweep shows up in [`Self::stats`] like any other row traffic.
    pub fn measured_stretch(&self, max_sources: usize) -> f64 {
        let n = self.node_count();
        if n < 2 || max_sources == 0 {
            return 1.0;
        }
        let stride = n.div_ceil(max_sources.min(n));
        let mut worst = 1.0f64;
        for a in (0..n).step_by(stride) {
            let row = self.exact.distance_row(a);
            for b in 0..n {
                let exact = row[b];
                if exact == 0 || exact == usize::MAX {
                    continue;
                }
                let (_, upper) = self.index.bounds(a, b);
                worst = worst.max(upper as f64 / exact as f64);
            }
        }
        worst
    }
}

impl Clone for LandmarkOracle {
    /// Clones the graph structure and landmark rows with a cold row cache
    /// and zeroed counters.
    fn clone(&self) -> Self {
        LandmarkOracle {
            exact: self.exact.clone(),
            index: self.index.clone_cold(),
            exact_fallbacks: AtomicU64::new(0),
        }
    }
}

impl PartialEq for LandmarkOracle {
    /// Structural equality: same exact tier and same landmark set. Counters
    /// and cache state are usage artifacts.
    fn eq(&self, other: &Self) -> bool {
        self.exact == other.exact && self.index.landmarks == other.index.landmarks
    }
}

impl Eq for LandmarkOracle {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn default_count_scales_with_sqrt_n() {
        assert_eq!(default_landmark_count(1), 1);
        assert_eq!(default_landmark_count(4), 4);
        assert_eq!(default_landmark_count(127), 12);
        assert_eq!(default_landmark_count(433), 21);
        assert_eq!(default_landmark_count(10_000), 32);
    }

    #[test]
    fn selection_is_deterministic_and_degree_seeded() {
        let g = generators::grid_graph(4, 5);
        let a = LandmarkIndex::with_landmarks(&g, 5);
        let b = LandmarkIndex::with_landmarks(&g, 5);
        let first: Vec<NodeId> = a.landmarks().collect();
        assert_eq!(first, b.landmarks().collect::<Vec<_>>());
        assert_eq!(a.landmark_count(), 5);
        // The seed landmark is a maximum-degree (interior) node.
        assert_eq!(g.degree(first[0]), 4);
        // Landmarks are distinct.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn bounds_bracket_exact_distances_on_grid() {
        let g = generators::grid_graph(5, 6);
        let dense = DistanceMatrix::new(&g);
        let index = LandmarkIndex::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                let (lo, hi) = index.bounds(a, b);
                let exact = dense.get(a, b);
                assert!(
                    lo <= exact && exact <= hi,
                    "({a},{b}): {lo}..{hi} vs {exact}"
                );
            }
        }
        assert!(index.queries() > 0);
    }

    #[test]
    fn bounds_are_tight_for_landmarks_and_identity() {
        let g = generators::cycle_graph(12);
        let index = LandmarkIndex::with_landmarks(&g, 3);
        let dense = DistanceMatrix::new(&g);
        assert_eq!(index.bounds(7, 7), (0, 0));
        for l in index.landmarks().collect::<Vec<_>>() {
            for b in g.nodes() {
                let exact = dense.get(l, b);
                assert_eq!(index.bounds(l, b), (exact, exact));
                assert_eq!(index.bounds(b, l), (exact, exact));
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_proved_disconnected() {
        let mut g = generators::path_graph(4);
        let isolated = g.add_node();
        let index = LandmarkIndex::with_landmarks(&g, 3);
        // Some landmark lands in the 4-path component, so the isolated node
        // is proved unreachable from it.
        assert_eq!(index.bounds(0, isolated), (usize::MAX, usize::MAX));
    }

    #[test]
    fn oracle_point_queries_stay_exact_and_counters_split_tiers() {
        let g = generators::grid_graph(6, 6);
        let dense = DistanceMatrix::new(&g);
        let oracle = LandmarkOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(oracle.distance(a, b), dense.get(a, b));
            }
        }
        assert_eq!(oracle.diameter(), dense.diameter());
        assert!(oracle.is_connected());
        let before = oracle.stats();
        assert_eq!(before.landmark_queries, 0);
        let _ = oracle.bounds(0, 35);
        oracle.record_exact_fallbacks(3);
        let stats = oracle.stats();
        assert_eq!(stats.landmark_queries, 1);
        assert_eq!(stats.exact_fallbacks, 3);
        assert_eq!(stats.since(&before).landmark_queries, 1);
    }

    #[test]
    fn measured_stretch_is_at_least_one_and_one_when_all_nodes_are_landmarks() {
        let g = generators::grid_graph(3, 3);
        let full = LandmarkOracle::with_config(&g, 4, 9);
        assert_eq!(full.measured_stretch(9), 1.0);
        let sparse = LandmarkOracle::with_config(&g, 4, 2);
        assert!(sparse.measured_stretch(4) >= 1.0);
    }

    #[test]
    fn clone_is_cold_and_equal() {
        let g = generators::grid_graph(4, 4);
        let oracle = LandmarkOracle::new(&g);
        let _ = oracle.distance(0, 15);
        let _ = oracle.bounds(0, 15);
        oracle.record_exact_fallbacks(1);
        let clone = oracle.clone();
        assert_eq!(clone.stats(), OracleStats::default());
        assert_eq!(clone, oracle);
        assert_eq!(clone.distance(0, 15), oracle.distance(0, 15));
        assert_eq!(clone.bounds(3, 9), oracle.bounds(3, 9));
    }

    #[test]
    fn tiny_graphs() {
        let empty = LandmarkIndex::new(&Graph::new());
        assert_eq!(empty.landmark_count(), 0);
        assert_eq!(empty.node_count(), 0);
        let single = LandmarkOracle::new(&Graph::with_nodes(1));
        assert_eq!(single.bounds(0, 0), (0, 0));
        assert_eq!(single.distance(0, 0), 0);
        assert_eq!(single.index().landmark_count(), 1);
    }

    /// A random connected graph: a random spanning tree plus extra edges
    /// (mirrors the construction in `oracle.rs`).
    fn random_connected_graph(n: usize, parents: &[usize], extras: &[(usize, usize)]) -> Graph {
        let mut g = Graph::with_nodes(n);
        for (node, &p) in parents.iter().enumerate().take(n - 1) {
            let node = node + 1;
            g.add_edge(node, p % node);
        }
        for &(a, b) in extras {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(a, b);
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The satellite contract: on every random connected graph, every
        /// pair's landmark bracket contains the exact BFS distance, for any
        /// landmark count.
        #[test]
        fn landmark_bounds_bracket_exact_bfs_distance(
            n in 2usize..40,
            parents in proptest::collection::vec(0usize..1000, 39..40),
            extras in proptest::collection::vec((0usize..1000, 0usize..1000), 0..25),
            landmarks in 1usize..8,
        ) {
            let g = random_connected_graph(n, &parents, &extras);
            prop_assert!(g.is_connected());
            let dense = DistanceMatrix::new(&g);
            let index = LandmarkIndex::with_landmarks(&g, landmarks);
            for a in g.nodes() {
                for b in g.nodes() {
                    let (lo, hi) = index.bounds(a, b);
                    let exact = dense.get(a, b);
                    prop_assert!(lo <= exact, "({a},{b}): lower {lo} > exact {exact}");
                    prop_assert!(exact <= hi, "({a},{b}): upper {hi} < exact {exact}");
                }
            }
        }
    }
}
