//! Breadth-first traversal utilities.
//!
//! The QUBIKOS backbone construction orders the gates of a section by the
//! order in which a BFS visits the edges of the section's interaction graph
//! (Algorithm 2 of the paper), so besides the usual node orders and distance
//! maps this module exposes [`bfs_edge_order`].

use crate::graph::{Edge, Graph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable from `start`, in BFS visitation order.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_order(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    bfs_order_multi(graph, &[start])
}

/// Nodes reachable from any of `starts`, in BFS visitation order.
///
/// All start nodes are seeded at distance zero, matching the paper's BFS
/// "starting from q1 and q7" construction.
///
/// # Panics
///
/// Panics if any start node is out of range.
pub fn bfs_order_multi(graph: &Graph, starts: &[NodeId]) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    for &s in starts {
        assert!(s < graph.node_count(), "start node {s} out of range");
        if !visited[s] {
            visited[s] = true;
            queue.push_back(s);
            order.push(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                order.push(v);
                queue.push_back(v);
            }
        }
    }
    order
}

/// Edges visited by a BFS from `starts`, in first-visited order.
///
/// An edge is reported the first time either endpoint is dequeued while the
/// other endpoint is adjacent to it, i.e. in the order a textbook BFS scans
/// edges (tree edges and cross edges alike). Each edge is reported exactly
/// once. Edges in `skip` are never reported and never traversed.
///
/// This is the gate ordering primitive of QUBIKOS backbone sections: gates
/// earlier in the BFS edge order can be made to precede gates later in it by
/// emitting them in this order.
///
/// # Panics
///
/// Panics if any start node is out of range.
pub fn bfs_edge_order(graph: &Graph, starts: &[NodeId], skip: &[Edge]) -> Vec<Edge> {
    let mut visited = vec![false; graph.node_count()];
    let mut reported = std::collections::BTreeSet::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let skipped: std::collections::BTreeSet<Edge> = skip.iter().copied().collect();
    for &s in starts {
        assert!(s < graph.node_count(), "start node {s} out of range");
        if !visited[s] {
            visited[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            let e = Edge::new(u, v);
            if skipped.contains(&e) {
                continue;
            }
            if reported.insert(e) {
                order.push(e);
            }
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Shortest-path (hop) distance from `start` to every node.
///
/// Unreachable nodes get `usize::MAX`.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_distances(graph: &Graph, start: NodeId) -> Vec<usize> {
    assert!(
        start < graph.node_count(),
        "start node {start} out of range"
    );
    let mut dist = vec![usize::MAX; graph.node_count()];
    dist[start] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components, each as a sorted list of node ids.
///
/// Components are ordered by their smallest node id.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut visited = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for start in graph.nodes() {
        if visited[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &v in graph.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_order_on_path() {
        let g = generators::path_graph(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn bfs_order_multi_seeds_all_starts() {
        let g = generators::path_graph(6);
        let order = bfs_order_multi(&g, &[0, 5]);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 5);
    }

    #[test]
    fn bfs_order_ignores_unreachable() {
        let mut g = generators::path_graph(3);
        g.add_node();
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn bfs_edge_order_covers_component_edges_once() {
        let g = generators::cycle_graph(5);
        let order = bfs_edge_order(&g, &[0], &[]);
        assert_eq!(order.len(), g.edge_count());
        let unique: std::collections::BTreeSet<_> = order.iter().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn bfs_edge_order_respects_skip() {
        let g = generators::cycle_graph(4);
        let skip = [Edge::new(0, 3)];
        let order = bfs_edge_order(&g, &[0], &skip);
        assert_eq!(order.len(), 3);
        assert!(!order.contains(&Edge::new(0, 3)));
    }

    #[test]
    fn bfs_edge_order_starts_at_seed_edges() {
        let g = generators::path_graph(4);
        let order = bfs_edge_order(&g, &[1], &[]);
        // Both edges incident to node 1 come before the far edge.
        assert_eq!(order[2], Edge::new(2, 3));
    }

    #[test]
    fn bfs_distances_on_grid() {
        let g = generators::grid_graph(3, 3);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[8], 4);
        assert_eq!(d[4], 2);
    }

    #[test]
    fn bfs_distances_unreachable_is_max() {
        let mut g = generators::path_graph(2);
        let isolated = g.add_node();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[isolated], usize::MAX);
    }

    #[test]
    fn components_of_disjoint_graph() {
        let mut g = generators::path_graph(3);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_order_panics_out_of_range() {
        let g = generators::path_graph(2);
        let _ = bfs_order(&g, 9);
    }
}
