//! Compressed sparse row (CSR) adjacency.
//!
//! [`Graph`] stores one `Vec<NodeId>` per node, which is convenient to build
//! incrementally but costs a pointer chase per neighbour list and a separate
//! heap allocation per node. The routing-scale devices (heavy-hex lattices
//! with hundreds of qubits) instead want the whole adjacency in two flat
//! arrays so a BFS touches memory sequentially: [`CsrGraph`] is that frozen
//! form, built once from a [`Graph`] and then shared read-only by the
//! on-demand distance oracle.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Frozen CSR adjacency of an undirected graph.
///
/// Node `n`'s neighbours are `targets[offsets[n]..offsets[n + 1]]`, in the
/// same ascending order [`Graph::neighbors`] reports them, so any traversal
/// over the CSR form visits nodes in exactly the order it would over the
/// original graph — the property that keeps sparse and dense distance
/// machinery bit-identical.
///
/// Indices are `u32`: a coupling graph with more than four billion qubits is
/// not a device, and halving the index width keeps a 433-qubit heavy-hex
/// adjacency inside a few cache lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Freezes `graph` into CSR form.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` nodes or directed edges.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        assert!(u32::try_from(n).is_ok(), "graph too large for u32 CSR ids");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for u in graph.nodes() {
            for &v in graph.neighbors(u) {
                targets.push(v as u32);
            }
            offsets.push(u32::try_from(targets.len()).expect("edge count fits u32"));
        }
        CsrGraph { offsets, targets }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `n`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> &[u32] {
        &self.targets[self.offsets[n] as usize..self.offsets[n + 1] as usize]
    }

    /// Degree of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn degree(&self, n: NodeId) -> usize {
        (self.offsets[n + 1] - self.offsets[n]) as usize
    }

    /// Fills `dist` with hop distances from `start` (`usize::MAX` when
    /// unreachable), reusing `queue` as scratch. Produces exactly the
    /// distances [`crate::traversal::bfs_distances`] computes on the
    /// adjacency-list form.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range or `dist` is shorter than the node
    /// count.
    pub fn bfs_into(&self, start: NodeId, dist: &mut [usize], queue: &mut VecDeque<u32>) {
        let n = self.node_count();
        assert!(start < n, "start node {start} out of range");
        dist[..n].fill(usize::MAX);
        dist[start] = 0;
        queue.clear();
        queue.push_back(start as u32);
        while let Some(u) = queue.pop_front() {
            let next = dist[u as usize] + 1;
            for &v in self.neighbors(u as usize) {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::bfs_distances;

    #[test]
    fn csr_mirrors_adjacency_lists() {
        let g = generators::grid_graph(3, 4);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for u in g.nodes() {
            let expected: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
            assert_eq!(csr.neighbors(u), expected.as_slice());
            assert_eq!(csr.degree(u), g.degree(u));
        }
    }

    #[test]
    fn bfs_into_matches_adjacency_bfs() {
        let g = generators::grid_graph(4, 5);
        let csr = CsrGraph::from_graph(&g);
        let mut dist = vec![0usize; g.node_count()];
        let mut queue = VecDeque::new();
        for start in g.nodes() {
            csr.bfs_into(start, &mut dist, &mut queue);
            assert_eq!(dist, bfs_distances(&g, start), "row {start} diverged");
        }
    }

    #[test]
    fn bfs_into_reports_unreachable_as_max() {
        let mut g = generators::path_graph(3);
        let isolated = g.add_node();
        let csr = CsrGraph::from_graph(&g);
        let mut dist = vec![0usize; g.node_count()];
        let mut queue = VecDeque::new();
        csr.bfs_into(0, &mut dist, &mut queue);
        assert_eq!(dist[isolated], usize::MAX);
        assert_eq!(dist[2], 2);
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let csr = CsrGraph::from_graph(&Graph::new());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        let csr = CsrGraph::from_graph(&Graph::with_nodes(1));
        assert_eq!(csr.node_count(), 1);
        assert!(csr.neighbors(0).is_empty());
    }
}
