//! Subgraph monomorphism (VF2-style backtracking).
//!
//! Quantum layout synthesis asks whether a circuit's interaction graph can be
//! embedded into the device coupling graph: if it can, the circuit is
//! executable without SWAPs (this is how QUEKO benchmarks are solved), and if
//! it cannot, at least one SWAP is required — the property the QUBIKOS
//! generator engineers deliberately.
//!
//! The matcher searches for a **non-induced** embedding: an injective map
//! from pattern nodes to target nodes such that every pattern edge maps onto
//! a target edge. Target edges with no pattern counterpart are allowed, which
//! is exactly the layout-synthesis notion of "isomorphic to a subgraph".

use crate::graph::{Graph, NodeId};

/// Backtracking subgraph-monomorphism matcher in the spirit of VF2.
///
/// The matcher owns references to the pattern and target graphs and performs
/// a depth-first search over partial injective mappings, ordering pattern
/// nodes so that each newly matched node is adjacent to the already-matched
/// core whenever possible and pruning candidates whose degree is too small.
///
/// # Example
///
/// ```
/// use qubikos_graph::{generators, Vf2Matcher};
///
/// let pattern = generators::path_graph(3);
/// let target = generators::grid_graph(2, 2);
/// let embedding = Vf2Matcher::new(&pattern, &target).find_embedding();
/// assert!(embedding.is_some());
/// ```
#[derive(Debug)]
pub struct Vf2Matcher<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    node_limit: Option<u64>,
}

impl<'a> Vf2Matcher<'a> {
    /// Creates a matcher for embedding `pattern` into `target`.
    pub fn new(pattern: &'a Graph, target: &'a Graph) -> Self {
        Vf2Matcher {
            pattern,
            target,
            node_limit: None,
        }
    }

    /// Limits the number of search-tree nodes explored.
    ///
    /// When the limit is reached the search gives up and behaves as if no
    /// embedding exists. Useful to bound worst-case runtime on large
    /// hard instances where the caller only wants a cheap feasibility probe.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Finds one embedding, returned as `map[pattern_node] == target_node`.
    ///
    /// Returns `None` if no embedding exists (or the node limit was hit).
    pub fn find_embedding(&self) -> Option<Vec<NodeId>> {
        let np = self.pattern.node_count();
        let nt = self.target.node_count();
        if np == 0 {
            return Some(Vec::new());
        }
        if np > nt || self.pattern.edge_count() > self.target.edge_count() {
            return None;
        }
        // Quick degree-sequence pruning: the k-th largest pattern degree must
        // not exceed the k-th largest target degree.
        let pd = self.pattern.degree_sequence();
        let td = self.target.degree_sequence();
        for (p, t) in pd.iter().zip(td.iter()) {
            if p > t {
                return None;
            }
        }

        let order = self.match_order();
        let mut mapping = vec![usize::MAX; np];
        let mut used = vec![false; nt];
        let mut budget = self.node_limit.unwrap_or(u64::MAX);
        if self.search(&order, 0, &mut mapping, &mut used, &mut budget) {
            Some(mapping)
        } else {
            None
        }
    }

    /// Returns `true` if at least one embedding exists.
    pub fn is_isomorphic_to_subgraph(&self) -> bool {
        self.find_embedding().is_some()
    }

    /// Chooses the order in which pattern nodes are matched: highest degree
    /// first, then preferring nodes adjacent to the already-ordered prefix so
    /// that adjacency constraints prune early.
    fn match_order(&self) -> Vec<NodeId> {
        let np = self.pattern.node_count();
        let mut order: Vec<NodeId> = Vec::with_capacity(np);
        let mut placed = vec![false; np];
        while order.len() < np {
            let best = self
                .pattern
                .nodes()
                .filter(|&n| !placed[n])
                .max_by_key(|&n| {
                    let attached = self
                        .pattern
                        .neighbors(n)
                        .iter()
                        .filter(|&&m| placed[m])
                        .count();
                    (attached, self.pattern.degree(n))
                })
                .expect("unplaced node must exist");
            placed[best] = true;
            order.push(best);
        }
        order
    }

    fn search(
        &self,
        order: &[NodeId],
        depth: usize,
        mapping: &mut Vec<NodeId>,
        used: &mut Vec<bool>,
        budget: &mut u64,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        if *budget == 0 {
            return false;
        }
        *budget -= 1;

        let p = order[depth];
        let p_deg = self.pattern.degree(p);
        // Candidate targets: restrict to neighbours of an already-mapped
        // pattern neighbour when one exists, otherwise all unused nodes.
        let anchor = self
            .pattern
            .neighbors(p)
            .iter()
            .copied()
            .find(|&q| mapping[q] != usize::MAX);

        let try_candidate = |cand: NodeId,
                             mapping: &mut Vec<NodeId>,
                             used: &mut Vec<bool>,
                             budget: &mut u64|
         -> bool {
            if used[cand] || self.target.degree(cand) < p_deg {
                return false;
            }
            // Every already-mapped pattern neighbour must be adjacent in the target.
            for &q in self.pattern.neighbors(p) {
                let tq = mapping[q];
                if tq != usize::MAX && !self.target.has_edge(cand, tq) {
                    return false;
                }
            }
            mapping[p] = cand;
            used[cand] = true;
            if self.search(order, depth + 1, mapping, used, budget) {
                return true;
            }
            mapping[p] = usize::MAX;
            used[cand] = false;
            false
        };

        match anchor {
            Some(q) => {
                let around = mapping[q];
                for &cand in self.target.neighbors(around) {
                    if try_candidate(cand, mapping, used, budget) {
                        return true;
                    }
                }
            }
            None => {
                for cand in self.target.nodes() {
                    if try_candidate(cand, mapping, used, budget) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Convenience wrapper: does `pattern` embed into a subgraph of `target`?
pub fn is_subgraph_isomorphic(pattern: &Graph, target: &Graph) -> bool {
    Vf2Matcher::new(pattern, target).is_isomorphic_to_subgraph()
}

/// Convenience wrapper returning one embedding (`map[pattern] == target`),
/// or `None` if the pattern cannot be embedded.
pub fn find_subgraph_embedding(pattern: &Graph, target: &Graph) -> Option<Vec<NodeId>> {
    Vf2Matcher::new(pattern, target).find_embedding()
}

/// Checks that `mapping` is a valid monomorphism from `pattern` into `target`.
///
/// Used by tests and by callers that obtained an embedding from elsewhere
/// (e.g. a routing tool's initial placement) and want to validate it.
pub fn verify_embedding(pattern: &Graph, target: &Graph, mapping: &[NodeId]) -> bool {
    if mapping.len() != pattern.node_count() {
        return false;
    }
    let mut used = vec![false; target.node_count()];
    for &t in mapping {
        if t >= target.node_count() || used[t] {
            return false;
        }
        used[t] = true;
    }
    pattern
        .edges()
        .all(|e| target.has_edge(mapping[e.u], mapping[e.v]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_embeds_into_grid() {
        let pattern = generators::path_graph(5);
        let target = generators::grid_graph(3, 3);
        let m = find_subgraph_embedding(&pattern, &target).expect("embedding exists");
        assert!(verify_embedding(&pattern, &target, &m));
    }

    #[test]
    fn star_too_wide_for_grid() {
        // A degree-5 hub cannot embed into a grid whose max degree is 4.
        let pattern = generators::star_graph(6);
        let target = generators::grid_graph(3, 3);
        assert!(!is_subgraph_isomorphic(&pattern, &target));
    }

    #[test]
    fn triangle_does_not_embed_into_bipartite_grid() {
        let pattern = generators::cycle_graph(3);
        let target = generators::grid_graph(4, 4);
        assert!(!is_subgraph_isomorphic(&pattern, &target));
    }

    #[test]
    fn graph_embeds_into_itself() {
        let g = generators::grid_graph(3, 4);
        let m = find_subgraph_embedding(&g, &g).expect("identity-like embedding");
        assert!(verify_embedding(&g, &g, &m));
    }

    #[test]
    fn empty_pattern_always_embeds() {
        let pattern = Graph::new();
        let target = generators::path_graph(3);
        assert_eq!(find_subgraph_embedding(&pattern, &target), Some(vec![]));
    }

    #[test]
    fn pattern_larger_than_target_fails_fast() {
        let pattern = generators::path_graph(5);
        let target = generators::path_graph(3);
        assert!(!is_subgraph_isomorphic(&pattern, &target));
    }

    #[test]
    fn isolated_pattern_nodes_are_allowed() {
        let mut pattern = generators::path_graph(2);
        pattern.add_node();
        let target = generators::grid_graph(2, 2);
        let m = find_subgraph_embedding(&pattern, &target).expect("embedding exists");
        assert!(verify_embedding(&pattern, &target, &m));
    }

    #[test]
    fn cycle_embeds_into_same_length_cycle_but_not_shorter() {
        let c6 = generators::cycle_graph(6);
        assert!(is_subgraph_isomorphic(&c6, &generators::cycle_graph(6)));
        assert!(!is_subgraph_isomorphic(&c6, &generators::cycle_graph(5)));
        // A 6-cycle embeds into a 2x3 grid (which is exactly a 6-cycle).
        assert!(is_subgraph_isomorphic(&c6, &generators::grid_graph(2, 3)));
    }

    #[test]
    fn node_limit_gives_up() {
        let pattern = generators::grid_graph(3, 3);
        let target = generators::grid_graph(5, 5);
        let found = Vf2Matcher::new(&pattern, &target)
            .with_node_limit(1)
            .find_embedding();
        assert!(found.is_none());
        let found = Vf2Matcher::new(&pattern, &target).find_embedding();
        assert!(found.is_some());
    }

    #[test]
    fn verify_embedding_rejects_bad_maps() {
        let pattern = generators::path_graph(3);
        let target = generators::path_graph(3);
        assert!(!verify_embedding(&pattern, &target, &[0, 0, 1])); // not injective
        assert!(!verify_embedding(&pattern, &target, &[0, 2, 1])); // breaks an edge
        assert!(!verify_embedding(&pattern, &target, &[0, 1])); // wrong length
        assert!(verify_embedding(&pattern, &target, &[0, 1, 2]));
    }

    #[test]
    fn complete_graph_embedding_requires_clique() {
        let k4 = generators::complete_graph(4);
        assert!(!is_subgraph_isomorphic(&k4, &generators::grid_graph(3, 3)));
        assert!(is_subgraph_isomorphic(&k4, &generators::complete_graph(5)));
    }
}
