//! Graph substrate for the QUBIKOS benchmark suite.
//!
//! Quantum layout synthesis manipulates two kinds of undirected graphs: the
//! *coupling graph* of a device (which pairs of physical qubits may interact)
//! and the *interaction graph* of a circuit (which pairs of program qubits
//! share a two-qubit gate). This crate provides the shared machinery both
//! need:
//!
//! * [`Graph`] — a compact adjacency-list undirected graph.
//! * [`traversal`] — BFS/DFS orders, BFS edge orders (used by the QUBIKOS
//!   backbone construction), connected components.
//! * [`distance`] — dense all-pairs shortest-path distances, the small-device
//!   workhorse of every SWAP-routing heuristic.
//! * [`csr`] — frozen compressed-sparse-row adjacency for cache-friendly BFS
//!   on routing-scale devices.
//! * [`oracle`] — the [`DistanceOracle`] abstraction: dense matrix or
//!   on-demand BFS with a bounded, pinnable row cache, one exact-distance
//!   query API.
//! * [`landmark`] — Thorup–Zwick-style landmark index answering O(L)
//!   triangle-inequality distance bounds for candidate-scan pruning, layered
//!   over the exact oracle as the routing-scale default.
//! * [`isomorphism`] — VF2-style subgraph monomorphism, used both to check
//!   that QUBIKOS interaction graphs cannot be embedded into the coupling
//!   graph and to implement QUEKO-style initial placement.
//! * [`weights`] — per-coupler SWAP-cost weights ([`CouplerWeights`]):
//!   uniform today, fidelity-derived heterogeneous costs as a scenario axis,
//!   threaded through the routing kernel's score multipliers.
//! * [`generators`] — deterministic generators for standard topologies.
//!
//! # Example
//!
//! ```
//! use qubikos_graph::{Graph, generators};
//!
//! let grid = generators::grid_graph(3, 3);
//! assert_eq!(grid.node_count(), 9);
//! assert_eq!(grid.edge_count(), 12);
//! assert!(grid.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod distance;
pub mod generators;
pub mod graph;
pub mod isomorphism;
pub mod landmark;
pub mod oracle;
pub mod traversal;
pub mod weights;

pub use csr::CsrGraph;
pub use distance::DistanceMatrix;
pub use graph::{Edge, Graph, NodeId};
pub use isomorphism::{find_subgraph_embedding, is_subgraph_isomorphic, Vf2Matcher};
pub use landmark::{default_landmark_count, LandmarkIndex, LandmarkOracle};
pub use oracle::{
    default_row_capacity, BfsOracle, DistanceOracle, DistanceRow, OracleKind, OracleStats,
    DENSE_ORACLE_MAX_NODES, SPARSE_ROW_CACHE_CAPACITY,
};
pub use traversal::{bfs_distances, bfs_edge_order, bfs_order, connected_components};
pub use weights::CouplerWeights;
