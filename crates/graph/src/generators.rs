//! Deterministic graph generators for standard topologies.
//!
//! Device-specific coupling graphs (Aspen-4, Sycamore, Rochester, Eagle) live
//! in the `qubikos-arch` crate; the generators here are the generic building
//! blocks they and the test suites use.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Path graph `0 - 1 - ... - (n-1)`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Cycle graph on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycle graph needs at least 3 nodes, got {n}");
    let mut g = path_graph(n);
    g.add_edge(n - 1, 0);
    g
}

/// Complete graph on `n` nodes.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b);
        }
    }
    g
}

/// Star graph: node 0 connected to nodes `1..n`.
pub fn star_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for leaf in 1..n {
        g.add_edge(0, leaf);
    }
    g
}

/// Rectangular grid with `rows * cols` nodes in row-major order.
///
/// Node `(r, c)` has id `r * cols + c` and is connected to its horizontal and
/// vertical neighbours. This is the "3x3 grid" architecture of the paper's
/// optimality study when `rows == cols == 3`.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph from the provided RNG.
///
/// Edge probability `p` is clamped to `[0, 1]`.
pub fn gnp_random_graph<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let p = p.clamp(0.0, 1.0);
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// Random connected graph: a random spanning tree plus extra random edges.
///
/// Useful for property tests that need arbitrary but connected coupling
/// graphs. `extra_edges` additional distinct edges are attempted on top of
/// the spanning tree (fewer may be added on small graphs).
pub fn random_connected_graph<R: Rng + ?Sized>(n: usize, extra_edges: usize, rng: &mut R) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n <= 1 {
        return g;
    }
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        g.add_edge(order[i], parent);
    }
    let mut attempts = 0;
    let mut added = 0;
    while added < extra_edges && attempts < extra_edges * 10 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && g.add_edge(a, b) {
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_graph_structure() {
        let g = path_graph(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
        assert_eq!(path_graph(0).node_count(), 0);
        assert_eq!(path_graph(1).edge_count(), 0);
    }

    #[test]
    fn cycle_graph_structure() {
        let g = cycle_graph(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|n| g.degree(n) == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_graph_too_small() {
        let _ = cycle_graph(2);
    }

    #[test]
    fn complete_graph_structure() {
        let g = complete_graph(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.nodes().all(|n| g.degree(n) == 4));
    }

    #[test]
    fn star_graph_structure() {
        let g = star_graph(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|n| g.degree(n) == 1));
    }

    #[test]
    fn grid_graph_structure() {
        let g = grid_graph(3, 3);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(4), 4); // centre
        assert_eq!(g.degree(0), 2); // corner
        assert!(g.is_connected());
        // Degenerate shapes.
        assert_eq!(grid_graph(1, 4).edge_count(), 3);
        assert_eq!(grid_graph(0, 4).node_count(), 0);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let empty = gnp_random_graph(6, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp_random_graph(6, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 15);
    }

    #[test]
    fn random_connected_graph_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for n in [2usize, 5, 9, 16] {
            let g = random_connected_graph(n, 3, &mut rng);
            assert!(g.is_connected(), "graph on {n} nodes should be connected");
            assert!(g.edge_count() >= n - 1);
        }
    }

    #[test]
    fn random_connected_graph_deterministic_for_seed() {
        let g1 = random_connected_graph(10, 4, &mut ChaCha8Rng::seed_from_u64(7));
        let g2 = random_connected_graph(10, 4, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }
}
