//! Golden SWAP-count regression fixtures.
//!
//! Routes a fixed set of seeded circuits (line, grid, heavy-hex) through all
//! four routers at a fixed seed and asserts the exact per-router SWAP
//! counts. Any future kernel or router change that silently alters routing
//! decisions — a reordered candidate scan, a float-associativity change in
//! the incremental scorer, a different tie-break stream — fails here loudly
//! instead of drifting the paper's Figure-4 numbers.
//!
//! If a change *intentionally* alters routing decisions, regenerate the
//! constants below and record the swap-count movement in the PR description.

use qubikos_arch::{devices, Architecture};
use qubikos_circuit::{Circuit, Gate};
use qubikos_layout::{validate_routing, ToolKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed handed to every router (mirrors the harness's `tool_seed` role).
const TOOL_SEED: u64 = 11;

/// A seeded random circuit with roughly 1/4 single-qubit gates, so the
/// fixtures also pin the attached/trailing single-qubit gate scheduling.
fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = Circuit::new(num_qubits);
    for _ in 0..gates {
        let a = rng.gen_range(0..num_qubits);
        let mut b = rng.gen_range(0..num_qubits);
        while b == a {
            b = rng.gen_range(0..num_qubits);
        }
        if rng.gen_range(0..4) == 0 {
            c.push(Gate::h(a));
        } else {
            c.push(Gate::cx(a, b));
        }
    }
    c
}

/// Golden counts in [`ToolKind::ALL`] order: lightsabre, ml-qls, qmap, tket.
fn check_fixture(name: &str, arch: &Architecture, circuit: &Circuit, golden: [usize; 4]) {
    for (tool, expected) in ToolKind::ALL.into_iter().zip(golden) {
        let routed = tool.build(TOOL_SEED).route(circuit, arch).expect("fits");
        validate_routing(circuit, arch, &routed).expect("valid routing");
        assert_eq!(
            routed.swap_count(),
            expected,
            "{name}/{tool}: routing decisions changed (got {}, golden {expected})",
            routed.swap_count()
        );
    }
}

#[test]
fn golden_swap_counts_on_line() {
    let arch = devices::line(8);
    let circuit = random_circuit(6, 30, 42);
    check_fixture("line-8", &arch, &circuit, [10, 16, 29, 25]);
}

#[test]
fn golden_swap_counts_on_grid() {
    let arch = devices::grid(4, 4);
    let circuit = random_circuit(12, 60, 7);
    check_fixture("grid-4x4", &arch, &circuit, [16, 34, 48, 52]);
}

#[test]
fn golden_swap_counts_on_heavy_hex() {
    let arch = devices::rochester53();
    let circuit = random_circuit(20, 60, 3);
    check_fixture("rochester-53", &arch, &circuit, [54, 71, 107, 85]);
}

/// The sparse oracle answers exactly the distances the dense matrix does, so
/// forcing it onto the small fixture devices must reproduce every golden
/// count bit-for-bit — the acceptance gate for swapping oracle
/// implementations out from under the routers.
#[test]
fn golden_swap_counts_unchanged_under_sparse_oracle() {
    use qubikos_graph::OracleKind;
    /// (name, dense-oracle arch, circuit qubits, gates, seed, golden counts).
    type Fixture = (&'static str, Architecture, usize, usize, u64, [usize; 4]);
    let fixtures: [Fixture; 3] = [
        ("line-8", devices::line(8), 6, 30, 42, [10, 16, 29, 25]),
        ("grid-4x4", devices::grid(4, 4), 12, 60, 7, [16, 34, 48, 52]),
        (
            "rochester-53",
            devices::rochester53(),
            20,
            60,
            3,
            [54, 71, 107, 85],
        ),
    ];
    for (name, dense_arch, qubits, gates, seed, golden) in fixtures {
        assert_eq!(dense_arch.oracle_kind(), OracleKind::Dense);
        let sparse_arch = Architecture::with_oracle(
            dense_arch.name(),
            dense_arch.coupling_graph().clone(),
            OracleKind::Sparse,
        )
        .expect("connected");
        let circuit = random_circuit(qubits, gates, seed);
        check_fixture(name, &sparse_arch, &circuit, golden);
        assert!(sparse_arch.oracle_stats().rows_computed > 0);
    }
}

/// The landmark-backed oracle adds bound-based candidate pruning on top of
/// the exact tiers, but pruning only ever discards candidates provably
/// outside the winner's tie band — so forcing it onto the small fixture
/// devices must also reproduce every golden count bit-for-bit. This is the
/// acceptance gate for the pruned candidate scan (and the CI smoke for the
/// landmark tier).
#[test]
fn golden_swap_counts_unchanged_under_landmark_oracle() {
    use qubikos_graph::OracleKind;
    /// (name, dense-oracle arch, circuit qubits, gates, seed, golden counts).
    type Fixture = (&'static str, Architecture, usize, usize, u64, [usize; 4]);
    let fixtures: [Fixture; 3] = [
        ("line-8", devices::line(8), 6, 30, 42, [10, 16, 29, 25]),
        ("grid-4x4", devices::grid(4, 4), 12, 60, 7, [16, 34, 48, 52]),
        (
            "rochester-53",
            devices::rochester53(),
            20,
            60,
            3,
            [54, 71, 107, 85],
        ),
    ];
    for (name, dense_arch, qubits, gates, seed, golden) in fixtures {
        let landmark_arch = Architecture::with_oracle(
            dense_arch.name(),
            dense_arch.coupling_graph().clone(),
            OracleKind::Landmark,
        )
        .expect("connected");
        let circuit = random_circuit(qubits, gates, seed);
        check_fixture(name, &landmark_arch, &circuit, golden);
        let stats = landmark_arch.oracle_stats();
        assert!(stats.rows_computed > 0);
        // The SABRE/tket scans actually exercised the pruning path.
        assert!(stats.exact_fallbacks > 0, "{name}: pruning never ran");
    }
}

/// The construction kit's new cost axis, pinned: the four named
/// compositions re-run with **fidelity-derived (non-uniform) coupler
/// weights** forced on, and the resulting SWAP counts fixed as a fresh
/// golden scenario. The uniform fixtures above stay untouched — this pins
/// the weighted decision stream *next to* them, so a change to the weight
/// hash, the `swap_multiplier` composition, or the pruned-score reuse under
/// non-uniform weights fails here while the bit-identity fixtures keep
/// guarding the classic path. QMAP's A* ignores the weight axis (the spec
/// canonicalizes it away), so its counts must equal the uniform goldens.
#[test]
fn golden_swap_counts_under_fidelity_weights() {
    use qubikos_layout::{Router, RouterSpec, WeightsSpec};
    /// Seed of the synthetic per-coupler noise model (not the routing seed).
    const WEIGHT_SEED: u64 = 5;
    /// (name, arch, circuit qubits, gates, seed, weighted golden counts).
    type Fixture = (&'static str, Architecture, usize, usize, u64, [usize; 4]);
    let fixtures: [Fixture; 3] = [
        ("line-8", devices::line(8), 6, 30, 42, [11, 16, 29, 17]),
        (
            "grid-4x4",
            devices::grid(4, 4),
            12,
            60,
            7,
            [40, 103, 48, 110],
        ),
        (
            "rochester-53",
            devices::rochester53(),
            20,
            60,
            3,
            [1757, 2302, 107, 493],
        ),
    ];
    for (name, arch, qubits, gates, seed, golden) in fixtures {
        let circuit = random_circuit(qubits, gates, seed);
        for (tool, expected) in ToolKind::ALL.into_iter().zip(golden) {
            let spec = RouterSpec {
                weights: WeightsSpec::Fidelity { seed: WEIGHT_SEED },
                ..tool.spec()
            }
            .canonicalized();
            let routed = spec
                .build_named(TOOL_SEED, tool.name())
                .route(&circuit, &arch)
                .expect("fits");
            validate_routing(&circuit, &arch, &routed).expect("valid routing");
            assert_eq!(
                routed.swap_count(),
                expected,
                "{name}/{tool} (fidelity-weighted): routing decisions changed (got {}, golden {expected})",
                routed.swap_count()
            );
        }
    }
}

/// Osprey-433 golden fixture: one small QUEKO instance routed by all four
/// tools on the auto-selected (landmark-backed) oracle, exact SWAP counts
/// pinned. Any change to landmark selection, bound pruning, pinned
/// eviction, or held-row scoring that shifts a routing decision at scale
/// fails here loudly.
#[test]
fn golden_swap_counts_on_osprey433_queko() {
    use qubikos::queko::{generate_queko, QuekoConfig};
    use qubikos_graph::OracleKind;
    let arch = devices::osprey433();
    assert_eq!(arch.oracle_kind(), OracleKind::Landmark);
    let queko = generate_queko(&arch, &QuekoConfig::new(5).with_density(0.05).with_seed(9))
        .expect("generates");
    check_fixture("osprey-433", &arch, queko.circuit(), [2, 22, 4, 4]);
}
