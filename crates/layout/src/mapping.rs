//! Program-to-physical qubit mappings.

use qubikos_graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An injective mapping `f : Q -> P` from program qubits to physical qubits.
///
/// The device may have more physical qubits than the circuit has program
/// qubits; unassigned physical qubits simply hold no program state but can
/// still participate in SWAPs (which is how routers move qubits through
/// "empty" locations).
///
/// Internally both directions are kept so lookups are O(1):
/// `physical(q)` for program → physical, `logical(p)` for physical → program.
///
/// # Example
///
/// ```
/// use qubikos_layout::Mapping;
///
/// let mut m = Mapping::identity(3, 5);
/// assert_eq!(m.physical(2), 2);
/// m.apply_swap_physical(2, 4);
/// assert_eq!(m.physical(2), 4);
/// assert_eq!(m.logical(2), None);
/// assert_eq!(m.logical(4), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// `prog_to_phys[q]` is the physical qubit hosting program qubit `q`.
    prog_to_phys: Vec<NodeId>,
    /// `phys_to_prog[p]` is the program qubit hosted on `p`, if any.
    phys_to_prog: Vec<Option<NodeId>>,
}

impl Mapping {
    /// The identity mapping: program qubit `q` on physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `num_program > num_physical`.
    pub fn identity(num_program: usize, num_physical: usize) -> Self {
        assert!(
            num_program <= num_physical,
            "cannot map {num_program} program qubits onto {num_physical} physical qubits"
        );
        let prog_to_phys: Vec<NodeId> = (0..num_program).collect();
        Self::from_prog_to_phys(prog_to_phys, num_physical)
    }

    /// Builds a mapping from an explicit program → physical assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not injective or a physical qubit index is
    /// out of range.
    pub fn from_prog_to_phys(prog_to_phys: Vec<NodeId>, num_physical: usize) -> Self {
        assert!(
            prog_to_phys.len() <= num_physical,
            "cannot map {} program qubits onto {num_physical} physical qubits",
            prog_to_phys.len()
        );
        let mut phys_to_prog = vec![None; num_physical];
        for (q, &p) in prog_to_phys.iter().enumerate() {
            assert!(p < num_physical, "physical qubit {p} out of range");
            assert!(
                phys_to_prog[p].is_none(),
                "physical qubit {p} assigned to two program qubits"
            );
            phys_to_prog[p] = Some(q);
        }
        Mapping {
            prog_to_phys,
            phys_to_prog,
        }
    }

    /// A uniformly random injective mapping.
    ///
    /// # Panics
    ///
    /// Panics if `num_program > num_physical`.
    pub fn random<R: Rng + ?Sized>(num_program: usize, num_physical: usize, rng: &mut R) -> Self {
        assert!(
            num_program <= num_physical,
            "cannot map {num_program} program qubits onto {num_physical} physical qubits"
        );
        let mut physical: Vec<NodeId> = (0..num_physical).collect();
        physical.shuffle(rng);
        physical.truncate(num_program);
        Self::from_prog_to_phys(physical, num_physical)
    }

    /// Number of program qubits.
    pub fn num_program(&self) -> usize {
        self.prog_to_phys.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.phys_to_prog.len()
    }

    /// Physical qubit hosting program qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn physical(&self, q: NodeId) -> NodeId {
        self.prog_to_phys[q]
    }

    /// Program qubit hosted on physical qubit `p`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn logical(&self, p: NodeId) -> Option<NodeId> {
        self.phys_to_prog[p]
    }

    /// The full program → physical assignment.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.prog_to_phys
    }

    /// Swaps whatever program qubits currently sit on physical qubits `a` and
    /// `b` (either or both may be empty).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either is out of range.
    pub fn apply_swap_physical(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "swap needs two distinct physical qubits");
        assert!(
            a < self.num_physical() && b < self.num_physical(),
            "physical qubit out of range"
        );
        let qa = self.phys_to_prog[a];
        let qb = self.phys_to_prog[b];
        self.phys_to_prog[a] = qb;
        self.phys_to_prog[b] = qa;
        if let Some(q) = qa {
            self.prog_to_phys[q] = b;
        }
        if let Some(q) = qb {
            self.prog_to_phys[q] = a;
        }
    }

    /// Checks internal consistency (both directions agree, injectivity holds).
    pub fn is_consistent(&self) -> bool {
        let mut seen = vec![false; self.num_physical()];
        for (q, &p) in self.prog_to_phys.iter().enumerate() {
            if p >= self.num_physical() || seen[p] || self.phys_to_prog[p] != Some(q) {
                return false;
            }
            seen[p] = true;
        }
        self.phys_to_prog
            .iter()
            .enumerate()
            .all(|(p, entry)| match entry {
                Some(q) => *q < self.num_program() && self.prog_to_phys[*q] == p,
                None => !seen[p],
            })
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (q, &p) in self.prog_to_phys.iter().enumerate() {
            if q > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q{q}→p{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_mapping() {
        let m = Mapping::identity(3, 5);
        assert_eq!(m.num_program(), 3);
        assert_eq!(m.num_physical(), 5);
        assert_eq!(m.physical(1), 1);
        assert_eq!(m.logical(1), Some(1));
        assert_eq!(m.logical(4), None);
        assert!(m.is_consistent());
    }

    #[test]
    #[should_panic(expected = "cannot map")]
    fn identity_too_many_program_qubits() {
        let _ = Mapping::identity(5, 3);
    }

    #[test]
    fn explicit_mapping() {
        let m = Mapping::from_prog_to_phys(vec![4, 0, 2], 5);
        assert_eq!(m.physical(0), 4);
        assert_eq!(m.logical(4), Some(0));
        assert_eq!(m.logical(1), None);
        assert!(m.is_consistent());
        assert_eq!(m.as_slice(), &[4, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "assigned to two")]
    fn explicit_mapping_rejects_duplicates() {
        let _ = Mapping::from_prog_to_phys(vec![1, 1], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_mapping_rejects_out_of_range() {
        let _ = Mapping::from_prog_to_phys(vec![7], 3);
    }

    #[test]
    fn swap_moves_both_occupied() {
        let mut m = Mapping::from_prog_to_phys(vec![0, 1], 3);
        m.apply_swap_physical(0, 1);
        assert_eq!(m.physical(0), 1);
        assert_eq!(m.physical(1), 0);
        assert!(m.is_consistent());
    }

    #[test]
    fn swap_into_empty_location() {
        let mut m = Mapping::from_prog_to_phys(vec![0], 3);
        m.apply_swap_physical(0, 2);
        assert_eq!(m.physical(0), 2);
        assert_eq!(m.logical(0), None);
        assert!(m.is_consistent());
        // Swapping two empty locations is a no-op but stays consistent.
        m.apply_swap_physical(0, 1);
        assert!(m.is_consistent());
    }

    #[test]
    #[should_panic(expected = "distinct physical qubits")]
    fn swap_same_qubit_panics() {
        let mut m = Mapping::identity(2, 3);
        m.apply_swap_physical(1, 1);
    }

    #[test]
    fn random_mapping_is_injective_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = Mapping::random(5, 9, &mut rng);
        assert!(m.is_consistent());
        let m2 = Mapping::random(5, 9, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(m, m2);
    }

    #[test]
    fn display_shows_assignments() {
        let m = Mapping::from_prog_to_phys(vec![2, 0], 3);
        assert_eq!(m.to_string(), "{q0→p2, q1→p0}");
    }
}
