//! Initial-placement strategies.
//!
//! Routers combine one of these placements with a SWAP-insertion pass. The
//! VF2 placement is what solves QUEKO-style (SWAP-free) benchmarks outright;
//! the paper stresses that it is *not* sufficient for QUBIKOS circuits, which
//! is exercised by the tests in the `qubikos` crate.

use crate::mapping::Mapping;
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::{bfs_order, find_subgraph_embedding, Graph, NodeId};
use rand::Rng;

/// A uniformly random injective placement.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device.
pub fn random_placement<R: Rng + ?Sized>(
    circuit: &Circuit,
    arch: &Architecture,
    rng: &mut R,
) -> Mapping {
    Mapping::random(circuit.num_qubits(), arch.num_qubits(), rng)
}

/// Subgraph-isomorphism placement: embeds the interaction graph into the
/// coupling graph if possible, making the whole circuit executable without
/// SWAPs (the QUEKO case). Returns `None` when no embedding exists, which is
/// by construction always the case for QUBIKOS circuits.
pub fn vf2_placement(circuit: &Circuit, arch: &Architecture) -> Option<Mapping> {
    if circuit.num_qubits() > arch.num_qubits() {
        return None;
    }
    let interaction = circuit.interaction_graph();
    let embedding = find_subgraph_embedding(&interaction, arch.coupling_graph())?;
    Some(Mapping::from_prog_to_phys(embedding, arch.num_qubits()))
}

/// Greedy BFS placement: walk the interaction graph in BFS order from its
/// highest-degree qubit and greedily place each program qubit on the free
/// physical qubit that minimises the summed distance to its already-placed
/// interaction-graph neighbours.
///
/// This is the structure-aware (but cheap) placement used as the starting
/// point of the multilevel router and as SABRE's fallback when it is not
/// given trials to spend on random restarts.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device.
pub fn greedy_bfs_placement(circuit: &Circuit, arch: &Architecture) -> Mapping {
    assert!(
        circuit.num_qubits() <= arch.num_qubits(),
        "circuit does not fit the device"
    );
    let interaction = circuit.interaction_graph();
    let order = placement_order(&interaction);
    let n_phys = arch.num_qubits();

    let mut assigned: Vec<Option<NodeId>> = vec![None; circuit.num_qubits()];
    let mut used = vec![false; n_phys];
    let mut totals = vec![0usize; n_phys];
    // Tie-break key: prefer well-connected physical qubits, then low index.
    let tie: Vec<usize> = (0..n_phys).map(|p| n_phys - arch.degree(p)).collect();
    // Free physical qubits in selection order for the no-placed-neighbour
    // case (seed qubits and interaction-isolated qubits): with every total
    // zero the argmin reduces to this precomputed connectivity order, so the
    // scan becomes popping the next unused entry. QUEKO circuits are
    // device-width but sparse, so this covers a large fraction of qubits.
    let mut by_degree: Vec<NodeId> = (0..n_phys).collect();
    by_degree.sort_by_key(|&p| (tie[p], p));
    let mut next_free = 0usize;

    for &q in &order {
        // One distance row per placed interaction neighbour covers the whole
        // candidate scan (instead of candidates × neighbours point queries),
        // accumulated row-major into `totals` so the scan over candidates is
        // a single cache-friendly pass. Selects exactly the qubit a
        // per-candidate `min_by_key` over `(total, tie)` would: same sums,
        // same first-minimum in index order.
        let mut rows = interaction
            .neighbors(q)
            .iter()
            .filter_map(|&nb| assigned[nb])
            .map(|np| arch.distance_row(np));
        let best = match rows.next() {
            None => {
                while used[by_degree[next_free]] {
                    next_free += 1;
                }
                by_degree[next_free]
            }
            Some(first) => {
                totals[..n_phys].copy_from_slice(&first[..n_phys]);
                drop(first);
                for row in rows {
                    let row = &row[..n_phys];
                    for p in 0..n_phys {
                        totals[p] += row[p];
                    }
                }
                let mut best = usize::MAX;
                let mut best_key = (usize::MAX, usize::MAX);
                for p in 0..n_phys {
                    if !used[p] && (totals[p], tie[p]) < best_key {
                        best_key = (totals[p], tie[p]);
                        best = p;
                    }
                }
                assert_ne!(best, usize::MAX, "device has enough free qubits");
                best
            }
        };
        assigned[q] = Some(best);
        used[best] = true;
    }

    let prog_to_phys: Vec<NodeId> = assigned
        .into_iter()
        .map(|p| p.expect("every program qubit placed"))
        .collect();
    Mapping::from_prog_to_phys(prog_to_phys, n_phys)
}

/// Order in which program qubits are placed: BFS from the highest-degree
/// qubit of each connected component, components visited by decreasing size.
fn placement_order(interaction: &Graph) -> Vec<NodeId> {
    let mut components = qubikos_graph::connected_components(interaction);
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut order = Vec::with_capacity(interaction.node_count());
    let mut member = vec![false; interaction.node_count()];
    for component in components {
        let start = component
            .iter()
            .copied()
            .max_by_key(|&n| interaction.degree(n))
            .expect("component is non-empty");
        for &n in &component {
            member[n] = true;
        }
        for n in bfs_order(interaction, start) {
            if member[n] {
                order.push(n);
            }
        }
        for &n in &component {
            member[n] = false;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_circuit(n: usize) -> Circuit {
        let gates: Vec<Gate> = (1..n).map(|i| Gate::cx(i - 1, i)).collect();
        Circuit::from_gates(n, gates)
    }

    #[test]
    fn random_placement_is_consistent() {
        let arch = devices::grid(3, 3);
        let circuit = line_circuit(5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = random_placement(&circuit, &arch, &mut rng);
        assert!(m.is_consistent());
        assert_eq!(m.num_program(), 5);
        assert_eq!(m.num_physical(), 9);
    }

    #[test]
    fn vf2_placement_finds_swap_free_embedding() {
        let arch = devices::grid(3, 3);
        let circuit = line_circuit(5);
        let m = vf2_placement(&circuit, &arch).expect("a path embeds into the grid");
        // Every interacting pair must be coupled under the placement.
        for gate in circuit.two_qubit_gates() {
            let (a, b) = gate.qubit_pair().expect("two-qubit");
            assert!(arch.are_coupled(m.physical(a), m.physical(b)));
        }
    }

    #[test]
    fn vf2_placement_fails_when_no_embedding_exists() {
        let arch = devices::line(4);
        // A star with a degree-3 hub cannot embed into a line (max degree 2).
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(0, 2), Gate::cx(0, 3)]);
        assert!(vf2_placement(&circuit, &arch).is_none());
    }

    #[test]
    fn vf2_placement_rejects_oversized_circuit() {
        let arch = devices::line(3);
        assert!(vf2_placement(&line_circuit(5), &arch).is_none());
    }

    #[test]
    fn greedy_placement_keeps_neighbors_close() {
        let arch = devices::grid(4, 4);
        let circuit = line_circuit(6);
        let m = greedy_bfs_placement(&circuit, &arch);
        assert!(m.is_consistent());
        let total: usize = circuit
            .two_qubit_gates()
            .iter()
            .map(|g| {
                let (a, b) = g.qubit_pair().expect("two-qubit");
                arch.distance(m.physical(a), m.physical(b))
            })
            .sum();
        // A line of 6 qubits fits with all neighbours adjacent; the greedy
        // placement should get close to the ideal total of 5.
        assert!(
            total <= 8,
            "greedy placement scattered qubits: total {total}"
        );
    }

    #[test]
    fn greedy_placement_handles_idle_qubits() {
        // Qubits with no gates still get placed somewhere.
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(6, [Gate::cx(0, 1)]);
        let m = greedy_bfs_placement(&circuit, &arch);
        assert!(m.is_consistent());
        assert_eq!(m.num_program(), 6);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn greedy_placement_rejects_oversized_circuit() {
        let arch = devices::line(2);
        let _ = greedy_bfs_placement(&line_circuit(4), &arch);
    }
}
