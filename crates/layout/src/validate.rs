//! Validation of routing results.
//!
//! A routed circuit is accepted when (1) every two-qubit gate acts on coupled
//! physical qubits, and (2) after translating each non-SWAP gate back to
//! program qubits through the evolving mapping, the result executes exactly
//! the original circuit's two-qubit gates in an order consistent with its
//! dependency DAG. Single-qubit gates never constrain layout synthesis, so
//! they are ignored on both sides.

use crate::result::RoutedCircuit;
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DependencyDag, Gate, TwoQubitKind};
use std::error::Error;
use std::fmt;

/// Reasons a routed circuit can be rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The initial mapping does not fit the circuit/architecture sizes.
    MappingShape {
        /// Explanation of the size mismatch.
        detail: String,
    },
    /// A two-qubit gate acts on physical qubits that are not coupled.
    Uncoupled {
        /// Index of the offending gate in the physical circuit.
        gate_index: usize,
        /// The gate itself.
        gate: Gate,
    },
    /// A gate operates on a physical qubit that holds no program qubit.
    UnmappedQubit {
        /// Index of the offending gate in the physical circuit.
        gate_index: usize,
    },
    /// A translated gate does not correspond to any ready gate of the
    /// original circuit.
    UnexpectedGate {
        /// Index of the offending gate in the physical circuit.
        gate_index: usize,
        /// The program-qubit pair the physical gate translates to.
        program_pair: (usize, usize),
    },
    /// The physical circuit ended before all original gates were executed.
    MissingGates {
        /// How many original two-qubit gates were never executed.
        remaining: usize,
    },
    /// The recorded final mapping does not match the replayed permutation.
    FinalMappingMismatch,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MappingShape { detail } => write!(f, "mapping shape invalid: {detail}"),
            ValidationError::Uncoupled { gate_index, gate } => {
                write!(f, "gate #{gate_index} ({gate}) acts on uncoupled physical qubits")
            }
            ValidationError::UnmappedQubit { gate_index } => {
                write!(f, "gate #{gate_index} acts on a physical qubit holding no program qubit")
            }
            ValidationError::UnexpectedGate {
                gate_index,
                program_pair,
            } => write!(
                f,
                "gate #{gate_index} maps to program pair ({}, {}) which is not ready in the original circuit",
                program_pair.0, program_pair.1
            ),
            ValidationError::MissingGates { remaining } => {
                write!(f, "{remaining} original two-qubit gates were never executed")
            }
            ValidationError::FinalMappingMismatch => {
                write!(f, "recorded final mapping does not match the replayed SWAP permutation")
            }
        }
    }
}

impl Error for ValidationError {}

/// Checks that `routed` is a legal implementation of `original` on `arch`.
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered while replaying the
/// physical circuit.
pub fn validate_routing(
    original: &Circuit,
    arch: &Architecture,
    routed: &RoutedCircuit,
) -> Result<(), ValidationError> {
    let mapping = &routed.initial_mapping;
    if mapping.num_program() != original.num_qubits() {
        return Err(ValidationError::MappingShape {
            detail: format!(
                "mapping covers {} program qubits but the circuit has {}",
                mapping.num_program(),
                original.num_qubits()
            ),
        });
    }
    if mapping.num_physical() != arch.num_qubits() {
        return Err(ValidationError::MappingShape {
            detail: format!(
                "mapping covers {} physical qubits but the device has {}",
                mapping.num_physical(),
                arch.num_qubits()
            ),
        });
    }

    let dag = DependencyDag::from_circuit(original);
    let mut executed = vec![false; dag.len()];
    let mut remaining_preds: Vec<usize> =
        (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
    let mut executed_count = 0usize;
    let mut current = mapping.clone();

    for (gate_index, gate) in routed.physical_circuit.iter() {
        let Some((pa, pb)) = gate.qubit_pair() else {
            continue; // single-qubit gates are unconstrained
        };
        if !arch.are_coupled(pa, pb) {
            return Err(ValidationError::Uncoupled {
                gate_index,
                gate: *gate,
            });
        }
        if gate.is_swap() {
            current.apply_swap_physical(pa, pb);
            continue;
        }
        let (Some(qa), Some(qb)) = (current.logical(pa), current.logical(pb)) else {
            return Err(ValidationError::UnmappedQubit { gate_index });
        };
        // Find a ready original gate on exactly this program-qubit pair.
        let matched = (0..dag.len()).find(|&i| {
            if executed[i] || remaining_preds[i] != 0 {
                return false;
            }
            let g = dag.gate(i);
            let (a, b) = g.qubit_pair().expect("dag holds two-qubit gates");
            match g {
                Gate::Two {
                    kind: TwoQubitKind::Cx,
                    ..
                } => (a, b) == (qa, qb),
                _ => (a, b) == (qa, qb) || (a, b) == (qb, qa),
            }
        });
        let Some(node) = matched else {
            return Err(ValidationError::UnexpectedGate {
                gate_index,
                program_pair: (qa, qb),
            });
        };
        executed[node] = true;
        executed_count += 1;
        for &s in dag.successors(node) {
            remaining_preds[s] -= 1;
        }
    }

    if executed_count != dag.len() {
        return Err(ValidationError::MissingGates {
            remaining: dag.len() - executed_count,
        });
    }
    if current != routed.final_mapping {
        return Err(ValidationError::FinalMappingMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;
    use qubikos_arch::devices;

    /// Hand-build the paper's Figure 1 example: a 3-qubit circuit on a
    /// 4-qubit line, routed with a single SWAP.
    fn figure1_example() -> (Circuit, qubikos_arch::Architecture, RoutedCircuit) {
        let arch = devices::line(4);
        // g3 = CX(q1,q0), g4 = CX(q1,q2), g5 = CX(q0,q2)
        let original = Circuit::from_gates(3, [Gate::cx(1, 0), Gate::cx(1, 2), Gate::cx(0, 2)]);
        // Mapping q0→p0, q1→p1, q2→p2; SWAP(p0,p1) lets CX(q0,q2) run on (p1,p2).
        let physical = Circuit::from_gates(
            4,
            [
                Gate::cx(1, 0),
                Gate::cx(1, 2),
                Gate::swap(0, 1),
                Gate::cx(1, 2),
            ],
        );
        let initial = Mapping::from_prog_to_phys(vec![0, 1, 2], 4);
        let mut fin = initial.clone();
        fin.apply_swap_physical(0, 1);
        let routed = RoutedCircuit {
            physical_circuit: physical,
            initial_mapping: initial,
            final_mapping: fin,
            tool: "manual".into(),
        };
        (original, arch, routed)
    }

    #[test]
    fn accepts_figure1_routing() {
        let (original, arch, routed) = figure1_example();
        validate_routing(&original, &arch, &routed).expect("valid routing");
        assert_eq!(routed.swap_count(), 1);
    }

    #[test]
    fn rejects_uncoupled_gate() {
        let (original, arch, mut routed) = figure1_example();
        routed.physical_circuit = Circuit::from_gates(4, [Gate::cx(0, 3)]);
        let err = validate_routing(&original, &arch, &routed).unwrap_err();
        assert!(matches!(err, ValidationError::Uncoupled { .. }));
    }

    #[test]
    fn rejects_missing_gates() {
        let (original, arch, mut routed) = figure1_example();
        routed.physical_circuit = Circuit::from_gates(4, [Gate::cx(1, 0)]);
        let err = validate_routing(&original, &arch, &routed).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::MissingGates { remaining: 2 }
        ));
    }

    #[test]
    fn rejects_wrong_order() {
        let (original, arch, mut routed) = figure1_example();
        // Execute CX(q0,q2) first (as physical (0,1) won't map right): use a
        // physical gate that translates to a not-ready program pair.
        routed.physical_circuit = Circuit::from_gates(4, [Gate::cx(1, 2)]);
        let err = validate_routing(&original, &arch, &routed).unwrap_err();
        assert!(matches!(err, ValidationError::UnexpectedGate { .. }));
    }

    #[test]
    fn rejects_cx_with_reversed_control_target() {
        let arch = devices::line(2);
        let original = Circuit::from_gates(2, [Gate::cx(0, 1)]);
        let routed = RoutedCircuit {
            physical_circuit: Circuit::from_gates(2, [Gate::cx(1, 0)]),
            initial_mapping: Mapping::identity(2, 2),
            final_mapping: Mapping::identity(2, 2),
            tool: "manual".into(),
        };
        let err = validate_routing(&original, &arch, &routed).unwrap_err();
        assert!(matches!(err, ValidationError::UnexpectedGate { .. }));
    }

    #[test]
    fn accepts_symmetric_cz_in_either_orientation() {
        let arch = devices::line(2);
        let original = Circuit::from_gates(2, [Gate::cz(0, 1)]);
        let routed = RoutedCircuit {
            physical_circuit: Circuit::from_gates(2, [Gate::cz(1, 0)]),
            initial_mapping: Mapping::identity(2, 2),
            final_mapping: Mapping::identity(2, 2),
            tool: "manual".into(),
        };
        validate_routing(&original, &arch, &routed).expect("cz is symmetric");
    }

    #[test]
    fn rejects_final_mapping_mismatch() {
        let (original, arch, mut routed) = figure1_example();
        routed.final_mapping = routed.initial_mapping.clone();
        let err = validate_routing(&original, &arch, &routed).unwrap_err();
        assert_eq!(err, ValidationError::FinalMappingMismatch);
    }

    #[test]
    fn rejects_bad_mapping_shapes() {
        let (original, arch, mut routed) = figure1_example();
        routed.initial_mapping = Mapping::identity(2, 4);
        assert!(matches!(
            validate_routing(&original, &arch, &routed).unwrap_err(),
            ValidationError::MappingShape { .. }
        ));
        let (original, arch, mut routed) = figure1_example();
        routed.initial_mapping = Mapping::identity(3, 7);
        assert!(matches!(
            validate_routing(&original, &arch, &routed).unwrap_err(),
            ValidationError::MappingShape { .. }
        ));
        let _ = arch;
        let _ = original;
    }

    #[test]
    fn error_display_is_informative() {
        let err = ValidationError::MissingGates { remaining: 4 };
        assert!(err.to_string().contains('4'));
        let err = ValidationError::UnexpectedGate {
            gate_index: 2,
            program_pair: (1, 3),
        };
        assert!(err.to_string().contains("(1, 3)"));
    }
}
