//! An ML-QLS-style multilevel router.
//!
//! ML-QLS (Lin & Cong, 2024) scales layout synthesis to large devices by
//! coarsening the interaction graph, solving placement on the small coarse
//! graph, and then uncoarsening with local refinement at every level. This
//! module follows that recipe:
//!
//! 1. **Coarsening** — repeated heavy-edge matching of the (edge-weighted)
//!    interaction graph until it is small.
//! 2. **Initial placement** — BFS-greedy placement of the coarsest clusters
//!    onto the device.
//! 3. **Uncoarsening + refinement** — each finer level places its nodes near
//!    their cluster's location and runs pairwise-exchange refinement sweeps
//!    that reduce the weighted distance of interaction edges.
//! 4. **Routing** — a single SABRE-style routing pass from the refined
//!    placement (no random-restart trials; the placement is supposed to have
//!    done that work).

use crate::mapping::Mapping;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use crate::sabre::{SabreConfig, SabreRouter};
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::{bfs_order, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the multilevel router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultilevelConfig {
    /// RNG seed forwarded to the final SABRE routing pass.
    pub seed: u64,
    /// Coarsening stops once the graph has at most this many nodes.
    pub coarsest_size: usize,
    /// Number of pairwise-exchange refinement sweeps per level.
    pub refinement_sweeps: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            seed: 0,
            coarsest_size: 8,
            refinement_sweeps: 2,
        }
    }
}

impl MultilevelConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One coarsening level: an edge-weighted graph plus the map from the finer
/// level's nodes to this level's nodes.
#[derive(Debug, Clone)]
struct Level {
    /// Weighted adjacency: `weights[u]` lists `(v, weight)`.
    weights: Vec<Vec<(NodeId, u64)>>,
    /// `fine_to_coarse[fine_node] == coarse_node` (empty for the finest level).
    fine_to_coarse: Vec<NodeId>,
}

impl Level {
    fn node_count(&self) -> usize {
        self.weights.len()
    }

    fn from_graph(graph: &Graph) -> Self {
        let mut weights = vec![Vec::new(); graph.node_count()];
        for e in graph.edges() {
            weights[e.u].push((e.v, 1));
            weights[e.v].push((e.u, 1));
        }
        Level {
            weights,
            fine_to_coarse: Vec::new(),
        }
    }

    /// Heavy-edge matching coarsening. Returns `None` when no further
    /// coarsening is possible (no edges matched).
    fn coarsen(&self) -> Option<Level> {
        let n = self.node_count();
        let mut matched = vec![usize::MAX; n];
        let mut pairs = Vec::new();
        // Visit nodes in order of decreasing total incident weight and match
        // each with its heaviest unmatched neighbour.
        let mut order: Vec<NodeId> = (0..n).collect();
        order.sort_by_key(|&u| {
            std::cmp::Reverse(self.weights[u].iter().map(|&(_, w)| w).sum::<u64>())
        });
        for &u in &order {
            if matched[u] != usize::MAX {
                continue;
            }
            let best = self.weights[u]
                .iter()
                .filter(|&&(v, _)| matched[v] == usize::MAX && v != u)
                .max_by_key(|&&(_, w)| w)
                .map(|&(v, _)| v);
            if let Some(v) = best {
                matched[u] = v;
                matched[v] = u;
                pairs.push((u, v));
            }
        }
        if pairs.is_empty() {
            return None;
        }
        // Assign coarse ids: matched pairs collapse, unmatched nodes carry over.
        let mut fine_to_coarse = vec![usize::MAX; n];
        let mut next = 0;
        for &(u, v) in &pairs {
            fine_to_coarse[u] = next;
            fine_to_coarse[v] = next;
            next += 1;
        }
        for u in 0..n {
            if fine_to_coarse[u] == usize::MAX {
                fine_to_coarse[u] = next;
                next += 1;
            }
        }
        // Aggregate edge weights between coarse nodes. A BTreeMap, not a
        // HashMap: the map is iterated to build the adjacency lists below,
        // and std's per-process hasher randomisation would make the list
        // order — and through placement ties the whole ML-QLS result —
        // nondeterministic across runs.
        let mut weight_map: std::collections::BTreeMap<(NodeId, NodeId), u64> =
            std::collections::BTreeMap::new();
        for u in 0..n {
            for &(v, w) in &self.weights[u] {
                if u < v {
                    let (cu, cv) = (fine_to_coarse[u], fine_to_coarse[v]);
                    if cu != cv {
                        let key = (cu.min(cv), cu.max(cv));
                        *weight_map.entry(key).or_insert(0) += w;
                    }
                }
            }
        }
        let mut weights = vec![Vec::new(); next];
        for ((u, v), w) in weight_map {
            weights[u].push((v, w));
            weights[v].push((u, w));
        }
        Some(Level {
            weights,
            fine_to_coarse,
        })
    }
}

/// ML-QLS-style multilevel layout synthesis tool.
#[derive(Debug, Clone, Default)]
pub struct MultilevelRouter {
    config: MultilevelConfig,
}

impl MultilevelRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelRouter { config }
    }

    /// Computes the multilevel placement (exposed for tests and ablations).
    pub fn place(&self, circuit: &Circuit, arch: &Architecture) -> Mapping {
        let interaction = circuit.interaction_graph();
        let finest = Level::from_graph(&interaction);

        // Build the coarsening hierarchy (finest first).
        let mut hierarchy = vec![finest];
        while hierarchy.last().expect("non-empty").node_count() > self.config.coarsest_size {
            match hierarchy.last().expect("non-empty").coarsen() {
                Some(coarser) => hierarchy.push(coarser),
                None => break,
            }
        }

        // Place the coarsest level: BFS over the weighted graph, assigning
        // each cluster to the free physical qubit closest to its placed
        // neighbours (mirrors `greedy_bfs_placement` but weight-aware).
        let coarsest = hierarchy.last().expect("non-empty");
        let mut assignment = self.place_level(coarsest, arch, None, &[]);

        // Uncoarsen: every finer level starts from its cluster's location.
        for idx in (0..hierarchy.len() - 1).rev() {
            let fine = &hierarchy[idx];
            let coarse_assignment = assignment;
            let fine_to_coarse = &hierarchy[idx + 1].fine_to_coarse;
            assignment = self.place_level(fine, arch, Some(&coarse_assignment), fine_to_coarse);
            self.refine(fine, arch, &mut assignment);
        }

        Mapping::from_prog_to_phys(assignment, arch.num_qubits())
    }

    /// Places one level's nodes onto distinct physical qubits.
    ///
    /// When `coarse_assignment` is given, node `u` prefers physical qubits
    /// close to `coarse_assignment[fine_to_coarse[u]]`.
    fn place_level(
        &self,
        level: &Level,
        arch: &Architecture,
        coarse_assignment: Option<&Vec<NodeId>>,
        fine_to_coarse: &[NodeId],
    ) -> Vec<NodeId> {
        let n = level.node_count();
        let mut order = Vec::with_capacity(n);
        // BFS order over the level graph from the heaviest node, component by
        // component (isolated nodes go last).
        let plain = {
            let mut g = Graph::with_nodes(n);
            for u in 0..n {
                for &(v, _) in &level.weights[u] {
                    if u < v {
                        g.add_edge(u, v);
                    }
                }
            }
            g
        };
        let mut seen = vec![false; n];
        let mut starts: Vec<NodeId> = (0..n).collect();
        starts.sort_by_key(|&u| {
            std::cmp::Reverse(level.weights[u].iter().map(|&(_, w)| w).sum::<u64>())
        });
        for s in starts {
            if seen[s] {
                continue;
            }
            for v in bfs_order(&plain, s) {
                if !seen[v] {
                    seen[v] = true;
                    order.push(v);
                }
            }
        }

        let mut assignment = vec![usize::MAX; n];
        let mut used = vec![false; arch.num_qubits()];
        for &u in &order {
            // One distance row per placed neighbour (and one for the anchor)
            // serves the whole candidate scan below.
            let placed: Vec<(_, u64)> = level.weights[u]
                .iter()
                .filter(|&&(v, _)| assignment[v] != usize::MAX)
                .map(|&(v, w)| (arch.distance_row(assignment[v]), w))
                .collect();
            let anchor_row = coarse_assignment.map(|ca| arch.distance_row(ca[fine_to_coarse[u]]));
            let best = (0..arch.num_qubits())
                .filter(|&p| !used[p])
                .min_by_key(|&p| {
                    let neighbor_cost: u64 = placed.iter().map(|(row, w)| w * row[p] as u64).sum();
                    let anchor_cost = anchor_row.as_ref().map_or(0, |row| row[p] as u64);
                    (
                        neighbor_cost + anchor_cost,
                        arch.num_qubits() - arch.degree(p),
                    )
                })
                .expect("device has enough qubits");
            assignment[u] = best;
            used[best] = true;
        }
        assignment
    }

    /// Pairwise-exchange refinement: repeatedly swap two nodes' physical
    /// locations when it reduces the weighted interaction distance.
    fn refine(&self, level: &Level, arch: &Architecture, assignment: &mut [NodeId]) {
        let n = level.node_count();
        // Point queries, deliberately: the pair sweep below makes `pos` a
        // fresh source almost every call, so fetching a full row per call
        // would evict the sparse oracle's cache on every iteration. Point
        // lookups let the cache settle on the (stable) assignment-side rows
        // via the oracle's symmetric-row check.
        let cost_of = |u: usize, pos: NodeId, assignment: &[NodeId]| -> u64 {
            level.weights[u]
                .iter()
                .map(|&(v, w)| w * arch.distance(pos, assignment[v]) as u64)
                .sum()
        };
        for _ in 0..self.config.refinement_sweeps {
            let mut improved = false;
            for u in 0..n {
                for v in (u + 1)..n {
                    let before = cost_of(u, assignment[u], assignment)
                        + cost_of(v, assignment[v], assignment);
                    let after = cost_of(u, assignment[v], assignment)
                        + cost_of(v, assignment[u], assignment);
                    // Exchanging u and v double-counts their mutual edge the
                    // same way on both sides, so the comparison is fair.
                    if after < before {
                        assignment.swap(u, v);
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
}

/// The multilevel placement pipeline as a kernel
/// [`PlacementStrategy`](crate::kernel::PlacementStrategy): trial 0 runs the
/// full coarsen–place–refine hierarchy, later trials fall back to random
/// restarts like every other strategy. This is how the composed-router
/// construction kit (see [`crate::composed`]) mixes ML-QLS placement with
/// arbitrary routing policies.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultilevelPlacement {
    config: MultilevelConfig,
}

impl MultilevelPlacement {
    /// A placement strategy using the given multilevel tuning knobs (the
    /// seed field is ignored; the hierarchy is deterministic).
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelPlacement { config }
    }
}

impl crate::kernel::PlacementStrategy for MultilevelPlacement {
    fn place(
        &self,
        trial: usize,
        circuit: &Circuit,
        arch: &Architecture,
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> Mapping {
        if trial == 0 {
            MultilevelRouter::new(self.config).place(circuit, arch)
        } else {
            Mapping::random(circuit.num_qubits(), arch.num_qubits(), rng)
        }
    }
}

impl Router for MultilevelRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        crate::kernel::check_fit(circuit, arch)?;
        let placement = self.place(circuit, arch);
        let sabre = SabreRouter::new(SabreConfig::default().with_seed(self.config.seed));
        let mut routed = sabre.route_with_initial_mapping(circuit, arch, &placement)?;
        routed.tool = self.name().to_string();
        Ok(routed)
    }

    fn name(&self) -> &str {
        "ml-qls"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn coarsening_shrinks_the_graph() {
        let circuit = random_circuit(20, 60, 1);
        let level = Level::from_graph(&circuit.interaction_graph());
        let coarser = level.coarsen().expect("edges exist");
        assert!(coarser.node_count() < level.node_count());
    }

    #[test]
    fn coarsening_stops_on_edgeless_graph() {
        let level = Level::from_graph(&Graph::with_nodes(5));
        assert!(level.coarsen().is_none());
    }

    #[test]
    fn placement_is_injective() {
        let arch = devices::sycamore54();
        let circuit = random_circuit(30, 150, 2);
        let mapping = MultilevelRouter::default().place(&circuit, &arch);
        assert!(mapping.is_consistent());
        assert_eq!(mapping.num_program(), 30);
    }

    #[test]
    fn placement_keeps_hot_pairs_close() {
        let arch = devices::grid(4, 4);
        // A line interaction graph should be placed roughly along adjacent qubits.
        let gates: Vec<Gate> = (1..8).map(|i| Gate::cx(i - 1, i)).collect();
        let circuit = Circuit::from_gates(8, gates);
        let mapping = MultilevelRouter::default().place(&circuit, &arch);
        let total: usize = circuit
            .two_qubit_gates()
            .iter()
            .map(|g| {
                let (a, b) = g.qubit_pair().expect("two-qubit");
                arch.distance(mapping.physical(a), mapping.physical(b))
            })
            .sum();
        assert!(total <= 10, "placement scattered a line circuit: {total}");
    }

    #[test]
    fn routes_valid_circuits() {
        let arch = devices::aspen4();
        let circuit = random_circuit(14, 60, 3);
        let routed = MultilevelRouter::default()
            .route(&circuit, &arch)
            .expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        assert_eq!(routed.tool, "ml-qls");
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(3);
        assert!(matches!(
            MultilevelRouter::default()
                .route(&random_circuit(5, 10, 0), &arch)
                .unwrap_err(),
            RouteError::TooManyQubits { .. }
        ));
    }

    #[test]
    fn config_builder() {
        assert_eq!(MultilevelConfig::default().with_seed(4).seed, 4);
        assert_eq!(MultilevelRouter::default().name(), "ml-qls");
    }
}
