//! A t|ket⟩-style greedy distance-directed router.
//!
//! The routing pass follows the spirit of the published t|ket⟩ qubit-routing
//! approach: a structure-aware initial placement followed by a greedy loop
//! that repeatedly applies the SWAP which most reduces the summed distance of
//! the currently blocked gates, with no decay term, no extended-set
//! lookahead beyond the current front, and no random restarts. Its results
//! are valid but markedly less efficient than the SABRE family on large
//! devices, which is the qualitative behaviour the paper reports for t|ket⟩.

use crate::mapping::Mapping;
use crate::placement::greedy_bfs_placement;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DependencyDag, Gate};
use qubikos_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the t|ket⟩-style router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TketConfig {
    /// RNG seed (reserved for placement randomisation; the routing loop is
    /// deterministic).
    pub seed: u64,
    /// Number of greedy SWAPs without progress after which the router falls
    /// back to routing the closest blocked gate along a shortest path.
    pub stall_threshold: usize,
}

impl Default for TketConfig {
    fn default() -> Self {
        TketConfig {
            seed: 0,
            stall_threshold: 16,
        }
    }
}

impl TketConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Greedy distance-directed router in the spirit of t|ket⟩.
#[derive(Debug, Clone, Default)]
pub struct TketRouter {
    config: TketConfig,
}

impl TketRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: TketConfig) -> Self {
        TketRouter { config }
    }
}

impl Router for TketRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        if circuit.num_qubits() > arch.num_qubits() {
            return Err(RouteError::TooManyQubits {
                program: circuit.num_qubits(),
                physical: arch.num_qubits(),
            });
        }
        let initial = greedy_bfs_placement(circuit, arch);
        let mut mapping = initial.clone();
        let dag = DependencyDag::from_circuit(circuit);
        let mut remaining_preds: Vec<usize> =
            (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
        let mut front = dag.front_layer();
        let mut out = Circuit::new(arch.num_qubits());
        let mut stall = 0usize;

        // Single-qubit gates are re-attached exactly as in the SABRE pass.
        let (attached, trailing) = super::sabre::attach_for_router(circuit, &dag);

        while !front.is_empty() {
            let mut executed_any = false;
            let mut next_front = Vec::with_capacity(front.len());
            for &node in &front {
                let (a, b) = dag.gate(node).qubit_pair().expect("two-qubit gate");
                if arch.are_coupled(mapping.physical(a), mapping.physical(b)) {
                    for g in &attached[node] {
                        out.push(g.map_qubits(|q| mapping.physical(q)));
                    }
                    out.push(dag.gate(node).map_qubits(|q| mapping.physical(q)));
                    executed_any = true;
                    for &s in dag.successors(node) {
                        remaining_preds[s] -= 1;
                        if remaining_preds[s] == 0 {
                            next_front.push(s);
                        }
                    }
                } else {
                    next_front.push(node);
                }
            }
            front = next_front;
            if executed_any {
                stall = 0;
                continue;
            }
            if front.is_empty() {
                break;
            }

            if stall >= self.config.stall_threshold {
                // Fallback: walk the closest blocked gate together along a
                // shortest path.
                let &node = front
                    .iter()
                    .min_by_key(|&&n| {
                        let (a, b) = dag.gate(n).qubit_pair().expect("two-qubit gate");
                        arch.distance(mapping.physical(a), mapping.physical(b))
                    })
                    .expect("front is non-empty");
                let (a, b) = dag.gate(node).qubit_pair().expect("two-qubit gate");
                while !arch.are_coupled(mapping.physical(a), mapping.physical(b)) {
                    let pa = mapping.physical(a);
                    let pb = mapping.physical(b);
                    let next = arch
                        .neighbors(pa)
                        .iter()
                        .copied()
                        .min_by_key(|&n| arch.distance(n, pb))
                        .expect("connected architecture");
                    out.push(Gate::swap(pa, next));
                    mapping.apply_swap_physical(pa, next);
                }
                stall = 0;
                continue;
            }

            // Greedy step: the SWAP minimising the summed front distance.
            let (pa, pb) = self.best_swap(&front, &dag, arch, &mapping);
            out.push(Gate::swap(pa, pb));
            mapping.apply_swap_physical(pa, pb);
            stall += 1;
        }

        for gate in &trailing {
            out.push(gate.map_qubits(|q| mapping.physical(q)));
        }

        Ok(RoutedCircuit {
            physical_circuit: out,
            initial_mapping: initial,
            final_mapping: mapping,
            tool: self.name().to_string(),
        })
    }

    fn name(&self) -> &str {
        "tket"
    }
}

impl TketRouter {
    fn best_swap(
        &self,
        front: &[usize],
        dag: &DependencyDag,
        arch: &Architecture,
        mapping: &Mapping,
    ) -> (NodeId, NodeId) {
        let mut active = vec![false; arch.num_qubits()];
        for &node in front {
            let (a, b) = dag.gate(node).qubit_pair().expect("two-qubit gate");
            active[mapping.physical(a)] = true;
            active[mapping.physical(b)] = true;
        }
        let score = |swap: (NodeId, NodeId)| -> usize {
            front
                .iter()
                .map(|&node| {
                    let (a, b) = dag.gate(node).qubit_pair().expect("two-qubit gate");
                    let resolve = |p: NodeId| {
                        if p == swap.0 {
                            swap.1
                        } else if p == swap.1 {
                            swap.0
                        } else {
                            p
                        }
                    };
                    arch.distance(resolve(mapping.physical(a)), resolve(mapping.physical(b)))
                })
                .sum()
        };
        arch.couplers()
            .filter(|e| active[e.u] || active[e.v])
            .map(|e| (e.u, e.v))
            .min_by_key(|&swap| score(swap))
            .expect("blocked front gates always have incident couplers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn routes_valid_circuits_on_grid() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 40, 17);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn routes_valid_circuits_on_aspen() {
        let arch = devices::aspen4();
        let circuit = random_circuit(16, 80, 23);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn executable_circuit_needs_no_swaps() {
        let arch = devices::line(4);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn preserves_single_qubit_gates() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::h(0), Gate::cx(0, 2), Gate::t(0), Gate::x(2)]);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        let ones = routed
            .physical_circuit
            .gates()
            .iter()
            .filter(|g| !g.is_two_qubit())
            .count();
        assert_eq!(ones, 3);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(2);
        let circuit = random_circuit(4, 10, 0);
        assert!(matches!(
            TketRouter::default().route(&circuit, &arch).unwrap_err(),
            RouteError::TooManyQubits { .. }
        ));
    }

    #[test]
    fn config_builder() {
        let config = TketConfig::default().with_seed(7);
        assert_eq!(config.seed, 7);
        assert_eq!(TketRouter::new(config).name(), "tket");
    }
}
