//! A t|ket⟩-style greedy distance-directed router.
//!
//! The routing pass follows the spirit of the published t|ket⟩ qubit-routing
//! approach: a structure-aware initial placement followed by a greedy loop
//! that repeatedly applies the SWAP which most reduces the summed distance of
//! the currently blocked gates, with no decay term, no extended-set
//! lookahead beyond the current front, and no random restarts. Its results
//! are valid but markedly less efficient than the SABRE family on large
//! devices, which is the qualitative behaviour the paper reports for t|ket⟩.
//!
//! The shared machinery — DAG construction, front tracking, incremental
//! front-distance scoring and the greedy loop itself — comes from
//! [`crate::kernel`]; this router is simply the composition of a front-only
//! [`WindowLookahead`], [`NoDecay`](crate::kernel::NoDecay), first-candidate
//! [`QubitIndexTies`] tie-breaking (which reproduces t|ket⟩'s
//! first-integer-minimum selection exactly — see the tie-breaker docs) and
//! greedy-BFS placement, run as a single forward pass.

use crate::kernel::{
    check_fit, run_greedy_pass, GreedyBfsRestarts, GreedyPolicies, GreedyScratch, NoDecay,
    PlacementStrategy, QubitIndexTies, RoutingProblem, WindowLookahead,
};
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::CouplerWeights;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the t|ket⟩-style router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TketConfig {
    /// RNG seed (reserved for placement randomisation; the routing loop is
    /// deterministic).
    pub seed: u64,
    /// Number of greedy SWAPs without progress after which the router falls
    /// back to routing the closest blocked gate along a shortest path.
    pub stall_threshold: usize,
}

impl Default for TketConfig {
    fn default() -> Self {
        TketConfig {
            seed: 0,
            stall_threshold: 16,
        }
    }
}

impl TketConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Greedy distance-directed router in the spirit of t|ket⟩.
#[derive(Debug, Clone, Default)]
pub struct TketRouter {
    config: TketConfig,
}

impl TketRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: TketConfig) -> Self {
        TketRouter { config }
    }
}

impl Router for TketRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let problem = RoutingProblem::forward_only(circuit);
        let lookahead = WindowLookahead::front_only();
        let weights = CouplerWeights::uniform();
        let policies = GreedyPolicies {
            lookahead: &lookahead,
            decay: &NoDecay,
            tie_breaker: &QubitIndexTies,
            weights: &weights,
            stall_threshold: self.config.stall_threshold,
        };
        let mut scratch = GreedyScratch::default();
        // The deterministic tie-breaker and trial-0 placement never draw
        // from the RNG; it exists to satisfy the pass signature.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let initial = GreedyBfsRestarts.place(0, circuit, arch, &mut rng);
        let mut out = Circuit::new(arch.num_qubits());
        let final_mapping = run_greedy_pass(
            problem.forward(),
            arch,
            &policies,
            initial.clone(),
            &mut rng,
            &mut scratch,
            Some(&mut out),
        );

        Ok(RoutedCircuit {
            physical_circuit: out,
            initial_mapping: initial,
            final_mapping,
            tool: self.name().to_string(),
        })
    }

    fn name(&self) -> &str {
        "tket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;
    use rand::Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn routes_valid_circuits_on_grid() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 40, 17);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn routes_valid_circuits_on_aspen() {
        let arch = devices::aspen4();
        let circuit = random_circuit(16, 80, 23);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn executable_circuit_needs_no_swaps() {
        let arch = devices::line(4);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn preserves_single_qubit_gates() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::h(0), Gate::cx(0, 2), Gate::t(0), Gate::x(2)]);
        let routed = TketRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        let ones = routed
            .physical_circuit
            .gates()
            .iter()
            .filter(|g| !g.is_two_qubit())
            .count();
        assert_eq!(ones, 3);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(2);
        let circuit = random_circuit(4, 10, 0);
        assert!(matches!(
            TketRouter::default().route(&circuit, &arch).unwrap_err(),
            RouteError::TooManyQubits { .. }
        ));
    }

    #[test]
    fn config_builder() {
        let config = TketConfig::default().with_seed(7);
        assert_eq!(config.seed, 7);
        assert_eq!(TketRouter::new(config).name(), "tket");
    }
}
