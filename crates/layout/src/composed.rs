//! The router construction kit: routers as named compositions of policies.
//!
//! A [`RouterSpec`] is a small, serializable value describing one point in
//! the routing design space — a search engine ([`SearchSpec`]) plus one
//! choice per policy axis of [`crate::kernel::policy`]: lookahead
//! ([`LookaheadSpec`]), decay ([`DecaySpec`]), tie-breaking
//! ([`TieBreakerSpec`]), placement ([`PlacementSpec`]) and coupler
//! weighting ([`WeightsSpec`]). [`RouterSpec::build`] turns a spec plus an
//! RNG seed into a [`ComposedRouter`] implementing [`Router`].
//!
//! The four paper tools are named compositions — [`RouterSpec::lightsabre`],
//! [`RouterSpec::tket`], [`RouterSpec::ml_qls`], [`RouterSpec::qmap`] — and
//! [`ToolKind::build`](crate::ToolKind::build) is a thin alias over them:
//! each named composition emits a SWAP stream *bit-identical* to the
//! pre-refactor monolithic router (the golden fixtures and a workspace
//! proptest pin this). Everything else in the cross-product is an ablation
//! variant the benchmark harness can enumerate and rank against the
//! known-optimal suite.
//!
//! Every spec has a stable, human-readable [`RouterSpec::id`] such as
//! `g16x3s64.la20w0.5.dec0.001r5.randtie.bfs.uw`; the ablation matrix uses
//! it as the cache namespace, so per-composition results are keyed by
//! composition identity.

use crate::astar::{AStarConfig, AStarRouter};
use crate::kernel::{
    check_fit, run_greedy_pass, AdditiveDecay, DecaySchedule, DistanceRefinedTies,
    GreedyBfsRestarts, GreedyPolicies, GreedyScratch, IdentityPlacement, NoDecay,
    PlacementStrategy, QubitIndexTies, RoutingProblem, SeededRandomTies, TieBreaker,
    WindowLookahead,
};
use crate::multilevel::MultilevelPlacement;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::CouplerWeights;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The lookahead axis of a composition: how far past the blocked front the
/// scorer looks, and how the extra gates are weighted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LookaheadSpec {
    /// Extended-set size (0 = front-only scoring).
    pub window: usize,
    /// Weight of the extended-set term.
    pub extended_set_weight: f64,
    /// Optional per-depth decay across the extended set.
    pub depth_decay: Option<f64>,
}

impl LookaheadSpec {
    /// LightSABRE's published lookahead (20 gates at weight 0.5, uniform).
    pub fn sabre_default() -> Self {
        LookaheadSpec {
            window: 20,
            extended_set_weight: 0.5,
            depth_decay: None,
        }
    }

    /// Front-only scoring — no lookahead.
    pub fn front_only() -> Self {
        LookaheadSpec {
            window: 0,
            extended_set_weight: 0.0,
            depth_decay: None,
        }
    }

    /// The kernel policy this spec describes.
    pub fn policy(&self) -> WindowLookahead {
        WindowLookahead {
            window: self.window,
            extended_set_weight: self.extended_set_weight,
            depth_decay: self.depth_decay,
        }
    }

    fn id_part(&self) -> String {
        if self.window == 0 {
            return "front".to_string();
        }
        let mut s = format!("la{}w{}", self.window, self.extended_set_weight);
        if let Some(d) = self.depth_decay {
            s.push_str(&format!("d{d}"));
        }
        s
    }
}

/// The decay axis: whether recently-swapped qubits are penalised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecaySpec {
    /// No decay; scores are never inflated.
    None,
    /// SABRE-style additive decay.
    Additive {
        /// Additive per-SWAP bump.
        increment: f64,
        /// Decisions between resets.
        reset_interval: usize,
    },
}

impl DecaySpec {
    /// SABRE's published decay (increment 0.001, reset every 5 decisions).
    pub fn sabre_default() -> Self {
        DecaySpec::Additive {
            increment: 0.001,
            reset_interval: 5,
        }
    }

    fn id_part(&self) -> String {
        match self {
            DecaySpec::None => "nodecay".to_string(),
            DecaySpec::Additive {
                increment,
                reset_interval,
            } => format!("dec{increment}r{reset_interval}"),
        }
    }
}

/// The tie-breaking axis: how one SWAP is picked from the exact-tie band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TieBreakerSpec {
    /// Uniform draw from the tie set with the trial's seeded RNG (SABRE).
    SeededRandom,
    /// First tie in coupler order (t|ket⟩'s first-minimum selection).
    QubitIndex,
    /// Deterministic refinement by resulting front distance, then coupler
    /// order.
    DistanceRefined,
}

impl TieBreakerSpec {
    fn id_part(&self) -> &'static str {
        match self {
            TieBreakerSpec::SeededRandom => "randtie",
            TieBreakerSpec::QubitIndex => "idxtie",
            TieBreakerSpec::DistanceRefined => "disttie",
        }
    }
}

/// The placement axis: where each trial's initial mapping comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementSpec {
    /// Structure-aware greedy-BFS placement with random restarts.
    GreedyBfs,
    /// ML-QLS-style multilevel coarsen–place–refine placement.
    Multilevel,
    /// The trivial identity placement (program qubit `q` on physical `q`).
    Identity,
}

impl PlacementSpec {
    fn id_part(&self) -> &'static str {
        match self {
            PlacementSpec::GreedyBfs => "bfs",
            PlacementSpec::Multilevel => "mlp",
            PlacementSpec::Identity => "ident",
        }
    }
}

/// The coupler-weighting axis: how much a SWAP on each edge costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightsSpec {
    /// Every coupler costs exactly the same (the classic cost model; scores
    /// are bitwise identical to a weight-free router).
    Uniform,
    /// Deterministic synthetic fidelity weights in `[1.0, 2.0)` drawn from
    /// a seeded hash of each coupler (see
    /// [`CouplerWeights::fidelity_derived`]).
    Fidelity {
        /// Seed of the synthetic noise model (not the routing seed).
        seed: u64,
    },
}

impl WeightsSpec {
    /// Materialises the weights for a concrete device.
    pub fn build(&self, arch: &Architecture) -> CouplerWeights {
        match *self {
            WeightsSpec::Uniform => CouplerWeights::uniform(),
            WeightsSpec::Fidelity { seed } => {
                CouplerWeights::fidelity_derived(arch.coupling_graph(), seed)
            }
        }
    }

    fn id_part(&self) -> String {
        match self {
            WeightsSpec::Uniform => "uw".to_string(),
            WeightsSpec::Fidelity { seed } => format!("fw{seed}"),
        }
    }
}

/// The search-engine axis: the outer loop the policies plug into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchSpec {
    /// The greedy SWAP-insertion loop ([`run_greedy_pass`]) with
    /// random-restart trials and forward/backward mapping passes — the
    /// SABRE/t|ket⟩ family.
    Greedy {
        /// Random-restart trials (best result wins).
        trials: usize,
        /// Forward/backward mapping passes per trial (1 = forward only).
        mapping_passes: usize,
        /// SWAPs without progress before the release valve fires.
        stall_threshold: usize,
    },
    /// The QMAP-style per-layer A* search. Deterministic given the
    /// placement; the lookahead/decay/tie/weights axes do not apply (the
    /// grid canonicalizes them away).
    AStar {
        /// State-expansion budget per layer.
        max_expansions: usize,
    },
}

impl SearchSpec {
    fn id_part(&self) -> String {
        match *self {
            SearchSpec::Greedy {
                trials,
                mapping_passes,
                stall_threshold,
            } => format!("g{trials}x{mapping_passes}s{stall_threshold}"),
            SearchSpec::AStar { max_expansions } => format!("astar{max_expansions}"),
        }
    }
}

/// One point in the routing design space: a search engine plus one choice
/// per policy axis. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterSpec {
    /// Search engine.
    pub search: SearchSpec,
    /// Lookahead axis.
    pub lookahead: LookaheadSpec,
    /// Decay axis.
    pub decay: DecaySpec,
    /// Tie-breaking axis.
    pub tie_breaker: TieBreakerSpec,
    /// Placement axis.
    pub placement: PlacementSpec,
    /// Coupler-weighting axis.
    pub weights: WeightsSpec,
}

impl RouterSpec {
    /// The LightSABRE composition: 16-trial, 3-pass greedy search with the
    /// published lookahead and decay, seeded-random ties, greedy-BFS
    /// restarts, uniform weights. Bit-identical to
    /// [`SabreRouter`](crate::SabreRouter) with the default config.
    pub fn lightsabre() -> Self {
        RouterSpec {
            search: SearchSpec::Greedy {
                trials: 16,
                mapping_passes: 3,
                stall_threshold: 64,
            },
            lookahead: LookaheadSpec::sabre_default(),
            decay: DecaySpec::sabre_default(),
            tie_breaker: TieBreakerSpec::SeededRandom,
            placement: PlacementSpec::GreedyBfs,
            weights: WeightsSpec::Uniform,
        }
    }

    /// The t|ket⟩-style composition: one front-only greedy pass, no decay,
    /// first-candidate ties, greedy-BFS placement. Bit-identical to
    /// [`TketRouter`](crate::TketRouter) with the default config.
    pub fn tket() -> Self {
        RouterSpec {
            search: SearchSpec::Greedy {
                trials: 1,
                mapping_passes: 1,
                stall_threshold: 16,
            },
            lookahead: LookaheadSpec::front_only(),
            decay: DecaySpec::None,
            tie_breaker: TieBreakerSpec::QubitIndex,
            placement: PlacementSpec::GreedyBfs,
            weights: WeightsSpec::Uniform,
        }
    }

    /// The ML-QLS composition: multilevel placement followed by a single
    /// SABRE-policy routing pass. Bit-identical to
    /// [`MultilevelRouter`](crate::MultilevelRouter) with the default
    /// config.
    pub fn ml_qls() -> Self {
        RouterSpec {
            search: SearchSpec::Greedy {
                trials: 1,
                mapping_passes: 1,
                stall_threshold: 64,
            },
            lookahead: LookaheadSpec::sabre_default(),
            decay: DecaySpec::sabre_default(),
            tie_breaker: TieBreakerSpec::SeededRandom,
            placement: PlacementSpec::Multilevel,
            weights: WeightsSpec::Uniform,
        }
    }

    /// The QMAP composition: per-layer A* from a greedy-BFS placement.
    /// Bit-identical to [`AStarRouter`](crate::AStarRouter) with the
    /// default config.
    pub fn qmap() -> Self {
        RouterSpec {
            search: SearchSpec::AStar {
                max_expansions: 4000,
            },
            lookahead: LookaheadSpec::front_only(),
            decay: DecaySpec::None,
            tie_breaker: TieBreakerSpec::QubitIndex,
            placement: PlacementSpec::GreedyBfs,
            weights: WeightsSpec::Uniform,
        }
    }

    /// Collapses spec distinctions that cannot change routing behaviour, so
    /// the cross-product enumeration dedups equivalent points:
    ///
    /// * the A* search ignores the lookahead/decay/tie/weights axes
    ///   entirely, so they are pinned to their neutral values;
    /// * a zero lookahead window never reads the extended-set weight or
    ///   depth decay;
    /// * an additive decay with increment `0.0` never changes any factor.
    pub fn canonicalized(mut self) -> Self {
        if let SearchSpec::AStar { .. } = self.search {
            self.lookahead = LookaheadSpec::front_only();
            self.decay = DecaySpec::None;
            self.tie_breaker = TieBreakerSpec::QubitIndex;
            self.weights = WeightsSpec::Uniform;
        }
        if self.lookahead.window == 0 {
            self.lookahead = LookaheadSpec::front_only();
        }
        if let DecaySpec::Additive { increment, .. } = self.decay {
            if increment == 0.0 {
                self.decay = DecaySpec::None;
            }
        }
        self
    }

    /// A stable, human-readable identity string, unique per canonical spec
    /// — e.g. `g16x3s64.la20w0.5.dec0.001r5.randtie.bfs.uw`. Contains only
    /// `[a-z0-9.*]`-safe characters, so the ablation matrix can use it
    /// directly as a cache namespace (see `qubikos_engine::JobKey`).
    pub fn id(&self) -> String {
        format!(
            "{}.{}.{}.{}.{}.{}",
            self.search.id_part(),
            self.lookahead.id_part(),
            self.decay.id_part(),
            self.tie_breaker.id_part(),
            self.placement.id_part(),
            self.weights.id_part()
        )
    }

    /// Builds the composed router for this spec, named by [`Self::id`].
    pub fn build(self, seed: u64) -> ComposedRouter {
        let name = self.id();
        self.build_named(seed, name)
    }

    /// Builds the composed router with an explicit display name — how
    /// [`ToolKind::build`](crate::ToolKind::build) keeps the four paper
    /// tools' routed circuits tagged `lightsabre`/`tket`/`ml-qls`/`qmap`
    /// (and their cache entries compatible) while running on the kit.
    pub fn build_named(self, seed: u64, name: impl Into<String>) -> ComposedRouter {
        ComposedRouter {
            spec: self,
            seed,
            name: name.into(),
        }
    }
}

/// A router assembled from a [`RouterSpec`]. See the module docs.
#[derive(Debug, Clone)]
pub struct ComposedRouter {
    spec: RouterSpec,
    seed: u64,
    name: String,
}

impl ComposedRouter {
    /// The spec this router was assembled from.
    pub fn spec(&self) -> &RouterSpec {
        &self.spec
    }

    /// The routing seed (restart mapping draws and tie-breaking).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn route_greedy(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        trials: usize,
        mapping_passes: usize,
        stall_threshold: usize,
    ) -> Result<RoutedCircuit, RouteError> {
        let lookahead = self.spec.lookahead.policy();
        let additive;
        let decay: &dyn DecaySchedule = match self.spec.decay {
            DecaySpec::None => &NoDecay,
            DecaySpec::Additive {
                increment,
                reset_interval,
            } => {
                additive = AdditiveDecay {
                    increment,
                    reset_interval,
                };
                &additive
            }
        };
        let tie_breaker: &dyn TieBreaker = match self.spec.tie_breaker {
            TieBreakerSpec::SeededRandom => &SeededRandomTies,
            TieBreakerSpec::QubitIndex => &QubitIndexTies,
            TieBreakerSpec::DistanceRefined => &DistanceRefinedTies,
        };
        let multilevel;
        let placement: &dyn PlacementStrategy = match self.spec.placement {
            PlacementSpec::GreedyBfs => &GreedyBfsRestarts,
            PlacementSpec::Identity => &IdentityPlacement,
            PlacementSpec::Multilevel => {
                multilevel = MultilevelPlacement::default();
                &multilevel
            }
        };
        let weights = self.spec.weights.build(arch);
        let policies = GreedyPolicies {
            lookahead: &lookahead,
            decay,
            tie_breaker,
            weights: &weights,
            stall_threshold,
        };

        let passes = mapping_passes.max(1);
        // The reversed DAG exists only when a refinement pass will read it,
        // preserving the builds-exactly-what-it-needs guarantee of the
        // pre-refactor routers (2 DAG builds for multi-pass SABRE, 1 for
        // every single-pass composition).
        let problem = if passes > 1 {
            RoutingProblem::bidirectional(circuit)
        } else {
            RoutingProblem::forward_only(circuit)
        };
        let mut scratch = GreedyScratch::default();
        let mut best: Option<RoutedCircuit> = None;

        for trial in 0..trials.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(trial as u64));
            let mut mapping = placement.place(trial, circuit, arch, &mut rng);
            for p in 0..passes.saturating_sub(1) {
                let view = if p % 2 == 0 {
                    problem.forward()
                } else {
                    problem.reversed()
                };
                mapping =
                    run_greedy_pass(view, arch, &policies, mapping, &mut rng, &mut scratch, None);
            }
            let mut physical = Circuit::new(arch.num_qubits());
            let final_mapping = run_greedy_pass(
                problem.forward(),
                arch,
                &policies,
                mapping.clone(),
                &mut rng,
                &mut scratch,
                Some(&mut physical),
            );
            let candidate = RoutedCircuit {
                physical_circuit: physical,
                initial_mapping: mapping,
                final_mapping,
                tool: self.name.clone(),
            };
            if best
                .as_ref()
                .map(|b| candidate.swap_count() < b.swap_count())
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        Ok(best.expect("at least one trial ran"))
    }

    fn route_astar(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        max_expansions: usize,
    ) -> Result<RoutedCircuit, RouteError> {
        let multilevel;
        let placement: &dyn PlacementStrategy = match self.spec.placement {
            PlacementSpec::GreedyBfs => &GreedyBfsRestarts,
            PlacementSpec::Identity => &IdentityPlacement,
            PlacementSpec::Multilevel => {
                multilevel = MultilevelPlacement::default();
                &multilevel
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let initial = placement.place(0, circuit, arch, &mut rng);
        let astar = AStarRouter::new(AStarConfig {
            seed: self.seed,
            max_expansions_per_layer: max_expansions,
        });
        let mut routed = astar.route_with_initial_mapping(circuit, arch, &initial)?;
        routed.tool = self.name.clone();
        Ok(routed)
    }
}

impl Router for ComposedRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        match self.spec.search {
            SearchSpec::Greedy {
                trials,
                mapping_passes,
                stall_threshold,
            } => self.route_greedy(circuit, arch, trials, mapping_passes, stall_threshold),
            SearchSpec::AStar { max_expansions } => self.route_astar(circuit, arch, max_expansions),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::AStarRouter;
    use crate::multilevel::MultilevelRouter;
    use crate::sabre::{SabreConfig, SabreRouter};
    use crate::tket::TketRouter;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;
    use rand::Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn named_composition_ids_are_stable_and_distinct() {
        assert_eq!(
            RouterSpec::lightsabre().id(),
            "g16x3s64.la20w0.5.dec0.001r5.randtie.bfs.uw"
        );
        assert_eq!(
            RouterSpec::tket().id(),
            "g1x1s16.front.nodecay.idxtie.bfs.uw"
        );
        assert_eq!(
            RouterSpec::ml_qls().id(),
            "g1x1s64.la20w0.5.dec0.001r5.randtie.mlp.uw"
        );
        assert_eq!(
            RouterSpec::qmap().id(),
            "astar4000.front.nodecay.idxtie.bfs.uw"
        );
    }

    #[test]
    fn composed_lightsabre_matches_sabre_router() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 5);
        for seed in [0u64, 9] {
            let legacy = SabreRouter::new(SabreConfig::default().with_seed(seed))
                .route(&circuit, &arch)
                .expect("fits");
            let composed = RouterSpec::lightsabre()
                .build_named(seed, "lightsabre")
                .route(&circuit, &arch)
                .expect("fits");
            assert_eq!(legacy.physical_circuit, composed.physical_circuit);
            assert_eq!(legacy.initial_mapping, composed.initial_mapping);
            assert_eq!(legacy.final_mapping, composed.final_mapping);
            assert_eq!(legacy.tool, composed.tool);
        }
    }

    #[test]
    fn composed_tket_matches_tket_router() {
        let arch = devices::aspen4();
        let circuit = random_circuit(12, 50, 23);
        let legacy = TketRouter::default().route(&circuit, &arch).expect("fits");
        let composed = RouterSpec::tket()
            .build_named(0, "tket")
            .route(&circuit, &arch)
            .expect("fits");
        assert_eq!(legacy.physical_circuit, composed.physical_circuit);
        assert_eq!(legacy.tool, composed.tool);
    }

    #[test]
    fn composed_ml_qls_matches_multilevel_router() {
        let arch = devices::aspen4();
        let circuit = random_circuit(14, 60, 3);
        let legacy = MultilevelRouter::default()
            .route(&circuit, &arch)
            .expect("fits");
        let composed = RouterSpec::ml_qls()
            .build_named(0, "ml-qls")
            .route(&circuit, &arch)
            .expect("fits");
        assert_eq!(legacy.physical_circuit, composed.physical_circuit);
        assert_eq!(legacy.initial_mapping, composed.initial_mapping);
        assert_eq!(legacy.tool, composed.tool);
    }

    #[test]
    fn composed_qmap_matches_astar_router() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 30, 31);
        let legacy = AStarRouter::default().route(&circuit, &arch).expect("fits");
        let composed = RouterSpec::qmap()
            .build_named(0, "qmap")
            .route(&circuit, &arch)
            .expect("fits");
        assert_eq!(legacy.physical_circuit, composed.physical_circuit);
        assert_eq!(legacy.tool, composed.tool);
    }

    #[test]
    fn canonicalization_collapses_redundant_axes() {
        let mut spec = RouterSpec::qmap();
        spec.lookahead = LookaheadSpec::sabre_default();
        spec.decay = DecaySpec::sabre_default();
        spec.tie_breaker = TieBreakerSpec::SeededRandom;
        spec.weights = WeightsSpec::Fidelity { seed: 1 };
        assert_eq!(spec.canonicalized(), RouterSpec::qmap());

        let mut zero_window = RouterSpec::tket();
        zero_window.lookahead = LookaheadSpec {
            window: 0,
            extended_set_weight: 0.5,
            depth_decay: Some(0.7),
        };
        assert_eq!(zero_window.canonicalized(), RouterSpec::tket());

        let mut zero_increment = RouterSpec::tket();
        zero_increment.decay = DecaySpec::Additive {
            increment: 0.0,
            reset_interval: 5,
        };
        assert_eq!(zero_increment.canonicalized(), RouterSpec::tket());
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        for spec in [
            RouterSpec::lightsabre(),
            RouterSpec::tket(),
            RouterSpec::ml_qls(),
            RouterSpec::qmap(),
            RouterSpec {
                weights: WeightsSpec::Fidelity { seed: 17 },
                tie_breaker: TieBreakerSpec::DistanceRefined,
                placement: PlacementSpec::Identity,
                ..RouterSpec::lightsabre()
            },
        ] {
            let value = spec.serialize_value();
            let back = RouterSpec::deserialize_value(&value).expect("roundtrip");
            assert_eq!(spec, back, "spec must survive serialization");
        }
    }

    #[test]
    fn fidelity_weighted_composition_routes_validly() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 40, 11);
        let spec = RouterSpec {
            weights: WeightsSpec::Fidelity { seed: 3 },
            ..RouterSpec::lightsabre()
        };
        let routed = spec.build(7).route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        assert_eq!(routed.tool, spec.id());
    }

    #[test]
    fn identity_placement_composition_routes_validly() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 30, 2);
        let spec = RouterSpec {
            placement: PlacementSpec::Identity,
            tie_breaker: TieBreakerSpec::DistanceRefined,
            ..RouterSpec::tket()
        };
        let routed = spec.build(0).route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }
}
