//! Heuristic quantum layout-synthesis (QLS) tools.
//!
//! These are the tools the QUBIKOS benchmark evaluates: given a logical
//! [`Circuit`](qubikos_circuit::Circuit) and an
//! [`Architecture`](qubikos_arch::Architecture), each produces a
//! [`RoutedCircuit`] — an initial mapping from program qubits to physical
//! qubits plus a physical circuit with SWAP gates inserted so that every
//! two-qubit gate acts on coupled qubits.
//!
//! Four routers are provided, mirroring the tools in the paper's evaluation
//! (see DESIGN.md for the substitution notes):
//!
//! * [`SabreRouter`] — SABRE / LightSABRE-style bidirectional-pass router
//!   with basic, lookahead (extended-set) and decay costs and multi-trial
//!   search. This is the strongest heuristic and also the subject of the
//!   paper's §IV-C case study (see [`SabreConfig::lookahead_decay`]).
//! * [`TketRouter`] — a greedy distance-directed router in the spirit of
//!   t|ket⟩'s routing pass.
//! * [`AStarRouter`] — a QMAP-style per-layer A* search over SWAP sequences.
//! * [`MultilevelRouter`] — an ML-QLS-style multilevel placement plus
//!   SABRE-style refinement.
//!
//! All routers implement the [`Router`] trait so the benchmark harness can
//! treat them uniformly, and every result can be checked with
//! [`validate_routing`]. The shared routing machinery — per-call
//! [`RoutingProblem`](kernel::RoutingProblem) construction, front-layer
//! tracking, incremental SWAP scoring and the policy-parameterized greedy
//! loop ([`kernel::policy`]) — lives in the [`kernel`] module; each router
//! module contributes only its tool-specific policy on top.
//!
//! The [`composed`] module is the *router construction kit*: a
//! [`RouterSpec`] composes one choice per policy axis (lookahead, decay,
//! tie-breaking, placement, coupler weights, search engine) into a
//! [`ComposedRouter`], the four paper tools are named compositions, and the
//! benchmark harness enumerates the cross-product as an ablation matrix.
//!
//! # Example
//!
//! ```
//! use qubikos_arch::devices;
//! use qubikos_circuit::{Circuit, Gate};
//! use qubikos_layout::{Router, SabreRouter, validate_routing};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = devices::grid(3, 3);
//! let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 3)]);
//! let routed = SabreRouter::default().route(&circuit, &arch)?;
//! validate_routing(&circuit, &arch, &routed)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod composed;
pub mod kernel;
pub mod mapping;
pub mod multilevel;
pub mod placement;
pub mod result;
pub mod router;
pub mod sabre;
pub mod tket;
pub mod validate;

pub use astar::{AStarConfig, AStarRouter};
pub use composed::{
    ComposedRouter, DecaySpec, LookaheadSpec, PlacementSpec, RouterSpec, SearchSpec,
    TieBreakerSpec, WeightsSpec,
};
pub use kernel::{FrontTracker, RoutingProblem, SwapScorer};
pub use mapping::Mapping;
pub use multilevel::{MultilevelConfig, MultilevelPlacement, MultilevelRouter};
pub use placement::{greedy_bfs_placement, random_placement, vf2_placement};
pub use result::RoutedCircuit;
pub use router::{RouteError, Router, ToolKind, ToolParseError};
pub use sabre::{SabreConfig, SabreRouter};
pub use tket::{TketConfig, TketRouter};
pub use validate::{validate_routing, ValidationError};
