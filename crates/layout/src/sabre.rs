//! SABRE / LightSABRE-style router.
//!
//! This is a from-scratch implementation of the SABRE routing loop (Li,
//! Ding, Xie, ASPLOS 2019) with the LightSABRE refinements the paper's case
//! study discusses: an extended-set lookahead of configurable size and
//! weight, a decay term that discourages thrashing the same qubits, multiple
//! random-restart trials with forward–backward–forward mapping passes, and a
//! release valve that forces progress when the heuristic stalls.
//!
//! The routing machinery itself — dependency DAG construction, front-layer
//! tracking, extended-set BFS and incremental SWAP scoring — lives in
//! [`crate::kernel`]; this module contributes only the SABRE-specific
//! policy: decay factors, the release valve, and the trial/pass search
//! loop. One [`RoutingProblem`] (forward + reversed DAG) is built per
//! `route` call and shared by **all** trials and mapping passes, and the
//! intermediate refinement passes skip physical-circuit emission entirely
//! (only their final mapping is consumed).
//!
//! The §IV-C case study of the paper attributes a suboptimal LightSABRE
//! choice to the *uniform* weighting of the extended set and suggests adding
//! a decay factor to the lookahead cost; [`SabreConfig::lookahead_decay`]
//! implements exactly that proposal so the ablation in the benchmark harness
//! can reproduce the analysis.

use crate::kernel::{
    check_fit, force_adjacent, FrontTracker, ProblemView, RoutingProblem, ScoreParams, SwapScorer,
};
use crate::mapping::Mapping;
use crate::placement::greedy_bfs_placement;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, Gate};
use qubikos_graph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the SABRE-style router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SabreConfig {
    /// Number of random-restart trials; the best (fewest-SWAP) result wins.
    /// Qiskit's LightSABRE default is 1000 trials in the paper's experiments;
    /// the default here is smaller to keep the full benchmark harness fast,
    /// and the harness raises it for the headline runs.
    pub trials: usize,
    /// RNG seed for mapping restarts and tie-breaking.
    pub seed: u64,
    /// Number of look-ahead gates in the extended set (Qiskit default: 20).
    pub extended_set_size: usize,
    /// Weight of the extended-set term in the cost (Qiskit default: 0.5).
    pub extended_set_weight: f64,
    /// Additive decay applied to a qubit's decay factor each time it is
    /// swapped; discourages repeatedly swapping the same pair.
    pub decay_increment: f64,
    /// Number of routing decisions after which decay factors reset.
    pub decay_reset_interval: usize,
    /// Optional decay applied across the extended set so that gates further
    /// from the execution front weigh less: gate `i` of the extended set is
    /// weighted `lookahead_decay^i`. `None` reproduces Qiskit's uniform
    /// weighting; `Some(d)` with `d < 1` is the improvement suggested by the
    /// paper's case study.
    pub lookahead_decay: Option<f64>,
    /// Number of consecutive SWAPs without executing any gate after which the
    /// release valve forces the closest front gate to completion along a
    /// shortest path.
    pub release_valve_threshold: usize,
    /// Number of forward/backward mapping-improvement passes per trial
    /// (1 = forward only, 3 = the canonical forward–backward–forward SABRE).
    pub mapping_passes: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            trials: 16,
            seed: 0,
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_increment: 0.001,
            decay_reset_interval: 5,
            lookahead_decay: None,
            release_valve_threshold: 64,
            mapping_passes: 3,
        }
    }
}

impl SabreConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Returns the config with the case-study lookahead decay enabled.
    pub fn with_lookahead_decay(mut self, decay: f64) -> Self {
        self.lookahead_decay = Some(decay);
        self
    }

    fn score_params(&self) -> ScoreParams {
        ScoreParams {
            extended_set_weight: self.extended_set_weight,
            lookahead_decay: self.lookahead_decay,
        }
    }
}

/// SABRE / LightSABRE-style layout synthesis tool.
#[derive(Debug, Clone, Default)]
pub struct SabreRouter {
    config: SabreConfig,
}

impl SabreRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: SabreConfig) -> Self {
        SabreRouter { config }
    }

    /// The router's configuration.
    pub fn config(&self) -> &SabreConfig {
        &self.config
    }

    /// Routes `circuit` with a caller-supplied initial mapping, skipping the
    /// mapping-search trials entirely. This is how standalone *routers* are
    /// evaluated (paper §IV-C): QUBIKOS supplies the known-optimal initial
    /// mapping and any excess SWAPs are attributable to routing alone.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::TooManyQubits`] if the circuit does not fit.
    pub fn route_with_initial_mapping(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        initial: &Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let problem = RoutingProblem::forward_only(circuit);
        let mut scratch = SabreScratch::default();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut physical = Circuit::new(arch.num_qubits());
        let final_mapping = run_pass(
            problem.forward(),
            arch,
            &self.config,
            initial.clone(),
            &mut rng,
            &mut scratch,
            Some(&mut physical),
        );
        Ok(RoutedCircuit {
            physical_circuit: physical,
            initial_mapping: initial.clone(),
            final_mapping,
            tool: self.name().to_string(),
        })
    }
}

impl Router for SabreRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let config = &self.config;
        // Forward and reversed DAGs are built exactly once here and shared
        // by every trial and every mapping pass below.
        let problem = RoutingProblem::bidirectional(circuit);
        let mut scratch = SabreScratch::default();
        let mut best: Option<RoutedCircuit> = None;

        for trial in 0..config.trials.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(trial as u64));
            // Trial 0 starts from the structure-aware greedy placement, the
            // rest from random placements (the SABRE random-restart scheme).
            let mut mapping = if trial == 0 {
                greedy_bfs_placement(circuit, arch)
            } else {
                Mapping::random(circuit.num_qubits(), arch.num_qubits(), &mut rng)
            };

            // Forward/backward passes refine the initial mapping: the final
            // mapping of each pass seeds the next pass on the reversed
            // circuit, converging towards a mapping that suits both ends.
            // Only the final mapping of a refinement pass is consumed, so
            // these passes skip physical-circuit emission.
            let passes = config.mapping_passes.max(1);
            for p in 0..passes.saturating_sub(1) {
                let view = if p % 2 == 0 {
                    problem.forward()
                } else {
                    problem.reversed()
                };
                mapping = run_pass(view, arch, config, mapping, &mut rng, &mut scratch, None);
            }
            // If an even number of refinement passes was run the mapping now
            // describes the reversed circuit's start, which is exactly the
            // forward circuit's best-known start as well.
            let mut physical = Circuit::new(arch.num_qubits());
            let final_mapping = run_pass(
                problem.forward(),
                arch,
                config,
                mapping.clone(),
                &mut rng,
                &mut scratch,
                Some(&mut physical),
            );
            let candidate = RoutedCircuit {
                physical_circuit: physical,
                initial_mapping: mapping,
                final_mapping,
                tool: self.name().to_string(),
            };
            if best
                .as_ref()
                .map(|b| candidate.swap_count() < b.swap_count())
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        Ok(best.expect("at least one trial ran"))
    }

    fn name(&self) -> &str {
        "lightsabre"
    }
}

/// Kernel state reused across every pass and trial of one route call.
#[derive(Debug, Clone, Default)]
struct SabreScratch {
    tracker: FrontTracker,
    scorer: SwapScorer,
    candidates: Vec<(NodeId, NodeId)>,
    ties: Vec<(NodeId, NodeId)>,
    decay: Vec<f64>,
}

/// One SABRE routing pass over `view` from `mapping`; returns the final
/// mapping. When `out` is `Some`, the physical circuit (attached
/// single-qubit gates, two-qubit gates, SWAPs, trailing gates) is emitted
/// into it; refinement passes pass `None` and skip emission entirely.
fn run_pass(
    view: &ProblemView,
    arch: &Architecture,
    config: &SabreConfig,
    mut mapping: Mapping,
    rng: &mut ChaCha8Rng,
    scratch: &mut SabreScratch,
    mut out: Option<&mut Circuit>,
) -> Mapping {
    let dag = view.dag();
    let params = config.score_params();
    scratch.tracker.reset(dag);
    scratch.decay.clear();
    scratch.decay.resize(arch.num_qubits(), 1.0);
    let mut decisions_since_reset = 0usize;
    let mut swaps_since_progress = 0usize;
    // The scorer snapshot is valid until the front changes or the mapping
    // moves without the scorer seeing it (release valve).
    let mut scorer_ready = false;

    while !scratch.tracker.is_done() {
        // Execute every front gate whose qubits are adjacent.
        let out_ref = &mut out;
        let executed_any = scratch.tracker.advance(
            dag,
            |node| {
                let (a, b) = dag.qubit_pair(node);
                arch.are_coupled(mapping.physical(a), mapping.physical(b))
            },
            |node| {
                if let Some(out) = out_ref.as_deref_mut() {
                    view.emit(node, &mapping, out);
                }
            },
        );
        if executed_any {
            swaps_since_progress = 0;
            scratch.decay.iter_mut().for_each(|d| *d = 1.0);
            decisions_since_reset = 0;
            scorer_ready = false;
            continue;
        }
        if scratch.tracker.is_done() {
            break;
        }

        // Release valve: force the closest front gate through if the
        // heuristic has been spinning without progress.
        if swaps_since_progress >= config.release_valve_threshold {
            force_closest_gate(view, arch, &mut mapping, &mut out, scratch);
            swaps_since_progress = 0;
            scorer_ready = false;
            continue;
        }

        if !scorer_ready {
            scratch
                .tracker
                .compute_extended_set(dag, config.extended_set_size);
            scratch.scorer.prepare(
                scratch.tracker.front(),
                scratch.tracker.extended(),
                dag,
                &mapping,
                arch,
                &params,
            );
            scorer_ready = true;
        }

        // Score candidate SWAPs and apply the best one (ties broken at
        // random, exactly as before the kernel).
        scratch
            .scorer
            .candidates_into(arch, &mut scratch.candidates);
        debug_assert!(
            !scratch.candidates.is_empty(),
            "front gates always have candidate swaps"
        );
        // On landmark-backed devices, discard candidates whose bound-side
        // score provably cannot reach the winner's tie band; the exact scan
        // below then only pays for plausible candidates. A no-op on
        // dense/sparse oracles, and bit-identical either way — the decayed
        // scores the bounds bracket are exactly the scores compared below.
        {
            let SabreScratch {
                scorer,
                candidates,
                decay,
                ..
            } = &mut *scratch;
            scorer.prune_candidates(candidates, arch, &params, |(pa, pb)| {
                decay[pa].max(decay[pb])
            });
        }
        let mut best_score = f64::INFINITY;
        scratch.ties.clear();
        for i in 0..scratch.candidates.len() {
            let (pa, pb) = scratch.candidates[i];
            let decay_factor = scratch.decay[pa].max(scratch.decay[pb]);
            // Reuse the decayed score when the prune pass already computed
            // it exactly (bitwise-identical float pipeline), sparing the
            // rescan; candidates the bounds only bracketed pay the exact
            // scan here.
            let score = match scratch.scorer.pruned_score(i) {
                Some(score) => score,
                None => decay_factor * scratch.scorer.swap_cost((pa, pb), arch, &params),
            };
            if score < best_score - 1e-12 {
                best_score = score;
                scratch.ties.clear();
                scratch.ties.push((pa, pb));
            } else if (score - best_score).abs() <= 1e-12 {
                scratch.ties.push((pa, pb));
            }
        }
        let chosen = *scratch.ties.choose(rng).expect("non-empty candidate set");
        if let Some(out) = out.as_deref_mut() {
            out.push(Gate::swap(chosen.0, chosen.1));
        }
        mapping.apply_swap_physical(chosen.0, chosen.1);
        scratch.scorer.apply(chosen, arch);
        scratch.decay[chosen.0] += config.decay_increment;
        scratch.decay[chosen.1] += config.decay_increment;
        decisions_since_reset += 1;
        swaps_since_progress += 1;
        if decisions_since_reset >= config.decay_reset_interval {
            scratch.decay.iter_mut().for_each(|d| *d = 1.0);
            decisions_since_reset = 0;
        }
    }

    // Emit trailing single-qubit gates under the final mapping.
    if let Some(out) = out {
        view.emit_trailing(&mapping, out);
    }
    mapping
}

/// Forces the front gate whose qubits are closest together to execute by
/// swapping one qubit along a shortest path towards the other. The gate
/// itself executes on the next main-loop iteration.
fn force_closest_gate(
    view: &ProblemView,
    arch: &Architecture,
    mapping: &mut Mapping,
    out: &mut Option<&mut Circuit>,
    scratch: &SabreScratch,
) {
    let dag = view.dag();
    let &node = scratch
        .tracker
        .front()
        .iter()
        .min_by_key(|&&n| {
            let (a, b) = dag.qubit_pair(n);
            arch.distance(mapping.physical(a), mapping.physical(b))
        })
        .expect("front is non-empty");
    let (a, b) = dag.qubit_pair(node);
    force_adjacent(arch, mapping, a, b, |u, v| {
        if let Some(out) = out.as_deref_mut() {
            out.push(Gate::swap(u, v));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::dag_builds_on_this_thread;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use rand::Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn routes_trivially_executable_circuit_without_swaps() {
        let arch = devices::line(4);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn routes_random_circuit_on_grid_validly() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 40, 11);
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn routes_on_sparse_heavy_hex() {
        let arch = devices::rochester53();
        let circuit = random_circuit(20, 60, 3);
        let router = SabreRouter::new(SabreConfig::default().with_trials(2));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn preserves_single_qubit_gates() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::h(0),
                Gate::cx(0, 2),
                Gate::t(2),
                Gate::cx(0, 1),
                Gate::z(1),
            ],
        );
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        let ones = routed
            .physical_circuit
            .gates()
            .iter()
            .filter(|g| !g.is_two_qubit())
            .count();
        assert_eq!(ones, 3, "all single-qubit gates must be re-emitted");
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(3);
        let circuit = random_circuit(5, 10, 0);
        let err = SabreRouter::default().route(&circuit, &arch).unwrap_err();
        assert!(matches!(err, RouteError::TooManyQubits { .. }));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 5);
        let router = SabreRouter::new(SabreConfig::default().with_trials(3).with_seed(9));
        let a = router.route(&circuit, &arch).expect("fits");
        let b = router.route(&circuit, &arch).expect("fits");
        assert_eq!(a.physical_circuit, b.physical_circuit);
        assert_eq!(a.initial_mapping, b.initial_mapping);
    }

    #[test]
    fn more_trials_never_hurt() {
        let arch = devices::grid(4, 4);
        let circuit = random_circuit(12, 60, 21);
        let few = SabreRouter::new(SabreConfig::default().with_trials(1).with_seed(1))
            .route(&circuit, &arch)
            .expect("fits");
        let many = SabreRouter::new(SabreConfig::default().with_trials(12).with_seed(1))
            .route(&circuit, &arch)
            .expect("fits");
        assert!(many.swap_count() <= few.swap_count());
    }

    #[test]
    fn route_with_initial_mapping_keeps_the_mapping() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(6, 20, 2);
        let initial = Mapping::from_prog_to_phys(vec![0, 1, 2, 3, 4, 5], 9);
        let router = SabreRouter::default();
        let routed = router
            .route_with_initial_mapping(&circuit, &arch, &initial)
            .expect("fits");
        assert_eq!(routed.initial_mapping, initial);
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn lookahead_decay_config_builder() {
        let config = SabreConfig::default().with_lookahead_decay(0.8);
        assert_eq!(config.lookahead_decay, Some(0.8));
        let router = SabreRouter::new(config);
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 8);
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn zero_extended_set_still_routes() {
        let mut config = SabreConfig::default().with_trials(2);
        config.extended_set_size = 0;
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 25, 13);
        let routed = SabreRouter::new(config)
            .route(&circuit, &arch)
            .expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    /// The builds-DAGs-once guarantee: a full multi-trial, multi-pass route
    /// call constructs exactly two dependency DAGs (forward + reversed),
    /// never one per trial or per pass.
    #[test]
    fn route_builds_each_dag_at_most_once() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 4);
        let router = SabreRouter::new(SabreConfig::default().with_trials(5));
        assert_eq!(router.config().mapping_passes, 3);
        let before = dag_builds_on_this_thread();
        let _ = router.route(&circuit, &arch).expect("fits");
        assert_eq!(
            dag_builds_on_this_thread() - before,
            2,
            "route must build exactly the forward and reversed DAGs once each"
        );
        // A single-pass route with a fixed mapping needs only the forward DAG.
        let initial = Mapping::from_prog_to_phys((0..7).collect(), 9);
        let before = dag_builds_on_this_thread();
        let _ = router
            .route_with_initial_mapping(&circuit, &arch, &initial)
            .expect("fits");
        assert_eq!(dag_builds_on_this_thread() - before, 1);
    }

    #[test]
    fn tool_name_is_stable() {
        assert_eq!(SabreRouter::default().name(), "lightsabre")
    }
}
