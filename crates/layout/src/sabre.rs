//! SABRE / LightSABRE-style router.
//!
//! This is a from-scratch implementation of the SABRE routing loop (Li,
//! Ding, Xie, ASPLOS 2019) with the LightSABRE refinements the paper's case
//! study discusses: an extended-set lookahead of configurable size and
//! weight, a decay term that discourages thrashing the same qubits, multiple
//! random-restart trials with forward–backward–forward mapping passes, and a
//! release valve that forces progress when the heuristic stalls.
//!
//! The §IV-C case study of the paper attributes a suboptimal LightSABRE
//! choice to the *uniform* weighting of the extended set and suggests adding
//! a decay factor to the lookahead cost; [`SabreConfig::lookahead_decay`]
//! implements exactly that proposal so the ablation in the benchmark harness
//! can reproduce the analysis.

use crate::mapping::Mapping;
use crate::placement::greedy_bfs_placement;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DependencyDag, Gate};
use qubikos_graph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the SABRE-style router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SabreConfig {
    /// Number of random-restart trials; the best (fewest-SWAP) result wins.
    /// Qiskit's LightSABRE default is 1000 trials in the paper's experiments;
    /// the default here is smaller to keep the full benchmark harness fast,
    /// and the harness raises it for the headline runs.
    pub trials: usize,
    /// RNG seed for mapping restarts and tie-breaking.
    pub seed: u64,
    /// Number of look-ahead gates in the extended set (Qiskit default: 20).
    pub extended_set_size: usize,
    /// Weight of the extended-set term in the cost (Qiskit default: 0.5).
    pub extended_set_weight: f64,
    /// Additive decay applied to a qubit's decay factor each time it is
    /// swapped; discourages repeatedly swapping the same pair.
    pub decay_increment: f64,
    /// Number of routing decisions after which decay factors reset.
    pub decay_reset_interval: usize,
    /// Optional decay applied across the extended set so that gates further
    /// from the execution front weigh less: gate `i` of the extended set is
    /// weighted `lookahead_decay^i`. `None` reproduces Qiskit's uniform
    /// weighting; `Some(d)` with `d < 1` is the improvement suggested by the
    /// paper's case study.
    pub lookahead_decay: Option<f64>,
    /// Number of consecutive SWAPs without executing any gate after which the
    /// release valve forces the closest front gate to completion along a
    /// shortest path.
    pub release_valve_threshold: usize,
    /// Number of forward/backward mapping-improvement passes per trial
    /// (1 = forward only, 3 = the canonical forward–backward–forward SABRE).
    pub mapping_passes: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            trials: 16,
            seed: 0,
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_increment: 0.001,
            decay_reset_interval: 5,
            lookahead_decay: None,
            release_valve_threshold: 64,
            mapping_passes: 3,
        }
    }
}

impl SabreConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Returns the config with the case-study lookahead decay enabled.
    pub fn with_lookahead_decay(mut self, decay: f64) -> Self {
        self.lookahead_decay = Some(decay);
        self
    }
}

/// SABRE / LightSABRE-style layout synthesis tool.
#[derive(Debug, Clone, Default)]
pub struct SabreRouter {
    config: SabreConfig,
}

impl SabreRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: SabreConfig) -> Self {
        SabreRouter { config }
    }

    /// The router's configuration.
    pub fn config(&self) -> &SabreConfig {
        &self.config
    }

    /// Routes `circuit` with a caller-supplied initial mapping, skipping the
    /// mapping-search trials entirely. This is how standalone *routers* are
    /// evaluated (paper §IV-C): QUBIKOS supplies the known-optimal initial
    /// mapping and any excess SWAPs are attributable to routing alone.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::TooManyQubits`] if the circuit does not fit.
    pub fn route_with_initial_mapping(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        initial: &Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let pass = RoutingPass::new(circuit, arch, &self.config);
        let (physical, final_mapping) = pass.run(initial.clone(), &mut rng);
        Ok(RoutedCircuit {
            physical_circuit: physical,
            initial_mapping: initial.clone(),
            final_mapping,
            tool: self.name().to_string(),
        })
    }
}

impl Router for SabreRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let config = &self.config;
        let reversed = reversed_circuit(circuit);
        let mut best: Option<RoutedCircuit> = None;

        for trial in 0..config.trials.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(trial as u64));
            // Trial 0 starts from the structure-aware greedy placement, the
            // rest from random placements (the SABRE random-restart scheme).
            let mut mapping = if trial == 0 {
                greedy_bfs_placement(circuit, arch)
            } else {
                Mapping::random(circuit.num_qubits(), arch.num_qubits(), &mut rng)
            };

            // Forward/backward passes refine the initial mapping: the final
            // mapping of each pass seeds the next pass on the reversed
            // circuit, converging towards a mapping that suits both ends.
            let passes = config.mapping_passes.max(1);
            for p in 0..passes.saturating_sub(1) {
                let source = if p % 2 == 0 { circuit } else { &reversed };
                let pass = RoutingPass::new(source, arch, config);
                let (_, final_mapping) = pass.run(mapping.clone(), &mut rng);
                mapping = final_mapping;
            }
            // If an even number of refinement passes was run the mapping now
            // describes the reversed circuit's start, which is exactly the
            // forward circuit's best-known start as well.
            let pass = RoutingPass::new(circuit, arch, config);
            let (physical, final_mapping) = pass.run(mapping.clone(), &mut rng);
            let candidate = RoutedCircuit {
                physical_circuit: physical,
                initial_mapping: mapping,
                final_mapping,
                tool: self.name().to_string(),
            };
            if best
                .as_ref()
                .map(|b| candidate.swap_count() < b.swap_count())
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        Ok(best.expect("at least one trial ran"))
    }

    fn name(&self) -> &str {
        "lightsabre"
    }
}

fn check_fit(circuit: &Circuit, arch: &Architecture) -> Result<(), RouteError> {
    if circuit.num_qubits() > arch.num_qubits() {
        Err(RouteError::TooManyQubits {
            program: circuit.num_qubits(),
            physical: arch.num_qubits(),
        })
    } else {
        Ok(())
    }
}

/// The circuit with its gate order reversed (used by the backward mapping passes).
fn reversed_circuit(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    gates.reverse();
    Circuit::from_gates(circuit.num_qubits(), gates)
}

/// One SABRE routing pass over a fixed circuit with a fixed starting mapping.
struct RoutingPass<'a> {
    arch: &'a Architecture,
    config: &'a SabreConfig,
    dag: DependencyDag,
    /// Single-qubit gates that must be emitted immediately before each DAG node.
    attached: Vec<Vec<Gate>>,
    /// Single-qubit gates after the last two-qubit gate on their qubit.
    trailing: Vec<Gate>,
}

impl<'a> RoutingPass<'a> {
    fn new(circuit: &'a Circuit, arch: &'a Architecture, config: &'a SabreConfig) -> Self {
        let dag = DependencyDag::from_circuit(circuit);
        let (attached, trailing) = attach_single_qubit_gates(circuit, &dag);
        RoutingPass {
            arch,
            config,
            dag,
            attached,
            trailing,
        }
    }

    /// Runs the pass, returning the physical circuit and the final mapping.
    fn run(&self, mut mapping: Mapping, rng: &mut ChaCha8Rng) -> (Circuit, Mapping) {
        let dag = &self.dag;
        let mut out = Circuit::new(self.arch.num_qubits());
        let mut remaining_preds: Vec<usize> =
            (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
        let mut front: Vec<usize> = dag.front_layer();
        let mut decay = vec![1.0f64; self.arch.num_qubits()];
        let mut decisions_since_reset = 0usize;
        let mut swaps_since_progress = 0usize;

        while !front.is_empty() {
            // Execute every front gate whose qubits are adjacent.
            let mut executed_any = false;
            let mut next_front = Vec::with_capacity(front.len());
            for &node in &front {
                let (a, b) = dag.gate(node).qubit_pair().expect("two-qubit gate");
                let (pa, pb) = (mapping.physical(a), mapping.physical(b));
                if self.arch.are_coupled(pa, pb) {
                    self.emit_gate(node, &mapping, &mut out);
                    executed_any = true;
                    for &s in dag.successors(node) {
                        remaining_preds[s] -= 1;
                        if remaining_preds[s] == 0 {
                            next_front.push(s);
                        }
                    }
                } else {
                    next_front.push(node);
                }
            }
            front = next_front;
            if executed_any {
                swaps_since_progress = 0;
                decay.iter_mut().for_each(|d| *d = 1.0);
                decisions_since_reset = 0;
                continue;
            }
            if front.is_empty() {
                break;
            }

            // Release valve: force the closest front gate through if the
            // heuristic has been spinning without progress.
            if swaps_since_progress >= self.config.release_valve_threshold {
                self.force_closest_gate(&front, &mut mapping, &mut out);
                swaps_since_progress = 0;
                continue;
            }

            // Score candidate SWAPs and apply the best one.
            let extended = self.extended_set(&front, &remaining_preds);
            let candidates = self.candidate_swaps(&front, &mapping);
            let chosen = self.pick_swap(&candidates, &front, &extended, &mapping, &decay, rng);
            out.push(Gate::swap(chosen.0, chosen.1));
            mapping.apply_swap_physical(chosen.0, chosen.1);
            decay[chosen.0] += self.config.decay_increment;
            decay[chosen.1] += self.config.decay_increment;
            decisions_since_reset += 1;
            swaps_since_progress += 1;
            if decisions_since_reset >= self.config.decay_reset_interval {
                decay.iter_mut().for_each(|d| *d = 1.0);
                decisions_since_reset = 0;
            }
        }

        // Emit trailing single-qubit gates under the final mapping.
        for gate in &self.trailing {
            out.push(gate.map_qubits(|q| mapping.physical(q)));
        }
        (out, mapping)
    }

    /// Emits a DAG node's attached single-qubit gates followed by the
    /// two-qubit gate itself, all translated to physical qubits.
    fn emit_gate(&self, node: usize, mapping: &Mapping, out: &mut Circuit) {
        for gate in &self.attached[node] {
            out.push(gate.map_qubits(|q| mapping.physical(q)));
        }
        let gate = self.dag.gate(node);
        out.push(gate.map_qubits(|q| mapping.physical(q)));
    }

    /// Collects up to `extended_set_size` gates reachable from the front
    /// layer, in BFS order over the DAG (the LightSABRE extended set).
    fn extended_set(&self, front: &[usize], remaining_preds: &[usize]) -> Vec<usize> {
        let limit = self.config.extended_set_size;
        let mut extended = Vec::with_capacity(limit);
        if limit == 0 {
            return extended;
        }
        let mut preds = remaining_preds.to_vec();
        let mut queue: std::collections::VecDeque<usize> = front.iter().copied().collect();
        let mut seen = vec![false; self.dag.len()];
        for &f in front {
            seen[f] = true;
        }
        while let Some(node) = queue.pop_front() {
            for &s in self.dag.successors(node) {
                preds[s] = preds[s].saturating_sub(1);
                if !seen[s] && preds[s] == 0 {
                    seen[s] = true;
                    extended.push(s);
                    if extended.len() >= limit {
                        return extended;
                    }
                    queue.push_back(s);
                }
            }
        }
        extended
    }

    /// Candidate SWAPs: coupler edges incident to a physical qubit that
    /// currently hosts a qubit of some front-layer gate.
    fn candidate_swaps(&self, front: &[usize], mapping: &Mapping) -> Vec<(NodeId, NodeId)> {
        let mut active = vec![false; self.arch.num_qubits()];
        for &node in front {
            let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
            active[mapping.physical(a)] = true;
            active[mapping.physical(b)] = true;
        }
        let mut candidates = Vec::new();
        for edge in self.arch.couplers() {
            if active[edge.u] || active[edge.v] {
                candidates.push((edge.u, edge.v));
            }
        }
        candidates
    }

    /// Scores every candidate SWAP and returns the cheapest (ties broken at random).
    fn pick_swap(
        &self,
        candidates: &[(NodeId, NodeId)],
        front: &[usize],
        extended: &[usize],
        mapping: &Mapping,
        decay: &[f64],
        rng: &mut ChaCha8Rng,
    ) -> (NodeId, NodeId) {
        debug_assert!(
            !candidates.is_empty(),
            "front gates always have candidate swaps"
        );
        let mut best_score = f64::INFINITY;
        let mut best: Vec<(NodeId, NodeId)> = Vec::new();
        for &(pa, pb) in candidates {
            let score = self.swap_score((pa, pb), front, extended, mapping, decay);
            if score < best_score - 1e-12 {
                best_score = score;
                best.clear();
                best.push((pa, pb));
            } else if (score - best_score).abs() <= 1e-12 {
                best.push((pa, pb));
            }
        }
        *best.choose(rng).expect("non-empty candidate set")
    }

    /// The LightSABRE cost of applying one SWAP: basic front-layer distance
    /// plus weighted extended-set distance, scaled by the decay factors of
    /// the swapped qubits.
    fn swap_score(
        &self,
        swap: (NodeId, NodeId),
        front: &[usize],
        extended: &[usize],
        mapping: &Mapping,
        decay: &[f64],
    ) -> f64 {
        let resolve = |p: NodeId| -> NodeId {
            if p == swap.0 {
                swap.1
            } else if p == swap.1 {
                swap.0
            } else {
                p
            }
        };
        let gate_distance = |node: usize| -> f64 {
            let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
            let pa = resolve(mapping.physical(a));
            let pb = resolve(mapping.physical(b));
            self.arch.distance(pa, pb) as f64
        };

        let basic: f64 = front.iter().map(|&n| gate_distance(n)).sum::<f64>() / front.len() as f64;
        let lookahead = if extended.is_empty() {
            0.0
        } else {
            let (sum, weight_sum) =
                extended
                    .iter()
                    .enumerate()
                    .fold((0.0f64, 0.0f64), |(sum, weights), (i, &n)| {
                        let w = match self.config.lookahead_decay {
                            Some(d) => d.powi(i as i32),
                            None => 1.0,
                        };
                        (sum + w * gate_distance(n), weights + w)
                    });
            self.config.extended_set_weight * sum / weight_sum
        };
        let decay_factor = decay[swap.0].max(decay[swap.1]);
        decay_factor * (basic + lookahead)
    }

    /// Forces the front gate whose qubits are closest together to execute by
    /// swapping one qubit along a shortest path towards the other.
    fn force_closest_gate(&self, front: &[usize], mapping: &mut Mapping, out: &mut Circuit) {
        let &node = front
            .iter()
            .min_by_key(|&&n| {
                let (a, b) = self.dag.gate(n).qubit_pair().expect("two-qubit gate");
                self.arch.distance(mapping.physical(a), mapping.physical(b))
            })
            .expect("front is non-empty");
        let (a, b) = self.dag.gate(node).qubit_pair().expect("two-qubit gate");
        // Walk a shortest path from a's location towards b's location,
        // swapping a forward until the two are adjacent.
        loop {
            let pa = mapping.physical(a);
            let pb = mapping.physical(b);
            if self.arch.are_coupled(pa, pb) {
                break;
            }
            let next = self
                .arch
                .neighbors(pa)
                .iter()
                .copied()
                .min_by_key(|&n| self.arch.distance(n, pb))
                .expect("connected architecture");
            out.push(Gate::swap(pa, next));
            mapping.apply_swap_physical(pa, next);
        }
        // The gate itself executes on the next main-loop iteration.
    }
}

/// Shared helper for the other routers in this crate: see
/// [`attach_single_qubit_gates`].
pub(crate) fn attach_for_router(
    circuit: &Circuit,
    dag: &DependencyDag,
) -> (Vec<Vec<Gate>>, Vec<Gate>) {
    attach_single_qubit_gates(circuit, dag)
}

/// Associates every single-qubit gate with the two-qubit DAG node it must
/// precede (the next two-qubit gate on its qubit); gates after the last
/// two-qubit gate on their qubit are returned separately as trailing gates.
fn attach_single_qubit_gates(
    circuit: &Circuit,
    dag: &DependencyDag,
) -> (Vec<Vec<Gate>>, Vec<Gate>) {
    let mut attached = vec![Vec::new(); dag.len()];
    let mut trailing = Vec::new();
    // Map circuit index of each two-qubit gate to its DAG node.
    let mut node_of_circuit_index = std::collections::HashMap::new();
    for node in 0..dag.len() {
        node_of_circuit_index.insert(dag.circuit_index(node), node);
    }
    // For each qubit, the circuit indices of its two-qubit gates in order.
    let mut pending: Vec<Gate> = Vec::new();
    for (ci, gate) in circuit.iter() {
        if gate.is_two_qubit() {
            let node = node_of_circuit_index[&ci];
            // Attach any pending single-qubit gates that act on this gate's qubits.
            let (a, b) = gate.qubit_pair().expect("two-qubit gate");
            let mut still_pending = Vec::new();
            for g in pending.drain(..) {
                if g.acts_on(a) || g.acts_on(b) {
                    attached[node].push(g);
                } else {
                    still_pending.push(g);
                }
            }
            pending = still_pending;
        } else {
            pending.push(*gate);
        }
    }
    trailing.extend(pending);
    (attached, trailing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use rand::Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn routes_trivially_executable_circuit_without_swaps() {
        let arch = devices::line(4);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn routes_random_circuit_on_grid_validly() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 40, 11);
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn routes_on_sparse_heavy_hex() {
        let arch = devices::rochester53();
        let circuit = random_circuit(20, 60, 3);
        let router = SabreRouter::new(SabreConfig::default().with_trials(2));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn preserves_single_qubit_gates() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::h(0),
                Gate::cx(0, 2),
                Gate::t(2),
                Gate::cx(0, 1),
                Gate::z(1),
            ],
        );
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        let ones = routed
            .physical_circuit
            .gates()
            .iter()
            .filter(|g| !g.is_two_qubit())
            .count();
        assert_eq!(ones, 3, "all single-qubit gates must be re-emitted");
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(3);
        let circuit = random_circuit(5, 10, 0);
        let err = SabreRouter::default().route(&circuit, &arch).unwrap_err();
        assert!(matches!(err, RouteError::TooManyQubits { .. }));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 5);
        let router = SabreRouter::new(SabreConfig::default().with_trials(3).with_seed(9));
        let a = router.route(&circuit, &arch).expect("fits");
        let b = router.route(&circuit, &arch).expect("fits");
        assert_eq!(a.physical_circuit, b.physical_circuit);
        assert_eq!(a.initial_mapping, b.initial_mapping);
    }

    #[test]
    fn more_trials_never_hurt() {
        let arch = devices::grid(4, 4);
        let circuit = random_circuit(12, 60, 21);
        let few = SabreRouter::new(SabreConfig::default().with_trials(1).with_seed(1))
            .route(&circuit, &arch)
            .expect("fits");
        let many = SabreRouter::new(SabreConfig::default().with_trials(12).with_seed(1))
            .route(&circuit, &arch)
            .expect("fits");
        assert!(many.swap_count() <= few.swap_count());
    }

    #[test]
    fn route_with_initial_mapping_keeps_the_mapping() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(6, 20, 2);
        let initial = Mapping::from_prog_to_phys(vec![0, 1, 2, 3, 4, 5], 9);
        let router = SabreRouter::default();
        let routed = router
            .route_with_initial_mapping(&circuit, &arch, &initial)
            .expect("fits");
        assert_eq!(routed.initial_mapping, initial);
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn lookahead_decay_config_builder() {
        let config = SabreConfig::default().with_lookahead_decay(0.8);
        assert_eq!(config.lookahead_decay, Some(0.8));
        let router = SabreRouter::new(config);
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 8);
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn zero_extended_set_still_routes() {
        let mut config = SabreConfig::default().with_trials(2);
        config.extended_set_size = 0;
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 25, 13);
        let routed = SabreRouter::new(config)
            .route(&circuit, &arch)
            .expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn tool_name_is_stable() {
        assert_eq!(SabreRouter::default().name(), "lightsabre");
    }
}
