//! SABRE / LightSABRE-style router.
//!
//! This is a from-scratch implementation of the SABRE routing loop (Li,
//! Ding, Xie, ASPLOS 2019) with the LightSABRE refinements the paper's case
//! study discusses: an extended-set lookahead of configurable size and
//! weight, a decay term that discourages thrashing the same qubits, multiple
//! random-restart trials with forward–backward–forward mapping passes, and a
//! release valve that forces progress when the heuristic stalls.
//!
//! The routing machinery itself — dependency DAG construction, front-layer
//! tracking, extended-set BFS and incremental SWAP scoring — lives in
//! [`crate::kernel`]; this module contributes only the SABRE-specific
//! policy: decay factors, the release valve, and the trial/pass search
//! loop. One [`RoutingProblem`] (forward + reversed DAG) is built per
//! `route` call and shared by **all** trials and mapping passes, and the
//! intermediate refinement passes skip physical-circuit emission entirely
//! (only their final mapping is consumed).
//!
//! The §IV-C case study of the paper attributes a suboptimal LightSABRE
//! choice to the *uniform* weighting of the extended set and suggests adding
//! a decay factor to the lookahead cost; [`SabreConfig::lookahead_decay`]
//! implements exactly that proposal so the ablation in the benchmark harness
//! can reproduce the analysis.

use crate::kernel::{
    check_fit, run_greedy_pass, AdditiveDecay, GreedyBfsRestarts, GreedyPolicies, GreedyScratch,
    PlacementStrategy, RoutingProblem, SeededRandomTies, WindowLookahead,
};
use crate::mapping::Mapping;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use qubikos_graph::CouplerWeights;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the SABRE-style router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SabreConfig {
    /// Number of random-restart trials; the best (fewest-SWAP) result wins.
    /// Qiskit's LightSABRE default is 1000 trials in the paper's experiments;
    /// the default here is smaller to keep the full benchmark harness fast,
    /// and the harness raises it for the headline runs.
    pub trials: usize,
    /// RNG seed for mapping restarts and tie-breaking.
    pub seed: u64,
    /// Number of look-ahead gates in the extended set (Qiskit default: 20).
    pub extended_set_size: usize,
    /// Weight of the extended-set term in the cost (Qiskit default: 0.5).
    pub extended_set_weight: f64,
    /// Additive decay applied to a qubit's decay factor each time it is
    /// swapped; discourages repeatedly swapping the same pair.
    pub decay_increment: f64,
    /// Number of routing decisions after which decay factors reset.
    pub decay_reset_interval: usize,
    /// Optional decay applied across the extended set so that gates further
    /// from the execution front weigh less: gate `i` of the extended set is
    /// weighted `lookahead_decay^i`. `None` reproduces Qiskit's uniform
    /// weighting; `Some(d)` with `d < 1` is the improvement suggested by the
    /// paper's case study.
    pub lookahead_decay: Option<f64>,
    /// Number of consecutive SWAPs without executing any gate after which the
    /// release valve forces the closest front gate to completion along a
    /// shortest path.
    pub release_valve_threshold: usize,
    /// Number of forward/backward mapping-improvement passes per trial
    /// (1 = forward only, 3 = the canonical forward–backward–forward SABRE).
    pub mapping_passes: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            trials: 16,
            seed: 0,
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_increment: 0.001,
            decay_reset_interval: 5,
            lookahead_decay: None,
            release_valve_threshold: 64,
            mapping_passes: 3,
        }
    }
}

impl SabreConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Returns the config with the case-study lookahead decay enabled.
    pub fn with_lookahead_decay(mut self, decay: f64) -> Self {
        self.lookahead_decay = Some(decay);
        self
    }

    /// Returns the config with its lookahead knobs replaced wholesale by a
    /// [`WindowLookahead`] policy (the ablation benches sweep these).
    pub fn with_lookahead(mut self, lookahead: WindowLookahead) -> Self {
        self.extended_set_size = lookahead.window;
        self.extended_set_weight = lookahead.extended_set_weight;
        self.lookahead_decay = lookahead.depth_decay;
        self
    }

    /// This config's lookahead knobs as a kernel [`WindowLookahead`] policy.
    pub fn lookahead_policy(&self) -> WindowLookahead {
        WindowLookahead {
            window: self.extended_set_size,
            extended_set_weight: self.extended_set_weight,
            depth_decay: self.lookahead_decay,
        }
    }

    /// This config's decay knobs as a kernel [`AdditiveDecay`] schedule.
    pub fn decay_schedule(&self) -> AdditiveDecay {
        AdditiveDecay {
            increment: self.decay_increment,
            reset_interval: self.decay_reset_interval,
        }
    }
}

/// SABRE / LightSABRE-style layout synthesis tool.
#[derive(Debug, Clone, Default)]
pub struct SabreRouter {
    config: SabreConfig,
}

impl SabreRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: SabreConfig) -> Self {
        SabreRouter { config }
    }

    /// The router's configuration.
    pub fn config(&self) -> &SabreConfig {
        &self.config
    }

    /// Routes `circuit` with a caller-supplied initial mapping, skipping the
    /// mapping-search trials entirely. This is how standalone *routers* are
    /// evaluated (paper §IV-C): QUBIKOS supplies the known-optimal initial
    /// mapping and any excess SWAPs are attributable to routing alone.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::TooManyQubits`] if the circuit does not fit.
    pub fn route_with_initial_mapping(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        initial: &Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let problem = RoutingProblem::forward_only(circuit);
        let lookahead = self.config.lookahead_policy();
        let decay = self.config.decay_schedule();
        let weights = CouplerWeights::uniform();
        let policies = GreedyPolicies {
            lookahead: &lookahead,
            decay: &decay,
            tie_breaker: &SeededRandomTies,
            weights: &weights,
            stall_threshold: self.config.release_valve_threshold,
        };
        let mut scratch = GreedyScratch::default();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut physical = Circuit::new(arch.num_qubits());
        let final_mapping = run_greedy_pass(
            problem.forward(),
            arch,
            &policies,
            initial.clone(),
            &mut rng,
            &mut scratch,
            Some(&mut physical),
        );
        Ok(RoutedCircuit {
            physical_circuit: physical,
            initial_mapping: initial.clone(),
            final_mapping,
            tool: self.name().to_string(),
        })
    }
}

impl Router for SabreRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let config = &self.config;
        // Forward and reversed DAGs are built exactly once here and shared
        // by every trial and every mapping pass below.
        let problem = RoutingProblem::bidirectional(circuit);
        let lookahead = config.lookahead_policy();
        let decay = config.decay_schedule();
        let weights = CouplerWeights::uniform();
        let policies = GreedyPolicies {
            lookahead: &lookahead,
            decay: &decay,
            tie_breaker: &SeededRandomTies,
            weights: &weights,
            stall_threshold: config.release_valve_threshold,
        };
        let mut scratch = GreedyScratch::default();
        let mut best: Option<RoutedCircuit> = None;

        for trial in 0..config.trials.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(trial as u64));
            // Trial 0 starts from the structure-aware greedy placement, the
            // rest from random placements (the SABRE random-restart scheme).
            let mut mapping = GreedyBfsRestarts.place(trial, circuit, arch, &mut rng);

            // Forward/backward passes refine the initial mapping: the final
            // mapping of each pass seeds the next pass on the reversed
            // circuit, converging towards a mapping that suits both ends.
            // Only the final mapping of a refinement pass is consumed, so
            // these passes skip physical-circuit emission.
            let passes = config.mapping_passes.max(1);
            for p in 0..passes.saturating_sub(1) {
                let view = if p % 2 == 0 {
                    problem.forward()
                } else {
                    problem.reversed()
                };
                mapping =
                    run_greedy_pass(view, arch, &policies, mapping, &mut rng, &mut scratch, None);
            }
            // If an even number of refinement passes was run the mapping now
            // describes the reversed circuit's start, which is exactly the
            // forward circuit's best-known start as well.
            let mut physical = Circuit::new(arch.num_qubits());
            let final_mapping = run_greedy_pass(
                problem.forward(),
                arch,
                &policies,
                mapping.clone(),
                &mut rng,
                &mut scratch,
                Some(&mut physical),
            );
            let candidate = RoutedCircuit {
                physical_circuit: physical,
                initial_mapping: mapping,
                final_mapping,
                tool: self.name().to_string(),
            };
            if best
                .as_ref()
                .map(|b| candidate.swap_count() < b.swap_count())
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        Ok(best.expect("at least one trial ran"))
    }

    fn name(&self) -> &str {
        "lightsabre"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::dag_builds_on_this_thread;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use qubikos_circuit::Gate;
    use rand::Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn routes_trivially_executable_circuit_without_swaps() {
        let arch = devices::line(4);
        let circuit = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)]);
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn routes_random_circuit_on_grid_validly() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 40, 11);
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn routes_on_sparse_heavy_hex() {
        let arch = devices::rochester53();
        let circuit = random_circuit(20, 60, 3);
        let router = SabreRouter::new(SabreConfig::default().with_trials(2));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn preserves_single_qubit_gates() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::h(0),
                Gate::cx(0, 2),
                Gate::t(2),
                Gate::cx(0, 1),
                Gate::z(1),
            ],
        );
        let router = SabreRouter::new(SabreConfig::default().with_trials(4));
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
        let ones = routed
            .physical_circuit
            .gates()
            .iter()
            .filter(|g| !g.is_two_qubit())
            .count();
        assert_eq!(ones, 3, "all single-qubit gates must be re-emitted");
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(3);
        let circuit = random_circuit(5, 10, 0);
        let err = SabreRouter::default().route(&circuit, &arch).unwrap_err();
        assert!(matches!(err, RouteError::TooManyQubits { .. }));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 5);
        let router = SabreRouter::new(SabreConfig::default().with_trials(3).with_seed(9));
        let a = router.route(&circuit, &arch).expect("fits");
        let b = router.route(&circuit, &arch).expect("fits");
        assert_eq!(a.physical_circuit, b.physical_circuit);
        assert_eq!(a.initial_mapping, b.initial_mapping);
    }

    #[test]
    fn more_trials_never_hurt() {
        let arch = devices::grid(4, 4);
        let circuit = random_circuit(12, 60, 21);
        let few = SabreRouter::new(SabreConfig::default().with_trials(1).with_seed(1))
            .route(&circuit, &arch)
            .expect("fits");
        let many = SabreRouter::new(SabreConfig::default().with_trials(12).with_seed(1))
            .route(&circuit, &arch)
            .expect("fits");
        assert!(many.swap_count() <= few.swap_count());
    }

    #[test]
    fn route_with_initial_mapping_keeps_the_mapping() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(6, 20, 2);
        let initial = Mapping::from_prog_to_phys(vec![0, 1, 2, 3, 4, 5], 9);
        let router = SabreRouter::default();
        let routed = router
            .route_with_initial_mapping(&circuit, &arch, &initial)
            .expect("fits");
        assert_eq!(routed.initial_mapping, initial);
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn lookahead_decay_config_builder() {
        let config = SabreConfig::default().with_lookahead_decay(0.8);
        assert_eq!(config.lookahead_decay, Some(0.8));
        let router = SabreRouter::new(config);
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 8);
        let routed = router.route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn zero_extended_set_still_routes() {
        let mut config = SabreConfig::default().with_trials(2);
        config.extended_set_size = 0;
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 25, 13);
        let routed = SabreRouter::new(config)
            .route(&circuit, &arch)
            .expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    /// The builds-DAGs-once guarantee: a full multi-trial, multi-pass route
    /// call constructs exactly two dependency DAGs (forward + reversed),
    /// never one per trial or per pass.
    #[test]
    fn route_builds_each_dag_at_most_once() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(7, 30, 4);
        let router = SabreRouter::new(SabreConfig::default().with_trials(5));
        assert_eq!(router.config().mapping_passes, 3);
        let before = dag_builds_on_this_thread();
        let _ = router.route(&circuit, &arch).expect("fits");
        assert_eq!(
            dag_builds_on_this_thread() - before,
            2,
            "route must build exactly the forward and reversed DAGs once each"
        );
        // A single-pass route with a fixed mapping needs only the forward DAG.
        let initial = Mapping::from_prog_to_phys((0..7).collect(), 9);
        let before = dag_builds_on_this_thread();
        let _ = router
            .route_with_initial_mapping(&circuit, &arch, &initial)
            .expect("fits");
        assert_eq!(dag_builds_on_this_thread() - before, 1);
    }

    #[test]
    fn tool_name_is_stable() {
        assert_eq!(SabreRouter::default().name(), "lightsabre")
    }
}
