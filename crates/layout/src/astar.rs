//! A QMAP-style per-layer A* router.
//!
//! QMAP's published heuristic mapper partitions the circuit into layers of
//! independent gates and, for each layer, searches over SWAP sequences until
//! every gate of the layer acts on coupled qubits. This module implements
//! that design with a bounded A* search per layer: nodes are mappings,
//! transitions are single SWAPs on couplers incident to the layer's qubits,
//! the path cost is the number of SWAPs, and the heuristic is the summed
//! excess distance of the layer's gates. When the node budget runs out the
//! search falls back to the best partial state found so far and continues
//! greedily, so routing always terminates.
//!
//! The circuit-derived state (dependency DAG, layering, single-qubit gate
//! schedule) comes from [`crate::kernel`]; the per-layer search is the
//! QMAP-specific policy this module keeps.

use crate::kernel::{check_fit, RoutingProblem};
use crate::mapping::Mapping;
use crate::placement::greedy_bfs_placement;
use crate::result::RoutedCircuit;
use crate::router::{RouteError, Router};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, Gate};
use qubikos_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Tuning knobs of the QMAP-style router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AStarConfig {
    /// RNG seed (reserved; the search itself is deterministic).
    pub seed: u64,
    /// Maximum number of states expanded per layer before falling back to a
    /// greedy completion of that layer.
    pub max_expansions_per_layer: usize,
}

impl Default for AStarConfig {
    fn default() -> Self {
        AStarConfig {
            seed: 0,
            max_expansions_per_layer: 4000,
        }
    }
}

impl AStarConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// QMAP-style layer-by-layer A* router.
#[derive(Debug, Clone, Default)]
pub struct AStarRouter {
    config: AStarConfig,
}

impl AStarRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: AStarConfig) -> Self {
        AStarRouter { config }
    }
}

impl AStarRouter {
    /// Routes `circuit` from a caller-supplied initial mapping — the same
    /// per-layer search as [`Router::route`], with the placement stage
    /// skipped. This is the hook the composed-router construction kit uses
    /// to pair the QMAP search with any
    /// [`PlacementStrategy`](crate::kernel::PlacementStrategy) — see
    /// [`crate::composed`].
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::TooManyQubits`] if the circuit does not fit.
    pub fn route_with_initial_mapping(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        initial: &Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let initial = initial.clone();
        let mut mapping = initial.clone();
        let problem = RoutingProblem::forward_only(circuit);
        let view = problem.forward();
        let dag = view.dag();
        let mut out = Circuit::new(arch.num_qubits());

        for layer in dag.layers() {
            // Find a SWAP sequence that makes every gate of this layer executable.
            let pairs: Vec<(usize, usize)> =
                layer.iter().map(|&node| dag.qubit_pair(node)).collect();
            let swaps = self.solve_layer(&pairs, arch, &mapping);

            // Gates within a layer act on disjoint qubits, so each one can be
            // emitted the moment its pair becomes adjacent — later SWAPs of
            // the same layer are then free to move its qubits again.
            let mut emitted = vec![false; layer.len()];
            let emit_ready = |mapping: &Mapping, out: &mut Circuit, emitted: &mut Vec<bool>| {
                for (k, &node) in layer.iter().enumerate() {
                    if emitted[k] {
                        continue;
                    }
                    let (a, b) = pairs[k];
                    if arch.are_coupled(mapping.physical(a), mapping.physical(b)) {
                        view.emit(node, mapping, out);
                        emitted[k] = true;
                    }
                }
            };
            emit_ready(&mapping, &mut out, &mut emitted);
            for (pa, pb) in swaps {
                out.push(Gate::swap(pa, pb));
                mapping.apply_swap_physical(pa, pb);
                emit_ready(&mapping, &mut out, &mut emitted);
            }
            // Safety net: if the search's fallback left a pair apart, walk it
            // together along a shortest path so routing always completes.
            for (k, &node) in layer.iter().enumerate() {
                if emitted[k] {
                    continue;
                }
                let (a, b) = pairs[k];
                crate::kernel::force_adjacent(arch, &mut mapping, a, b, |u, v| {
                    out.push(Gate::swap(u, v));
                });
                view.emit(node, &mapping, &mut out);
            }
        }
        view.emit_trailing(&mapping, &mut out);

        Ok(RoutedCircuit {
            physical_circuit: out,
            initial_mapping: initial,
            final_mapping: mapping,
            tool: self.name().to_string(),
        })
    }
}

impl Router for AStarRouter {
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError> {
        check_fit(circuit, arch)?;
        let initial = greedy_bfs_placement(circuit, arch);
        self.route_with_initial_mapping(circuit, arch, &initial)
    }

    fn name(&self) -> &str {
        "qmap"
    }
}

/// One A* search state: the program→physical assignment, plus the parent
/// state index and the SWAP that produced it (`None` for the root).
type SearchState = (Vec<NodeId>, Option<(usize, (NodeId, NodeId))>);

impl AStarRouter {
    /// Summed excess distance of the layer's gate pairs under `assignment`.
    fn heuristic(pairs: &[(usize, usize)], arch: &Architecture, assignment: &[NodeId]) -> usize {
        pairs
            .iter()
            .map(|&(a, b)| {
                arch.distance(assignment[a], assignment[b])
                    .saturating_sub(1)
            })
            .sum()
    }

    /// A* over SWAP sequences until every pair in `pairs` is adjacent.
    fn solve_layer(
        &self,
        pairs: &[(usize, usize)],
        arch: &Architecture,
        mapping: &Mapping,
    ) -> Vec<(NodeId, NodeId)> {
        let start: Vec<NodeId> = (0..mapping.num_program())
            .map(|q| mapping.physical(q))
            .collect();
        if Self::heuristic(pairs, arch, &start) == 0 {
            return Vec::new();
        }

        // Priority queue keyed by f = g + h; states identified by the
        // program→physical assignment vector.
        let mut open: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
        let mut states: Vec<SearchState> = Vec::new();
        let mut best_g: HashMap<Vec<NodeId>, usize> = HashMap::new();

        states.push((start.clone(), None));
        best_g.insert(start.clone(), 0);
        open.push(Reverse((Self::heuristic(pairs, arch, &start), 0, 0)));

        let mut expansions = 0usize;
        let mut best_fallback = (Self::heuristic(pairs, arch, &start), 0usize);

        while let Some(Reverse((_, g, id))) = open.pop() {
            let assignment = states[id].0.clone();
            if best_g.get(&assignment).copied().unwrap_or(usize::MAX) < g {
                continue; // stale entry
            }
            let h = Self::heuristic(pairs, arch, &assignment);
            if h == 0 {
                return Self::reconstruct(&states, id);
            }
            if h < best_fallback.0 {
                best_fallback = (h, id);
            }
            expansions += 1;
            if expansions > self.config.max_expansions_per_layer {
                // Budget exhausted: finish the layer greedily from the most
                // promising state seen so far.
                let mut swaps = Self::reconstruct(&states, best_fallback.1);
                let mut assignment = states[best_fallback.1].0.clone();
                swaps.extend(Self::greedy_finish(pairs, arch, &mut assignment));
                return swaps;
            }

            // Candidate SWAPs: couplers touching a physical qubit used by a
            // still-unsatisfied pair.
            let mut active = vec![false; arch.num_qubits()];
            for &(a, b) in pairs {
                if arch.distance(assignment[a], assignment[b]) > 1 {
                    active[assignment[a]] = true;
                    active[assignment[b]] = true;
                }
            }
            for edge in arch.couplers() {
                if !(active[edge.u] || active[edge.v]) {
                    continue;
                }
                let mut next = assignment.clone();
                for slot in next.iter_mut() {
                    if *slot == edge.u {
                        *slot = edge.v;
                    } else if *slot == edge.v {
                        *slot = edge.u;
                    }
                }
                let next_g = g + 1;
                if best_g.get(&next).copied().unwrap_or(usize::MAX) <= next_g {
                    continue;
                }
                best_g.insert(next.clone(), next_g);
                let next_id = states.len();
                states.push((next.clone(), Some((id, (edge.u, edge.v)))));
                open.push(Reverse((
                    next_g + Self::heuristic(pairs, arch, &next),
                    next_g,
                    next_id,
                )));
            }
        }

        // Open set exhausted without a goal (cannot happen on a connected
        // architecture, but stay safe): finish greedily from the start.
        let mut assignment = start;
        Self::greedy_finish(pairs, arch, &mut assignment)
    }

    /// Rebuilds the SWAP sequence leading to state `id`.
    fn reconstruct(states: &[SearchState], mut id: usize) -> Vec<(NodeId, NodeId)> {
        let mut swaps = Vec::new();
        while let Some((parent, swap)) = states[id].1 {
            swaps.push(swap);
            id = parent;
        }
        swaps.reverse();
        swaps
    }

    /// Moves each unsatisfied pair together along shortest paths.
    fn greedy_finish(
        pairs: &[(usize, usize)],
        arch: &Architecture,
        assignment: &mut [NodeId],
    ) -> Vec<(NodeId, NodeId)> {
        let mut swaps = Vec::new();
        for &(a, b) in pairs {
            // `b` never moves while `a` walks towards it (the walk's next hop
            // is never `b`'s qubit), so one distance row serves the whole
            // path.
            let to_pb = arch.distance_row(assignment[b]);
            while to_pb[assignment[a]] > 1 {
                let pa = assignment[a];
                let next = arch
                    .neighbors(pa)
                    .iter()
                    .copied()
                    .min_by_key(|&n| to_pb[n])
                    .expect("connected architecture");
                swaps.push((pa, next));
                for slot in assignment.iter_mut() {
                    if *slot == pa {
                        *slot = next;
                    } else if *slot == next {
                        *slot = pa;
                    }
                }
            }
        }
        swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routing;
    use qubikos_arch::devices;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Circuit::new(num_qubits);
        for _ in 0..gates {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            while b == a {
                b = rng.gen_range(0..num_qubits);
            }
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn routes_valid_circuits_on_grid() {
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(8, 30, 31);
        let routed = AStarRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn routes_valid_circuits_on_aspen() {
        let arch = devices::aspen4();
        let circuit = random_circuit(12, 50, 5);
        let routed = AStarRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn executable_circuit_needs_no_swaps() {
        let arch = devices::line(5);
        let circuit = Circuit::from_gates(5, [Gate::cx(0, 1), Gate::cx(2, 3), Gate::cx(3, 4)]);
        let routed = AStarRouter::default().route(&circuit, &arch).expect("fits");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn tiny_expansion_budget_still_terminates() {
        let config = AStarConfig {
            seed: 0,
            max_expansions_per_layer: 1,
        };
        let arch = devices::grid(3, 3);
        let circuit = random_circuit(9, 40, 7);
        let routed = AStarRouter::new(config)
            .route(&circuit, &arch)
            .expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn single_qubit_gates_survive() {
        let arch = devices::line(3);
        let circuit = Circuit::from_gates(3, [Gate::h(1), Gate::cx(0, 2), Gate::z(0)]);
        let routed = AStarRouter::default().route(&circuit, &arch).expect("fits");
        validate_routing(&circuit, &arch, &routed).expect("valid");
    }

    #[test]
    fn rejects_oversized_circuit() {
        let arch = devices::line(2);
        assert!(matches!(
            AStarRouter::default()
                .route(&random_circuit(3, 5, 0), &arch)
                .unwrap_err(),
            RouteError::TooManyQubits { .. }
        ));
    }

    #[test]
    fn config_builder() {
        assert_eq!(AStarConfig::default().with_seed(5).seed, 5);
        assert_eq!(AStarRouter::default().name(), "qmap");
    }
}
