//! Composable routing policies: the per-router choices of the greedy
//! SWAP-insertion loop, promoted to trait parameters.
//!
//! The four routers of the paper differ from each other in a handful of
//! policy decisions buried inside otherwise identical loops: how far ahead
//! they look ([`LookaheadPolicy`]), whether recently-swapped qubits are
//! penalised ([`DecaySchedule`]), how score ties are broken
//! ([`TieBreaker`]), and where the initial mapping comes from
//! ([`PlacementStrategy`]). This module defines those axes as traits plus
//! one generic pass, [`run_greedy_pass`], that runs the shared loop with
//! any combination — the same building-block composition A-SABR applies to
//! DTN routing. A router is then a *named composition* (see
//! [`crate::composed`]) rather than a monolith.
//!
//! Heterogeneous SWAP costs ride the same pipeline: a
//! [`CouplerWeights`](qubikos_graph::CouplerWeights) multiplies each
//! candidate's score (see [`swap_multiplier`]), both in the
//! [`SwapScorer::prune_candidates`] bound pass and in the exact selection
//! scan — the same float pipeline on both sides, so the scorer's
//! pruned-score reuse stays bitwise sound under any weighting. Uniform
//! weights multiply by exactly `1.0`, an IEEE-754 identity, which is why
//! the pre-refactor routers' SWAP streams are reproduced bit-for-bit.

use crate::kernel::{force_adjacent, FrontTracker, ProblemView, ScoreParams, SwapScorer};
use crate::mapping::Mapping;
use crate::placement::greedy_bfs_placement;
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, Gate};
use qubikos_graph::{CouplerWeights, NodeId};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

/// How far beyond the blocked front a router looks when scoring a SWAP.
pub trait LookaheadPolicy {
    /// Number of extended-set gates collected per decision (0 = front-only).
    fn window(&self) -> usize;
    /// The scorer parameters (extended-set weight, optional per-depth
    /// decay) this policy scores with.
    fn score_params(&self) -> ScoreParams;
}

/// The standard windowed lookahead: an extended set of up to `window`
/// gates, weighted by `extended_set_weight`, with gate `i` optionally
/// decayed by `depth_decay^i` (the paper's §IV-C proposal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowLookahead {
    /// Extended-set size (0 disables lookahead entirely).
    pub window: usize,
    /// Weight of the extended-set term in the cost.
    pub extended_set_weight: f64,
    /// Optional per-depth decay across the extended set.
    pub depth_decay: Option<f64>,
}

impl WindowLookahead {
    /// LightSABRE's published defaults: 20 gates at weight 0.5, uniform.
    pub fn sabre_default() -> Self {
        WindowLookahead {
            window: 20,
            extended_set_weight: 0.5,
            depth_decay: None,
        }
    }

    /// No lookahead at all — the t|ket⟩-style front-only objective.
    pub fn front_only() -> Self {
        WindowLookahead {
            window: 0,
            extended_set_weight: 0.0,
            depth_decay: None,
        }
    }
}

impl LookaheadPolicy for WindowLookahead {
    fn window(&self) -> usize {
        self.window
    }

    fn score_params(&self) -> ScoreParams {
        ScoreParams {
            extended_set_weight: self.extended_set_weight,
            lookahead_decay: self.depth_decay,
        }
    }
}

/// Whether (and how) recently-swapped qubits are penalised to discourage
/// thrashing the same pair.
pub trait DecaySchedule {
    /// Additive bump applied to both endpoints of each applied SWAP.
    fn increment(&self) -> f64;
    /// Number of routing decisions after which all factors reset to 1.
    fn reset_interval(&self) -> usize;
}

/// SABRE's additive decay: each applied SWAP bumps its endpoints' factors
/// by `increment`, and everything resets after `reset_interval` decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdditiveDecay {
    /// Additive per-SWAP bump.
    pub increment: f64,
    /// Decisions between resets.
    pub reset_interval: usize,
}

impl AdditiveDecay {
    /// SABRE's published defaults (increment 0.001, reset every 5).
    pub fn sabre_default() -> Self {
        AdditiveDecay {
            increment: 0.001,
            reset_interval: 5,
        }
    }
}

impl DecaySchedule for AdditiveDecay {
    fn increment(&self) -> f64 {
        self.increment
    }

    fn reset_interval(&self) -> usize {
        self.reset_interval
    }
}

/// No decay: every factor stays exactly `1.0` forever (adding `0.0` to
/// `1.0` and `max(1.0, 1.0)` are both exact), so scores are untouched
/// bitwise — this is how the t|ket⟩ composition shares SABRE's loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoDecay;

impl DecaySchedule for NoDecay {
    fn increment(&self) -> f64 {
        0.0
    }

    fn reset_interval(&self) -> usize {
        usize::MAX
    }
}

/// How a router picks one SWAP out of the set of score-tied best
/// candidates. The tie set is always collected in candidate (= coupler)
/// order with SABRE's `1e-12` epsilon band, so breakers see a stable,
/// deterministic slice.
pub trait TieBreaker {
    /// Picks the winning SWAP from a non-empty tie set.
    fn break_tie(
        &self,
        ties: &[(NodeId, NodeId)],
        scorer: &mut SwapScorer,
        arch: &Architecture,
        rng: &mut ChaCha8Rng,
    ) -> (NodeId, NodeId);
}

/// SABRE's tie-break: a uniform draw from the tie set using the trial's
/// seeded RNG. Draws from the RNG on every decision (even for a singleton
/// tie set), exactly like the pre-refactor router, so RNG streams line up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeededRandomTies;

impl TieBreaker for SeededRandomTies {
    fn break_tie(
        &self,
        ties: &[(NodeId, NodeId)],
        _scorer: &mut SwapScorer,
        _arch: &Architecture,
        rng: &mut ChaCha8Rng,
    ) -> (NodeId, NodeId) {
        *ties.choose(rng).expect("non-empty tie set")
    }
}

/// First tie in candidate order — the lowest-indexed coupler, since
/// candidates are generated in coupler order and pruning preserves it.
/// Under a front-only objective this reproduces t|ket⟩'s
/// first-integer-minimum selection exactly: the front-total sum is a small
/// integer divided by the (candidate-independent) front length, so exact
/// score ties coincide with integer ties and the epsilon band never merges
/// distinct totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QubitIndexTies;

impl TieBreaker for QubitIndexTies {
    fn break_tie(
        &self,
        ties: &[(NodeId, NodeId)],
        _scorer: &mut SwapScorer,
        _arch: &Architecture,
        _rng: &mut ChaCha8Rng,
    ) -> (NodeId, NodeId) {
        ties[0]
    }
}

/// Deterministic distance-refined tie-break: among tied candidates, prefer
/// the one whose applied SWAP leaves the smallest summed front distance
/// (the tie set ties on the *weighted* score, so front totals can still
/// differ under decay or lookahead), then the lowest coupler index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistanceRefinedTies;

impl TieBreaker for DistanceRefinedTies {
    fn break_tie(
        &self,
        ties: &[(NodeId, NodeId)],
        scorer: &mut SwapScorer,
        arch: &Architecture,
        _rng: &mut ChaCha8Rng,
    ) -> (NodeId, NodeId) {
        ties.iter()
            .copied()
            .min_by_key(|&swap| (scorer.front_total(swap, arch), swap))
            .expect("non-empty tie set")
    }
}

/// Where a trial's initial program→physical mapping comes from.
pub trait PlacementStrategy {
    /// The initial mapping for `trial`. Strategies follow the SABRE
    /// random-restart scheme: trial 0 is the strategy's deterministic
    /// placement, later trials draw a random mapping from `rng` (one draw
    /// sequence shared with routing, exactly like the pre-refactor SABRE).
    fn place(
        &self,
        trial: usize,
        circuit: &Circuit,
        arch: &Architecture,
        rng: &mut ChaCha8Rng,
    ) -> Mapping;
}

/// Structure-aware greedy-BFS placement with random restarts — the SABRE
/// and t|ket⟩ default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyBfsRestarts;

impl PlacementStrategy for GreedyBfsRestarts {
    fn place(
        &self,
        trial: usize,
        circuit: &Circuit,
        arch: &Architecture,
        rng: &mut ChaCha8Rng,
    ) -> Mapping {
        if trial == 0 {
            greedy_bfs_placement(circuit, arch)
        } else {
            Mapping::random(circuit.num_qubits(), arch.num_qubits(), rng)
        }
    }
}

/// The trivial placement: program qubit `q` starts on physical qubit `q`
/// (random restarts on later trials). A baseline that isolates routing
/// quality from placement quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdentityPlacement;

impl PlacementStrategy for IdentityPlacement {
    fn place(
        &self,
        trial: usize,
        circuit: &Circuit,
        arch: &Architecture,
        rng: &mut ChaCha8Rng,
    ) -> Mapping {
        if trial == 0 {
            Mapping::identity(circuit.num_qubits(), arch.num_qubits())
        } else {
            Mapping::random(circuit.num_qubits(), arch.num_qubits(), rng)
        }
    }
}

/// The complete policy bundle one [`run_greedy_pass`] call routes with.
pub struct GreedyPolicies<'a> {
    /// Lookahead axis.
    pub lookahead: &'a dyn LookaheadPolicy,
    /// Decay axis.
    pub decay: &'a dyn DecaySchedule,
    /// Tie-break axis.
    pub tie_breaker: &'a dyn TieBreaker,
    /// Per-coupler SWAP-cost weights (uniform = the classic cost model).
    pub weights: &'a CouplerWeights,
    /// Number of consecutive SWAPs without executing any gate after which
    /// the pass forces the closest front gate through along a shortest
    /// path (SABRE's release valve / t|ket⟩'s stall fallback).
    pub stall_threshold: usize,
}

/// Kernel state reused across every pass and trial of one route call.
#[derive(Debug, Clone, Default)]
pub struct GreedyScratch {
    tracker: FrontTracker,
    scorer: SwapScorer,
    candidates: Vec<(NodeId, NodeId)>,
    ties: Vec<(NodeId, NodeId)>,
    decay: Vec<f64>,
}

/// The full multiplier of one candidate SWAP: its coupler weight times the
/// larger of its endpoints' decay factors. Used verbatim on both the
/// prune-bound side and the exact selection side so pruned-score reuse
/// stays bitwise sound; under uniform weights it skips the (identity)
/// multiplication and returns exactly the pre-refactor decay factor.
pub fn swap_multiplier(weights: &CouplerWeights, decay: &[f64], swap: (NodeId, NodeId)) -> f64 {
    let factor = decay[swap.0].max(decay[swap.1]);
    if weights.is_uniform() {
        factor
    } else {
        weights.weight(swap.0, swap.1) * factor
    }
}

/// One greedy routing pass over `view` from `mapping` under `policies`;
/// returns the final mapping. When `out` is `Some`, the physical circuit
/// (attached single-qubit gates, two-qubit gates, SWAPs, trailing gates)
/// is emitted into it; refinement passes pass `None` and skip emission
/// entirely. This is the loop every greedy composition shares — SABRE,
/// t|ket⟩ and the ablation-matrix variants differ only in the policy
/// bundle they pass in.
pub fn run_greedy_pass(
    view: &ProblemView,
    arch: &Architecture,
    policies: &GreedyPolicies<'_>,
    mut mapping: Mapping,
    rng: &mut ChaCha8Rng,
    scratch: &mut GreedyScratch,
    mut out: Option<&mut Circuit>,
) -> Mapping {
    let dag = view.dag();
    let params = policies.lookahead.score_params();
    let window = policies.lookahead.window();
    let decay_increment = policies.decay.increment();
    let decay_reset_interval = policies.decay.reset_interval();
    scratch.tracker.reset(dag);
    scratch.decay.clear();
    scratch.decay.resize(arch.num_qubits(), 1.0);
    let mut decisions_since_reset = 0usize;
    let mut swaps_since_progress = 0usize;
    // The scorer snapshot is valid until the front changes or the mapping
    // moves without the scorer seeing it (stall fallback).
    let mut scorer_ready = false;

    while !scratch.tracker.is_done() {
        // Execute every front gate whose qubits are adjacent.
        let out_ref = &mut out;
        let executed_any = scratch.tracker.advance(
            dag,
            |node| {
                let (a, b) = dag.qubit_pair(node);
                arch.are_coupled(mapping.physical(a), mapping.physical(b))
            },
            |node| {
                if let Some(out) = out_ref.as_deref_mut() {
                    view.emit(node, &mapping, out);
                }
            },
        );
        if executed_any {
            swaps_since_progress = 0;
            scratch.decay.iter_mut().for_each(|d| *d = 1.0);
            decisions_since_reset = 0;
            scorer_ready = false;
            continue;
        }
        if scratch.tracker.is_done() {
            break;
        }

        // Release valve: force the closest front gate through if the
        // heuristic has been spinning without progress.
        if swaps_since_progress >= policies.stall_threshold {
            force_closest_gate(view, arch, &mut mapping, &mut out, scratch);
            swaps_since_progress = 0;
            scorer_ready = false;
            continue;
        }

        if !scorer_ready {
            scratch.tracker.compute_extended_set(dag, window);
            scratch.scorer.prepare(
                scratch.tracker.front(),
                scratch.tracker.extended(),
                dag,
                &mapping,
                arch,
                &params,
            );
            scorer_ready = true;
        }

        // Score candidate SWAPs and collect the epsilon tie band.
        scratch
            .scorer
            .candidates_into(arch, &mut scratch.candidates);
        debug_assert!(
            !scratch.candidates.is_empty(),
            "front gates always have candidate swaps"
        );
        // On landmark-backed devices, discard candidates whose bound-side
        // score provably cannot reach the winner's tie band; the exact scan
        // below then only pays for plausible candidates. A no-op on
        // dense/sparse oracles, and bit-identical either way — the
        // multiplied scores the bounds bracket are exactly the scores
        // compared below.
        {
            let GreedyScratch {
                scorer,
                candidates,
                decay,
                ..
            } = &mut *scratch;
            let weights = policies.weights;
            scorer.prune_candidates(candidates, arch, &params, |swap| {
                swap_multiplier(weights, decay, swap)
            });
        }
        let mut best_score = f64::INFINITY;
        scratch.ties.clear();
        for i in 0..scratch.candidates.len() {
            let (pa, pb) = scratch.candidates[i];
            // Reuse the multiplied score when the prune pass already
            // computed it exactly (bitwise-identical float pipeline),
            // sparing the rescan; candidates the bounds only bracketed pay
            // the exact scan here.
            let score = match scratch.scorer.pruned_score(i) {
                Some(score) => score,
                None => {
                    swap_multiplier(policies.weights, &scratch.decay, (pa, pb))
                        * scratch.scorer.swap_cost((pa, pb), arch, &params)
                }
            };
            if score < best_score - 1e-12 {
                best_score = score;
                scratch.ties.clear();
                scratch.ties.push((pa, pb));
            } else if (score - best_score).abs() <= 1e-12 {
                scratch.ties.push((pa, pb));
            }
        }
        let chosen = {
            let GreedyScratch { scorer, ties, .. } = &mut *scratch;
            policies.tie_breaker.break_tie(ties, scorer, arch, rng)
        };
        if let Some(out) = out.as_deref_mut() {
            out.push(Gate::swap(chosen.0, chosen.1));
        }
        mapping.apply_swap_physical(chosen.0, chosen.1);
        scratch.scorer.apply(chosen, arch);
        scratch.decay[chosen.0] += decay_increment;
        scratch.decay[chosen.1] += decay_increment;
        decisions_since_reset += 1;
        swaps_since_progress += 1;
        if decisions_since_reset >= decay_reset_interval {
            scratch.decay.iter_mut().for_each(|d| *d = 1.0);
            decisions_since_reset = 0;
        }
    }

    // Emit trailing single-qubit gates under the final mapping.
    if let Some(out) = out {
        view.emit_trailing(&mapping, out);
    }
    mapping
}

/// Forces the front gate whose qubits are closest together to execute by
/// swapping one qubit along a shortest path towards the other. The gate
/// itself executes on the next main-loop iteration.
fn force_closest_gate(
    view: &ProblemView,
    arch: &Architecture,
    mapping: &mut Mapping,
    out: &mut Option<&mut Circuit>,
    scratch: &GreedyScratch,
) {
    let dag = view.dag();
    let &node = scratch
        .tracker
        .front()
        .iter()
        .min_by_key(|&&n| {
            let (a, b) = dag.qubit_pair(n);
            arch.distance(mapping.physical(a), mapping.physical(b))
        })
        .expect("front is non-empty");
    let (a, b) = dag.qubit_pair(node);
    force_adjacent(arch, mapping, a, b, |u, v| {
        if let Some(out) = out.as_deref_mut() {
            out.push(Gate::swap(u, v));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RoutingProblem;
    use qubikos_arch::devices;
    use rand::SeedableRng;

    fn policies<'a>(
        lookahead: &'a WindowLookahead,
        decay: &'a dyn DecaySchedule,
        tie: &'a dyn TieBreaker,
        weights: &'a CouplerWeights,
    ) -> GreedyPolicies<'a> {
        GreedyPolicies {
            lookahead,
            decay,
            tie_breaker: tie,
            weights,
            stall_threshold: 64,
        }
    }

    fn test_circuit() -> Circuit {
        Circuit::from_gates(
            6,
            [
                Gate::cx(0, 5),
                Gate::cx(1, 4),
                Gate::cx(2, 3),
                Gate::cx(0, 3),
                Gate::cx(4, 5),
                Gate::cx(1, 5),
                Gate::cx(0, 2),
            ],
        )
    }

    fn route_once(p: &GreedyPolicies<'_>, seed: u64) -> (Circuit, Mapping) {
        let arch = devices::grid(3, 3);
        let circuit = test_circuit();
        let problem = RoutingProblem::forward_only(&circuit);
        let mut scratch = GreedyScratch::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let initial = GreedyBfsRestarts.place(0, &circuit, &arch, &mut rng);
        let mut out = Circuit::new(arch.num_qubits());
        let final_mapping = run_greedy_pass(
            problem.forward(),
            &arch,
            p,
            initial,
            &mut rng,
            &mut scratch,
            Some(&mut out),
        );
        (out, final_mapping)
    }

    #[test]
    fn deterministic_tie_breakers_ignore_the_rng() {
        let lookahead = WindowLookahead::front_only();
        let weights = CouplerWeights::uniform();
        for tie in [&QubitIndexTies as &dyn TieBreaker, &DistanceRefinedTies] {
            let p = policies(&lookahead, &NoDecay, tie, &weights);
            let (a, _) = route_once(&p, 1);
            let (b, _) = route_once(&p, 999);
            assert_eq!(a, b, "deterministic breaker must not consume the RNG");
        }
    }

    #[test]
    fn seeded_random_ties_follow_the_seed() {
        let lookahead = WindowLookahead::sabre_default();
        let weights = CouplerWeights::uniform();
        let decay = AdditiveDecay::sabre_default();
        let p = policies(&lookahead, &decay, &SeededRandomTies, &weights);
        let (a, _) = route_once(&p, 7);
        let (b, _) = route_once(&p, 7);
        assert_eq!(a, b, "same seed, same stream");
    }

    #[test]
    fn no_decay_keeps_factors_exactly_one() {
        assert_eq!(NoDecay.increment(), 0.0);
        assert_eq!(NoDecay.reset_interval(), usize::MAX);
        // Adding the increment must be an exact no-op on the neutral factor.
        let factor: f64 = 1.0;
        assert_eq!(factor + NoDecay.increment(), 1.0);
    }

    #[test]
    fn swap_multiplier_is_identity_under_uniform_weights() {
        let weights = CouplerWeights::uniform();
        let decay = [1.0, 1.25, 1.5];
        assert_eq!(swap_multiplier(&weights, &decay, (0, 1)), 1.25);
        assert_eq!(swap_multiplier(&weights, &decay, (1, 2)), 1.5);
    }

    #[test]
    fn fidelity_weights_change_routing_but_stay_valid() {
        let arch = devices::grid(3, 3);
        let lookahead = WindowLookahead::sabre_default();
        let decay = AdditiveDecay::sabre_default();
        let uniform = CouplerWeights::uniform();
        let weighted = CouplerWeights::fidelity_derived(arch.coupling_graph(), 3);
        let pu = policies(&lookahead, &decay, &SeededRandomTies, &uniform);
        let pw = policies(&lookahead, &decay, &SeededRandomTies, &weighted);
        let (a, _) = route_once(&pu, 0);
        let (b, _) = route_once(&pw, 0);
        // Both routings must be complete (same two-qubit gate count modulo
        // SWAPs); the weighted one is allowed to differ.
        let swaps = |c: &Circuit| c.gates().iter().filter(|g| g.is_swap()).count();
        assert!(swaps(&a) < a.gates().len());
        assert!(swaps(&b) < b.gates().len());
    }

    #[test]
    fn identity_placement_is_trivial_on_trial_zero() {
        let arch = devices::grid(3, 3);
        let circuit = test_circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = IdentityPlacement.place(0, &circuit, &arch, &mut rng);
        for q in 0..circuit.num_qubits() {
            assert_eq!(m.physical(q), q);
        }
        let r = IdentityPlacement.place(1, &circuit, &arch, &mut rng);
        assert!(r.is_consistent());
    }
}
