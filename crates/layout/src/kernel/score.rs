//! Incremental SWAP scoring.
//!
//! The pre-kernel routers rescanned every front and extended-set gate for
//! every candidate SWAP of every decision — O(couplers × (front + extended))
//! per decision. A [`SwapScorer`] instead snapshots the scored gates once
//! per front change (`prepare`), maintains the running front/extended
//! distance sums across applied SWAPs (`apply`), and evaluates a candidate
//! as a delta over only the gates touching the two swapped physical qubits
//! (`swap_cost` / `front_total`) — O(gates-touching-the-two-qubits).
//!
//! Exactness: hop distances are small integers, so the running sums and
//! deltas are exact in `f64` and a delta-evaluated score is bit-identical
//! to a full rescan under uniform extended-set weighting (the Qiskit
//! default). With a `lookahead_decay` the weights are non-integral and the
//! accumulation order can differ from a rescan in the last ulp; routing
//! decisions may then differ only on exact score ties.

use crate::kernel::scratch::StampSet;
use crate::mapping::Mapping;
use qubikos_arch::Architecture;
use qubikos_circuit::{DagNodeId, DependencyDag};
use qubikos_graph::NodeId;

/// Weighting of the extended-set (lookahead) term, mirroring
/// [`SabreConfig`](crate::SabreConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreParams {
    /// Weight of the extended-set term (0.0 disables lookahead).
    pub extended_set_weight: f64,
    /// Optional geometric decay across the extended set: gate `i` weighs
    /// `decay^i`. `None` is uniform weighting.
    pub lookahead_decay: Option<f64>,
}

impl ScoreParams {
    /// Parameters for a front-only scorer (t|ket⟩-style: no lookahead).
    pub fn front_only() -> Self {
        ScoreParams {
            extended_set_weight: 0.0,
            lookahead_decay: None,
        }
    }
}

/// One scored gate: its current physical endpoints, distance, and weight.
#[derive(Debug, Clone, Copy)]
struct Entry {
    phys_a: NodeId,
    phys_b: NodeId,
    dist: usize,
    /// Extended-set weight (`decay^i` or 1.0); unused for front entries.
    weight: f64,
    is_front: bool,
}

/// Incremental scorer for candidate SWAPs against the current front and
/// extended set. See the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct SwapScorer {
    entries: Vec<Entry>,
    /// `touch[p]` = indices of entries with a physical endpoint on `p`.
    touch: Vec<Vec<u32>>,
    /// Physical qubits whose `touch`/`front_active` state is set (for O(touched) clearing).
    touched_phys: Vec<NodeId>,
    /// `front_active[p]`: some *front* gate has an endpoint on `p` — the
    /// candidate-SWAP activity rule.
    front_active: Vec<bool>,
    /// Number of front gates (the denominator of the basic term).
    front_len: usize,
    /// Running sum of front-gate distances (integer-valued, hence exact).
    front_sum: f64,
    /// Running weighted sum of extended-set distances.
    ext_sum: f64,
    /// Sum of extended-set weights (the lookahead denominator).
    ext_weight_sum: f64,
    /// Per-candidate dedupe of entries touching both swapped qubits.
    mark: StampSet,
}

impl SwapScorer {
    /// A scorer with no gates loaded; call [`Self::prepare`] before scoring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the scored gates for the current `front` and `extended`
    /// sets under `mapping`. Must be called after every front change (and
    /// after any mapping change not reported through [`Self::apply`]).
    pub fn prepare(
        &mut self,
        front: &[DagNodeId],
        extended: &[DagNodeId],
        dag: &DependencyDag,
        mapping: &Mapping,
        arch: &Architecture,
        params: &ScoreParams,
    ) {
        for &p in &self.touched_phys {
            self.touch[p].clear();
            self.front_active[p] = false;
        }
        self.touched_phys.clear();
        if self.touch.len() < arch.num_qubits() {
            self.touch.resize(arch.num_qubits(), Vec::new());
            self.front_active.resize(arch.num_qubits(), false);
        }
        self.entries.clear();
        self.front_len = front.len();
        self.front_sum = 0.0;
        self.ext_sum = 0.0;
        self.ext_weight_sum = 0.0;

        for &node in front {
            let (pa, pb) = self.push_entry(node, dag, mapping, arch, 1.0, true);
            self.front_active[pa] = true;
            self.front_active[pb] = true;
        }
        for (i, &node) in extended.iter().enumerate() {
            let weight = match params.lookahead_decay {
                Some(d) => d.powi(i as i32),
                None => 1.0,
            };
            self.push_entry(node, dag, mapping, arch, weight, false);
        }
    }

    fn push_entry(
        &mut self,
        node: DagNodeId,
        dag: &DependencyDag,
        mapping: &Mapping,
        arch: &Architecture,
        weight: f64,
        is_front: bool,
    ) -> (NodeId, NodeId) {
        let (a, b) = dag.qubit_pair(node);
        let (pa, pb) = (mapping.physical(a), mapping.physical(b));
        let dist = arch.distance(pa, pb);
        let index = self.entries.len() as u32;
        self.entries.push(Entry {
            phys_a: pa,
            phys_b: pb,
            dist,
            weight,
            is_front,
        });
        if is_front {
            self.front_sum += dist as f64;
        } else {
            self.ext_sum += weight * dist as f64;
            self.ext_weight_sum += weight;
        }
        for p in [pa, pb] {
            if self.touch[p].is_empty() && !self.front_active[p] {
                self.touched_phys.push(p);
            }
            self.touch[p].push(index);
        }
        (pa, pb)
    }

    /// Collects candidate SWAPs into `out`: the coupler edges with at least
    /// one endpoint hosting a qubit of some front gate, in coupler order.
    pub fn candidates_into(&self, arch: &Architecture, out: &mut Vec<(NodeId, NodeId)>) {
        out.clear();
        for edge in arch.couplers() {
            if self.front_active[edge.u] || self.front_active[edge.v] {
                out.push((edge.u, edge.v));
            }
        }
    }

    /// Distance-sum deltas `(Δfront, Δextended)` if `swap` were applied.
    fn deltas(&mut self, swap: (NodeId, NodeId), arch: &Architecture) -> (i64, f64) {
        let (u, v) = swap;
        let resolve = |p: NodeId| {
            if p == u {
                v
            } else if p == v {
                u
            } else {
                p
            }
        };
        self.mark.reset(self.entries.len());
        let mut d_front = 0i64;
        let mut d_ext = 0.0f64;
        for &idx in self.touch[u].iter().chain(self.touch[v].iter()) {
            if !self.mark.insert(idx as usize) {
                continue;
            }
            let entry = self.entries[idx as usize];
            let new_dist = arch.distance(resolve(entry.phys_a), resolve(entry.phys_b));
            if entry.is_front {
                d_front += new_dist as i64 - entry.dist as i64;
            } else {
                d_ext += entry.weight * (new_dist as f64 - entry.dist as f64);
            }
        }
        (d_front, d_ext)
    }

    /// The LightSABRE cost (basic + weighted lookahead, *without* the decay
    /// factor) of applying `swap` to the current mapping. Only meaningful
    /// after a [`Self::prepare`] that loaded at least one front gate (SWAPs
    /// are only scored while some gate is blocked).
    pub fn swap_cost(
        &mut self,
        swap: (NodeId, NodeId),
        arch: &Architecture,
        params: &ScoreParams,
    ) -> f64 {
        let (d_front, d_ext) = self.deltas(swap, arch);
        let basic = (self.front_sum + d_front as f64) / self.front_len as f64;
        let lookahead = if self.ext_weight_sum == 0.0 {
            0.0
        } else {
            params.extended_set_weight * (self.ext_sum + d_ext) / self.ext_weight_sum
        };
        basic + lookahead
    }

    /// The summed front-gate distance (an integer) if `swap` were applied —
    /// the t|ket⟩-style greedy objective.
    pub fn front_total(&mut self, swap: (NodeId, NodeId), arch: &Architecture) -> i64 {
        let (d_front, _) = self.deltas(swap, arch);
        self.front_sum as i64 + d_front
    }

    /// Commits `swap` (already applied to the mapping by the caller): updates
    /// entry endpoints/distances, the running sums, and the per-qubit touch
    /// lists, in O(gates touching the swapped qubits).
    pub fn apply(&mut self, swap: (NodeId, NodeId), arch: &Architecture) {
        let (u, v) = swap;
        let resolve = |p: NodeId| {
            if p == u {
                v
            } else if p == v {
                u
            } else {
                p
            }
        };
        self.mark.reset(self.entries.len());
        // Collect indices first: the touch lists for u and v swap wholesale
        // below (an entry on u is on v afterwards and vice versa).
        for list in [u, v] {
            for i in 0..self.touch[list].len() {
                let idx = self.touch[list][i] as usize;
                if !self.mark.insert(idx) {
                    continue;
                }
                let entry = &mut self.entries[idx];
                entry.phys_a = resolve(entry.phys_a);
                entry.phys_b = resolve(entry.phys_b);
                let new_dist = arch.distance(entry.phys_a, entry.phys_b);
                if entry.is_front {
                    self.front_sum += new_dist as f64 - entry.dist as f64;
                } else {
                    self.ext_sum += entry.weight * (new_dist as f64 - entry.dist as f64);
                }
                entry.dist = new_dist;
            }
        }
        // Track both endpoints before mutating their state so the next
        // prepare() clears them.
        for p in [u, v] {
            if self.touch[p].is_empty() && !self.front_active[p] {
                self.touched_phys.push(p);
            }
        }
        self.touch.swap(u, v);
        self.front_active.swap(u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::{Circuit, Gate};

    /// Brute-force reference: rescan every front/extended gate under the
    /// hypothetical swap, exactly as the pre-kernel SABRE did.
    fn reference_cost(
        swap: (NodeId, NodeId),
        front: &[DagNodeId],
        extended: &[DagNodeId],
        dag: &DependencyDag,
        mapping: &Mapping,
        arch: &Architecture,
        params: &ScoreParams,
    ) -> f64 {
        let resolve = |p: NodeId| {
            if p == swap.0 {
                swap.1
            } else if p == swap.1 {
                swap.0
            } else {
                p
            }
        };
        let gate_distance = |node: DagNodeId| -> f64 {
            let (a, b) = dag.qubit_pair(node);
            arch.distance(resolve(mapping.physical(a)), resolve(mapping.physical(b))) as f64
        };
        let basic: f64 = front.iter().map(|&n| gate_distance(n)).sum::<f64>() / front.len() as f64;
        let lookahead = if extended.is_empty() {
            0.0
        } else {
            let (sum, weights) =
                extended
                    .iter()
                    .enumerate()
                    .fold((0.0f64, 0.0f64), |(sum, weights), (i, &n)| {
                        let w = match params.lookahead_decay {
                            Some(d) => d.powi(i as i32),
                            None => 1.0,
                        };
                        (sum + w * gate_distance(n), weights + w)
                    });
            params.extended_set_weight * sum / weights
        };
        basic + lookahead
    }

    fn setup() -> (Architecture, DependencyDag, Mapping) {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(
            6,
            [
                Gate::cx(0, 5),
                Gate::cx(1, 4),
                Gate::cx(2, 3),
                Gate::cx(0, 3),
                Gate::cx(4, 5),
            ],
        );
        let dag = DependencyDag::from_circuit(&circuit);
        let mapping = Mapping::from_prog_to_phys(vec![0, 4, 8, 2, 6, 7], 9);
        (arch, dag, mapping)
    }

    #[test]
    fn delta_scores_match_full_rescan() {
        let (arch, dag, mapping) = setup();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: None,
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let fast = scorer.swap_cost(swap, &arch, &params);
            let slow = reference_cost(swap, &front, &extended, &dag, &mapping, &arch, &params);
            assert_eq!(fast, slow, "swap {swap:?} diverged");
        }
    }

    #[test]
    fn delta_scores_match_rescan_with_lookahead_decay() {
        let (arch, dag, mapping) = setup();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: Some(0.8),
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let fast = scorer.swap_cost(swap, &arch, &params);
            let slow = reference_cost(swap, &front, &extended, &dag, &mapping, &arch, &params);
            assert!(
                (fast - slow).abs() < 1e-9,
                "swap {swap:?}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn apply_keeps_scores_consistent_across_swap_chains() {
        let (arch, dag, mut mapping) = setup();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: None,
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        // Apply a chain of swaps; after each, delta scores must still match
        // a fresh rescan of the *new* mapping.
        for swap in [(0usize, 1usize), (4, 5), (1, 2), (0, 3)] {
            mapping.apply_swap_physical(swap.0, swap.1);
            scorer.apply(swap, &arch);
            for edge in arch.couplers() {
                let candidate = (edge.u, edge.v);
                let fast = scorer.swap_cost(candidate, &arch, &params);
                let slow =
                    reference_cost(candidate, &front, &extended, &dag, &mapping, &arch, &params);
                assert_eq!(fast, slow, "after {swap:?}, candidate {candidate:?}");
            }
        }
    }

    #[test]
    fn front_total_matches_reference_sum() {
        let (arch, dag, mapping) = setup();
        let front = [0, 1, 2];
        let mut scorer = SwapScorer::new();
        scorer.prepare(
            &front,
            &[],
            &dag,
            &mapping,
            &arch,
            &ScoreParams::front_only(),
        );
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let resolve = |p: NodeId| {
                if p == swap.0 {
                    swap.1
                } else if p == swap.1 {
                    swap.0
                } else {
                    p
                }
            };
            let reference: i64 = front
                .iter()
                .map(|&n| {
                    let (a, b) = dag.qubit_pair(n);
                    arch.distance(resolve(mapping.physical(a)), resolve(mapping.physical(b))) as i64
                })
                .sum();
            assert_eq!(scorer.front_total(swap, &arch), reference);
        }
    }

    #[test]
    fn candidates_cover_exactly_the_active_couplers() {
        let (arch, dag, mapping) = setup();
        let front = [0];
        let mut scorer = SwapScorer::new();
        scorer.prepare(
            &front,
            &[],
            &dag,
            &mapping,
            &arch,
            &ScoreParams::front_only(),
        );
        let mut candidates = Vec::new();
        scorer.candidates_into(&arch, &mut candidates);
        let (a, b) = dag.qubit_pair(0);
        let (pa, pb) = (mapping.physical(a), mapping.physical(b));
        for edge in arch.couplers() {
            let expected = edge.u == pa || edge.u == pb || edge.v == pa || edge.v == pb;
            assert_eq!(candidates.contains(&(edge.u, edge.v)), expected);
        }
    }
}
