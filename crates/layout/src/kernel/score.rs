//! Incremental SWAP scoring.
//!
//! The pre-kernel routers rescanned every front and extended-set gate for
//! every candidate SWAP of every decision — O(couplers × (front + extended))
//! per decision. A [`SwapScorer`] instead snapshots the scored gates once
//! per front change (`prepare`), maintains the running front/extended
//! distance sums across applied SWAPs (`apply`), and evaluates a candidate
//! as a delta over only the gates touching the two swapped physical qubits
//! (`swap_cost` / `front_total`) — O(gates-touching-the-two-qubits).
//!
//! Exactness: hop distances are small integers, so the running sums and
//! deltas are exact in `f64` and a delta-evaluated score is bit-identical
//! to a full rescan under uniform extended-set weighting (the Qiskit
//! default). With a `lookahead_decay` the weights are non-integral and the
//! accumulation order can differ from a rescan in the last ulp; routing
//! decisions may then differ only on exact score ties.

use crate::kernel::scratch::StampSet;
use crate::mapping::Mapping;
use qubikos_arch::Architecture;
use qubikos_circuit::{DagNodeId, DependencyDag};
use qubikos_graph::{DistanceRow, NodeId};
use std::sync::Arc;

/// Slack added to the pruning threshold so floating-point noise between a
/// bound-side and an exact-side score evaluation can never discard the true
/// argmin or a member of SABRE's 1e-12 tie band. Distances are small
/// integers and scores are O(10), so accumulated ulp error is far below
/// 1e-9; 1e-6 leaves three orders of magnitude of headroom while still
/// pruning everything meaningfully worse than the best upper bound.
const PRUNE_MARGIN: f64 = 1e-6;

/// Weighting of the extended-set (lookahead) term, mirroring
/// [`SabreConfig`](crate::SabreConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreParams {
    /// Weight of the extended-set term (0.0 disables lookahead).
    pub extended_set_weight: f64,
    /// Optional geometric decay across the extended set: gate `i` weighs
    /// `decay^i`. `None` is uniform weighting.
    pub lookahead_decay: Option<f64>,
}

impl ScoreParams {
    /// Parameters for a front-only scorer (t|ket⟩-style: no lookahead).
    pub fn front_only() -> Self {
        ScoreParams {
            extended_set_weight: 0.0,
            lookahead_decay: None,
        }
    }
}

/// One scored gate: its current physical endpoints, distance, and weight.
#[derive(Debug, Clone, Copy)]
struct Entry {
    phys_a: NodeId,
    phys_b: NodeId,
    dist: usize,
    /// Extended-set weight (`decay^i` or 1.0); unused for front entries.
    weight: f64,
    is_front: bool,
}

/// Incremental scorer for candidate SWAPs against the current front and
/// extended set. See the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct SwapScorer {
    entries: Vec<Entry>,
    /// `touch[p]` = indices of entries with a physical endpoint on `p`.
    touch: Vec<Vec<u32>>,
    /// Physical qubits whose `touch`/`front_active` state is set (for O(touched) clearing).
    touched_phys: Vec<NodeId>,
    /// `front_active[p]`: some *front* gate has an endpoint on `p` — the
    /// candidate-SWAP activity rule.
    front_active: Vec<bool>,
    /// Number of front gates (the denominator of the basic term).
    front_len: usize,
    /// Running sum of front-gate distances (integer-valued, hence exact).
    front_sum: f64,
    /// Running weighted sum of extended-set distances.
    ext_sum: f64,
    /// Sum of extended-set weights (the lookahead denominator).
    ext_weight_sum: f64,
    /// Per-candidate dedupe of entries touching both swapped qubits.
    mark: StampSet,
    /// `held_rows[p]` = the distance row from `p`, held for the duration of
    /// the current front (one oracle fetch per source per `prepare` epoch
    /// instead of one point query per candidate pair). Rows are pure graph
    /// data — mapping-independent — so applied SWAPs never invalidate them.
    held_rows: Vec<Option<Arc<[usize]>>>,
    /// Sources with a held row, for O(held) clearing.
    held_list: Vec<NodeId>,
    /// Whether the oracle has a row-cache tier worth holding rows from
    /// (the dense matrix answers point queries in one array read already).
    use_rows: bool,
    /// Physical qubits of the current front gates — the pin set forwarded
    /// to the oracle's row cache, remapped on every [`Self::apply`].
    pin_buf: Vec<NodeId>,
    /// Per-candidate cost brackets for [`Self::prune_candidates`].
    prune_bounds: Vec<(f64, f64)>,
    /// Exact multiplied scores established by the last
    /// [`Self::prune_candidates`], aligned with the surviving candidates
    /// (`None` where some bound was inexact). Valid until the next
    /// [`Self::apply`]/[`Self::prepare`].
    pruned_scores: Vec<Option<f64>>,
}

impl SwapScorer {
    /// A scorer with no gates loaded; call [`Self::prepare`] before scoring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the scored gates for the current `front` and `extended`
    /// sets under `mapping`. Must be called after every front change (and
    /// after any mapping change not reported through [`Self::apply`]).
    pub fn prepare(
        &mut self,
        front: &[DagNodeId],
        extended: &[DagNodeId],
        dag: &DependencyDag,
        mapping: &Mapping,
        arch: &Architecture,
        params: &ScoreParams,
    ) {
        for &p in &self.touched_phys {
            self.touch[p].clear();
            self.front_active[p] = false;
        }
        self.touched_phys.clear();
        for &q in &self.held_list {
            self.held_rows[q] = None;
        }
        self.held_list.clear();
        if self.touch.len() < arch.num_qubits() {
            self.touch.resize(arch.num_qubits(), Vec::new());
            self.front_active.resize(arch.num_qubits(), false);
        }
        if self.held_rows.len() < arch.num_qubits() {
            self.held_rows.resize(arch.num_qubits(), None);
        }
        self.use_rows = arch.oracle().row_tier().is_some();
        self.pruned_scores.clear();
        self.entries.clear();
        self.front_len = front.len();
        self.front_sum = 0.0;
        self.ext_sum = 0.0;
        self.ext_weight_sum = 0.0;

        for &node in front {
            let (pa, pb) = self.push_entry(node, dag, mapping, arch, 1.0, true);
            self.front_active[pa] = true;
            self.front_active[pb] = true;
        }
        for (i, &node) in extended.iter().enumerate() {
            let weight = match params.lookahead_decay {
                Some(d) => d.powi(i as i32),
                None => 1.0,
            };
            self.push_entry(node, dag, mapping, arch, weight, false);
        }

        // Kernel→oracle hint channel: pin the front qubits' rows so the
        // sources every candidate scan touches survive LRU eviction.
        if self.use_rows {
            self.pin_buf.clear();
            for &p in &self.touched_phys {
                if self.front_active[p] {
                    self.pin_buf.push(p);
                }
            }
            arch.pin_distance_sources(&self.pin_buf);
        }
    }

    fn push_entry(
        &mut self,
        node: DagNodeId,
        dag: &DependencyDag,
        mapping: &Mapping,
        arch: &Architecture,
        weight: f64,
        is_front: bool,
    ) -> (NodeId, NodeId) {
        let (a, b) = dag.qubit_pair(node);
        let (pa, pb) = (mapping.physical(a), mapping.physical(b));
        let dist = arch.distance(pa, pb);
        let index = self.entries.len() as u32;
        self.entries.push(Entry {
            phys_a: pa,
            phys_b: pb,
            dist,
            weight,
            is_front,
        });
        if is_front {
            self.front_sum += dist as f64;
        } else {
            self.ext_sum += weight * dist as f64;
            self.ext_weight_sum += weight;
        }
        for p in [pa, pb] {
            if self.touch[p].is_empty() && !self.front_active[p] {
                self.touched_phys.push(p);
            }
            self.touch[p].push(index);
        }
        (pa, pb)
    }

    /// Collects candidate SWAPs into `out`: the coupler edges with at least
    /// one endpoint hosting a qubit of some front gate, in coupler order.
    pub fn candidates_into(&self, arch: &Architecture, out: &mut Vec<(NodeId, NodeId)>) {
        out.clear();
        for edge in arch.couplers() {
            if self.front_active[edge.u] || self.front_active[edge.v] {
                out.push((edge.u, edge.v));
            }
        }
    }

    /// The row of distances from `q`, fetched from the oracle at most once
    /// per `prepare` epoch and held across the whole candidate scan.
    fn held_row(&mut self, q: NodeId, arch: &Architecture) -> &[usize] {
        if self.held_rows[q].is_none() {
            let row: Arc<[usize]> = match arch.distance_row(q) {
                DistanceRow::Shared(row) => row,
                DistanceRow::Borrowed(row) => Arc::from(row),
            };
            self.held_rows[q] = Some(row);
            self.held_list.push(q);
        }
        self.held_rows[q].as_deref().expect("just inserted")
    }

    /// The distance of `entry`'s gate if `(u, v)` were swapped.
    ///
    /// Every touched entry has at least one endpoint on `u` or `v`. If both
    /// endpoints move they exchange positions and the distance is
    /// unchanged; otherwise exactly one endpoint is fixed, and the held row
    /// of that *fixed* endpoint answers the query — so a whole candidate
    /// scan costs one row fetch per distinct gate endpoint instead of one
    /// oracle point query per (candidate × touched gate) pair.
    fn new_dist(&mut self, entry: Entry, u: NodeId, v: NodeId, arch: &Architecture) -> usize {
        let a_moved = entry.phys_a == u || entry.phys_a == v;
        let b_moved = entry.phys_b == u || entry.phys_b == v;
        match (a_moved, b_moved) {
            (true, true) | (false, false) => entry.dist,
            (true, false) => {
                let new_a = if entry.phys_a == u { v } else { u };
                if self.use_rows {
                    self.held_row(entry.phys_b, arch)[new_a]
                } else {
                    arch.distance(new_a, entry.phys_b)
                }
            }
            (false, true) => {
                let new_b = if entry.phys_b == u { v } else { u };
                if self.use_rows {
                    self.held_row(entry.phys_a, arch)[new_b]
                } else {
                    arch.distance(entry.phys_a, new_b)
                }
            }
        }
    }

    /// Distance-sum deltas `(Δfront, Δextended)` if `swap` were applied.
    fn deltas(&mut self, swap: (NodeId, NodeId), arch: &Architecture) -> (i64, f64) {
        let (u, v) = swap;
        self.mark.reset(self.entries.len());
        let mut d_front = 0i64;
        let mut d_ext = 0.0f64;
        for side in [u, v] {
            for i in 0..self.touch[side].len() {
                let idx = self.touch[side][i] as usize;
                if !self.mark.insert(idx) {
                    continue;
                }
                let entry = self.entries[idx];
                let new_dist = self.new_dist(entry, u, v, arch);
                if entry.is_front {
                    d_front += new_dist as i64 - entry.dist as i64;
                } else {
                    d_ext += entry.weight * (new_dist as f64 - entry.dist as f64);
                }
            }
        }
        (d_front, d_ext)
    }

    /// The LightSABRE cost (basic + weighted lookahead, *without* the decay
    /// factor) of applying `swap` to the current mapping. Only meaningful
    /// after a [`Self::prepare`] that loaded at least one front gate (SWAPs
    /// are only scored while some gate is blocked).
    pub fn swap_cost(
        &mut self,
        swap: (NodeId, NodeId),
        arch: &Architecture,
        params: &ScoreParams,
    ) -> f64 {
        let (d_front, d_ext) = self.deltas(swap, arch);
        let basic = (self.front_sum + d_front as f64) / self.front_len as f64;
        let lookahead = if self.ext_weight_sum == 0.0 {
            0.0
        } else {
            params.extended_set_weight * (self.ext_sum + d_ext) / self.ext_weight_sum
        };
        basic + lookahead
    }

    /// The summed front-gate distance (an integer) if `swap` were applied —
    /// the t|ket⟩-style greedy objective.
    pub fn front_total(&mut self, swap: (NodeId, NodeId), arch: &Architecture) -> i64 {
        let (d_front, _) = self.deltas(swap, arch);
        self.front_sum as i64 + d_front
    }

    /// The bracket `(lower, upper)` containing `entry`'s exact distance
    /// under the hypothetical swap `(u, v)`: exact (and cheap) when the
    /// fixed endpoint's row is held or still resident in the oracle's
    /// row cache — front pinning keeps the per-decision working set warm
    /// precisely so these peeks hit — and a landmark triangle-inequality
    /// bound only for genuinely cold rows, where an O(landmarks) bound
    /// beats a full BFS.
    fn new_dist_bounds(
        &mut self,
        entry: Entry,
        u: NodeId,
        v: NodeId,
        landmark: &qubikos_graph::LandmarkOracle,
    ) -> (usize, usize) {
        let a_moved = entry.phys_a == u || entry.phys_a == v;
        let b_moved = entry.phys_b == u || entry.phys_b == v;
        let (fixed, moved_to) = match (a_moved, b_moved) {
            (true, true) | (false, false) => return (entry.dist, entry.dist),
            (true, false) => (entry.phys_b, if entry.phys_a == u { v } else { u }),
            (false, true) => (entry.phys_a, if entry.phys_b == u { v } else { u }),
        };
        if self.held_rows[fixed].is_none() {
            if let Some(row) = landmark.exact().cached_row(fixed) {
                self.held_rows[fixed] = Some(row);
                self.held_list.push(fixed);
            }
        }
        match &self.held_rows[fixed] {
            Some(row) => {
                let d = row[moved_to];
                (d, d)
            }
            None => landmark.bounds(fixed, moved_to),
        }
    }

    /// Discards candidates the landmark bounds prove cannot win, keeping
    /// routing bit-identical to an unpruned scan.
    ///
    /// For every candidate the scorer brackets `multiplier(c) ×
    /// swap_cost(c)` between a lower and an upper bound (exact held or
    /// cache-resident rows where available, landmark triangle-inequality
    /// bounds elsewhere),
    /// then retains — in original order — exactly the candidates whose
    /// lower bound is within [`PRUNE_MARGIN`] of the smallest upper bound.
    ///
    /// Why this can never change a routing decision:
    ///
    /// * The bracket is sound: landmark bounds contain the exact distance,
    ///   and every weight/multiplier is non-negative, so the exact score of
    ///   every candidate lies inside its bracket (up to ulp-level float
    ///   noise, absorbed by the margin).
    /// * A pruned candidate `c` satisfies `lower(c) > min_upper + margin ≥
    ///   exact(best) + margin`, so `exact(c) > exact(best) + margin` —
    ///   strictly worse than the winner by far more than SABRE's 1e-12 tie
    ///   epsilon. The exact argmin and its entire tie band survive.
    /// * Retention preserves candidate order, so first-minimum selection
    ///   (t|ket⟩) and the tie-set contents fed to the seeded RNG (SABRE)
    ///   are unchanged, leaving the RNG stream untouched.
    ///
    /// `multiplier` must be non-negative (SABRE's decay factors and the
    /// constant 1 both are). A no-op unless the architecture's oracle has a
    /// landmark tier. The surviving count is recorded on the oracle as
    /// `exact_fallbacks` — these are the candidates that proceed to exact
    /// scoring.
    pub fn prune_candidates(
        &mut self,
        candidates: &mut Vec<(NodeId, NodeId)>,
        arch: &Architecture,
        params: &ScoreParams,
        mut multiplier: impl FnMut((NodeId, NodeId)) -> f64,
    ) {
        self.pruned_scores.clear();
        let Some(landmark) = arch.oracle().landmark() else {
            return;
        };
        if candidates.len() > 1 {
            self.prune_bounds.clear();
            let mut min_upper = f64::INFINITY;
            for &(u, v) in candidates.iter() {
                self.mark.reset(self.entries.len());
                let mut front_lo = 0i64;
                let mut front_hi = 0i64;
                let mut ext_lo = 0.0f64;
                let mut ext_hi = 0.0f64;
                for side in [u, v] {
                    for i in 0..self.touch[side].len() {
                        let idx = self.touch[side][i] as usize;
                        if !self.mark.insert(idx) {
                            continue;
                        }
                        let entry = self.entries[idx];
                        let (lo, hi) = self.new_dist_bounds(entry, u, v, landmark);
                        if entry.is_front {
                            front_lo += lo as i64 - entry.dist as i64;
                            front_hi += hi as i64 - entry.dist as i64;
                        } else {
                            ext_lo += entry.weight * (lo as f64 - entry.dist as f64);
                            ext_hi += entry.weight * (hi as f64 - entry.dist as f64);
                        }
                    }
                }
                let cost = |d_front: i64, d_ext: f64| {
                    let basic = (self.front_sum + d_front as f64) / self.front_len as f64;
                    let lookahead = if self.ext_weight_sum == 0.0 {
                        0.0
                    } else {
                        params.extended_set_weight * (self.ext_sum + d_ext) / self.ext_weight_sum
                    };
                    basic + lookahead
                };
                let m = multiplier((u, v));
                debug_assert!(m >= 0.0, "score multipliers must be non-negative");
                let bracket = (m * cost(front_lo, ext_lo), m * cost(front_hi, ext_hi));
                min_upper = min_upper.min(bracket.1);
                self.prune_bounds.push(bracket);
            }
            let threshold = min_upper + PRUNE_MARGIN;
            let mut i = 0;
            let bounds = &self.prune_bounds;
            let scores = &mut self.pruned_scores;
            candidates.retain(|_| {
                let (lo, hi) = bounds[i];
                i += 1;
                let keep = lo <= threshold;
                if keep {
                    // A point bracket means every accumulated bound was
                    // exact, so `lo` is bitwise the multiplied score the
                    // exact scan would recompute — record it for reuse.
                    scores.push((lo == hi).then_some(lo));
                }
                keep
            });
        }
        landmark.record_exact_fallbacks(candidates.len() as u64);
    }

    /// The exact `multiplier × swap_cost` score the last
    /// [`Self::prune_candidates`] established for the `index`-th *surviving*
    /// candidate, when every distance bound it accumulated was exact (held
    /// or cache-resident rows throughout). The value is bitwise identical
    /// to recomputing the score — same accumulation order, same float ops —
    /// so callers can skip the exact rescan without perturbing tie bands.
    /// `None` when some bound was inexact or no prune ran; stale after the
    /// next [`Self::apply`]/[`Self::prepare`].
    pub fn pruned_score(&self, index: usize) -> Option<f64> {
        self.pruned_scores.get(index).copied().flatten()
    }

    /// Commits `swap` (already applied to the mapping by the caller): updates
    /// entry endpoints/distances, the running sums, and the per-qubit touch
    /// lists, in O(gates touching the swapped qubits).
    pub fn apply(&mut self, swap: (NodeId, NodeId), arch: &Architecture) {
        self.pruned_scores.clear();
        let (u, v) = swap;
        let resolve = |p: NodeId| {
            if p == u {
                v
            } else if p == v {
                u
            } else {
                p
            }
        };
        self.mark.reset(self.entries.len());
        // Collect indices first: the touch lists for u and v swap wholesale
        // below (an entry on u is on v afterwards and vice versa).
        for list in [u, v] {
            for i in 0..self.touch[list].len() {
                let idx = self.touch[list][i] as usize;
                if !self.mark.insert(idx) {
                    continue;
                }
                let entry = self.entries[idx];
                let new_dist = self.new_dist(entry, u, v, arch);
                let delta_front = new_dist as f64 - entry.dist as f64;
                let updated = &mut self.entries[idx];
                updated.phys_a = resolve(entry.phys_a);
                updated.phys_b = resolve(entry.phys_b);
                updated.dist = new_dist;
                if entry.is_front {
                    self.front_sum += delta_front;
                } else {
                    self.ext_sum += entry.weight * delta_front;
                }
            }
        }
        // Track both endpoints before mutating their state so the next
        // prepare() clears them.
        for p in [u, v] {
            if self.touch[p].is_empty() && !self.front_active[p] {
                self.touched_phys.push(p);
            }
        }
        self.touch.swap(u, v);
        self.front_active.swap(u, v);

        // Keep the pin set tracking the front: a pinned qubit that moved in
        // this swap now lives on the other physical qubit.
        if self.use_rows && !self.pin_buf.is_empty() {
            let mut changed = false;
            for p in &mut self.pin_buf {
                if *p == u {
                    *p = v;
                    changed = true;
                } else if *p == v {
                    *p = u;
                    changed = true;
                }
            }
            if changed {
                arch.pin_distance_sources(&self.pin_buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_circuit::{Circuit, Gate};

    /// Brute-force reference: rescan every front/extended gate under the
    /// hypothetical swap, exactly as the pre-kernel SABRE did.
    fn reference_cost(
        swap: (NodeId, NodeId),
        front: &[DagNodeId],
        extended: &[DagNodeId],
        dag: &DependencyDag,
        mapping: &Mapping,
        arch: &Architecture,
        params: &ScoreParams,
    ) -> f64 {
        let resolve = |p: NodeId| {
            if p == swap.0 {
                swap.1
            } else if p == swap.1 {
                swap.0
            } else {
                p
            }
        };
        let gate_distance = |node: DagNodeId| -> f64 {
            let (a, b) = dag.qubit_pair(node);
            arch.distance(resolve(mapping.physical(a)), resolve(mapping.physical(b))) as f64
        };
        let basic: f64 = front.iter().map(|&n| gate_distance(n)).sum::<f64>() / front.len() as f64;
        let lookahead = if extended.is_empty() {
            0.0
        } else {
            let (sum, weights) =
                extended
                    .iter()
                    .enumerate()
                    .fold((0.0f64, 0.0f64), |(sum, weights), (i, &n)| {
                        let w = match params.lookahead_decay {
                            Some(d) => d.powi(i as i32),
                            None => 1.0,
                        };
                        (sum + w * gate_distance(n), weights + w)
                    });
            params.extended_set_weight * sum / weights
        };
        basic + lookahead
    }

    fn setup() -> (Architecture, DependencyDag, Mapping) {
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(
            6,
            [
                Gate::cx(0, 5),
                Gate::cx(1, 4),
                Gate::cx(2, 3),
                Gate::cx(0, 3),
                Gate::cx(4, 5),
            ],
        );
        let dag = DependencyDag::from_circuit(&circuit);
        let mapping = Mapping::from_prog_to_phys(vec![0, 4, 8, 2, 6, 7], 9);
        (arch, dag, mapping)
    }

    #[test]
    fn delta_scores_match_full_rescan() {
        let (arch, dag, mapping) = setup();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: None,
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let fast = scorer.swap_cost(swap, &arch, &params);
            let slow = reference_cost(swap, &front, &extended, &dag, &mapping, &arch, &params);
            assert_eq!(fast, slow, "swap {swap:?} diverged");
        }
    }

    #[test]
    fn delta_scores_match_rescan_with_lookahead_decay() {
        let (arch, dag, mapping) = setup();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: Some(0.8),
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let fast = scorer.swap_cost(swap, &arch, &params);
            let slow = reference_cost(swap, &front, &extended, &dag, &mapping, &arch, &params);
            assert!(
                (fast - slow).abs() < 1e-9,
                "swap {swap:?}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn apply_keeps_scores_consistent_across_swap_chains() {
        let (arch, dag, mut mapping) = setup();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: None,
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        // Apply a chain of swaps; after each, delta scores must still match
        // a fresh rescan of the *new* mapping.
        for swap in [(0usize, 1usize), (4, 5), (1, 2), (0, 3)] {
            mapping.apply_swap_physical(swap.0, swap.1);
            scorer.apply(swap, &arch);
            for edge in arch.couplers() {
                let candidate = (edge.u, edge.v);
                let fast = scorer.swap_cost(candidate, &arch, &params);
                let slow =
                    reference_cost(candidate, &front, &extended, &dag, &mapping, &arch, &params);
                assert_eq!(fast, slow, "after {swap:?}, candidate {candidate:?}");
            }
        }
    }

    #[test]
    fn front_total_matches_reference_sum() {
        let (arch, dag, mapping) = setup();
        let front = [0, 1, 2];
        let mut scorer = SwapScorer::new();
        scorer.prepare(
            &front,
            &[],
            &dag,
            &mapping,
            &arch,
            &ScoreParams::front_only(),
        );
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let resolve = |p: NodeId| {
                if p == swap.0 {
                    swap.1
                } else if p == swap.1 {
                    swap.0
                } else {
                    p
                }
            };
            let reference: i64 = front
                .iter()
                .map(|&n| {
                    let (a, b) = dag.qubit_pair(n);
                    arch.distance(resolve(mapping.physical(a)), resolve(mapping.physical(b))) as i64
                })
                .sum();
            assert_eq!(scorer.front_total(swap, &arch), reference);
        }
    }

    /// The same fixture as [`setup`], but on a landmark-backed oracle so
    /// the held-row and pruning paths are exercised.
    fn setup_landmark() -> (Architecture, DependencyDag, Mapping) {
        let (dense, dag, mapping) = setup();
        let arch = Architecture::with_oracle(
            dense.name(),
            dense.coupling_graph().clone(),
            qubikos_graph::OracleKind::Landmark,
        )
        .expect("connected");
        (arch, dag, mapping)
    }

    #[test]
    fn held_row_scores_match_rescan_on_landmark_oracle() {
        let (arch, dag, mut mapping) = setup_landmark();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: None,
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        for edge in arch.couplers() {
            let swap = (edge.u, edge.v);
            let fast = scorer.swap_cost(swap, &arch, &params);
            let slow = reference_cost(swap, &front, &extended, &dag, &mapping, &arch, &params);
            assert_eq!(fast, slow, "swap {swap:?} diverged");
        }
        // Row economy: a full candidate scan used at most one row fetch per
        // distinct gate endpoint, not one point query per candidate pair.
        let stats = arch.oracle_stats();
        assert!(stats.rows_computed <= 12, "rows {}", stats.rows_computed);
        // The front qubits were pinned through the hint channel.
        let tier = arch.oracle().row_tier().expect("landmark-backed");
        assert_eq!(tier.pinned_nodes(), 6);
        // Scores stay consistent across applied swaps (held rows are graph
        // data and survive mapping changes).
        for swap in [(0usize, 1usize), (4, 5), (1, 2)] {
            mapping.apply_swap_physical(swap.0, swap.1);
            scorer.apply(swap, &arch);
            for edge in arch.couplers() {
                let candidate = (edge.u, edge.v);
                let fast = scorer.swap_cost(candidate, &arch, &params);
                let slow =
                    reference_cost(candidate, &front, &extended, &dag, &mapping, &arch, &params);
                assert_eq!(fast, slow, "after {swap:?}, candidate {candidate:?}");
            }
        }
    }

    #[test]
    fn pruning_keeps_the_exact_argmin_and_tie_band_in_order() {
        let (arch, dag, mapping) = setup_landmark();
        let front = [0, 1, 2];
        let extended = [3, 4];
        let params = ScoreParams {
            extended_set_weight: 0.5,
            lookahead_decay: None,
        };
        let mut scorer = SwapScorer::new();
        scorer.prepare(&front, &extended, &dag, &mapping, &arch, &params);
        let mut candidates = Vec::new();
        scorer.candidates_into(&arch, &mut candidates);
        let full = candidates.clone();
        // Exact scores of the unpruned scan.
        let exact: Vec<f64> = full
            .iter()
            .map(|&c| scorer.swap_cost(c, &arch, &params))
            .collect();
        let best = exact.iter().copied().fold(f64::INFINITY, f64::min);
        let tie_band: Vec<(NodeId, NodeId)> = full
            .iter()
            .zip(&exact)
            .filter(|&(_, &s)| (s - best).abs() <= 1e-12)
            .map(|(&c, _)| c)
            .collect();

        scorer.prune_candidates(&mut candidates, &arch, &params, |_| 1.0);
        assert!(!candidates.is_empty());
        // Every tie-band member survives, in the original relative order.
        let mut walk = candidates.iter();
        for tie in &tie_band {
            assert!(
                walk.any(|c| c == tie),
                "tie-band candidate {tie:?} was pruned or reordered"
            );
        }
        // Surviving candidates are a subsequence of the full list.
        let mut full_walk = full.iter();
        for kept in &candidates {
            assert!(full_walk.any(|c| c == kept), "order not preserved");
        }
        // The fallback counter saw the survivors. (The earlier exact scan
        // left every endpoint's row held, so this prune used exact rows and
        // no landmark queries — the tightest possible bounds.)
        let stats = arch.oracle_stats();
        assert_eq!(stats.exact_fallbacks, candidates.len() as u64);
        assert_eq!(stats.landmark_queries, 0);

        // On a cold-cache architecture (cloning resets the row cache) a
        // fresh scorer can't upgrade every bound to an exact resident row,
        // so the same prune must go through the landmark index — and still
        // keep the whole tie band.
        let cold = arch.clone();
        assert_eq!(cold.oracle_stats().landmark_queries, 0);
        let mut fresh = SwapScorer::new();
        fresh.prepare(&front, &extended, &dag, &mapping, &cold, &params);
        let mut fresh_candidates = full.clone();
        fresh.prune_candidates(&mut fresh_candidates, &cold, &params, |_| 1.0);
        assert!(cold.oracle_stats().landmark_queries > 0);
        let mut walk = fresh_candidates.iter();
        for tie in &tie_band {
            assert!(walk.any(|c| c == tie), "landmark prune dropped {tie:?}");
        }

        // Pruning on a dense-oracle architecture is a no-op.
        let (dense, dag_d, mapping_d) = setup();
        let mut scorer_d = SwapScorer::new();
        scorer_d.prepare(&front, &extended, &dag_d, &mapping_d, &dense, &params);
        let mut dense_candidates = Vec::new();
        scorer_d.candidates_into(&dense, &mut dense_candidates);
        let before = dense_candidates.clone();
        scorer_d.prune_candidates(&mut dense_candidates, &dense, &params, |_| 1.0);
        assert_eq!(dense_candidates, before);
    }

    #[test]
    fn candidates_cover_exactly_the_active_couplers() {
        let (arch, dag, mapping) = setup();
        let front = [0];
        let mut scorer = SwapScorer::new();
        scorer.prepare(
            &front,
            &[],
            &dag,
            &mapping,
            &arch,
            &ScoreParams::front_only(),
        );
        let mut candidates = Vec::new();
        scorer.candidates_into(&arch, &mut candidates);
        let (a, b) = dag.qubit_pair(0);
        let (pa, pb) = (mapping.physical(a), mapping.physical(b));
        for edge in arch.couplers() {
            let expected = edge.u == pa || edge.u == pb || edge.v == pa || edge.v == pb;
            assert_eq!(candidates.contains(&(edge.u, edge.v)), expected);
        }
    }
}
