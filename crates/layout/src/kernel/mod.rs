//! The shared incremental routing kernel all four routers are built on.
//!
//! The paper's headline experiment (Figure 4) routes every QUBIKOS circuit
//! through four tools — LightSABRE (§IV-B/C), ML-QLS, QMAP and t|ket⟩ — at
//! up to 1000 trials per circuit, so the router inner loop is the hot path
//! of the whole reproduction. Before this kernel existed each router
//! privately re-implemented front-layer tracking, rebuilt the dependency
//! DAG per pass per trial, and rescanned every front/extended gate for
//! every candidate SWAP. The kernel splits that machinery into three
//! reusable pieces:
//!
//! * [`RoutingProblem`] — everything derivable from the circuit alone,
//!   built **once per route call**: the forward (and, for bidirectional
//!   SABRE passes, reversed) [`DependencyDag`], the attached/trailing
//!   single-qubit gate schedule (dense `Vec` lookups, no hash maps), and
//!   per-qubit gate lists. SABRE's trial loop reuses one problem across
//!   all trials and mapping passes instead of rebuilding DAGs
//!   `trials × mapping_passes` times.
//! * [`FrontTracker`] — the execution front plus remaining-predecessor
//!   counts, and the LightSABRE extended-set BFS with recycled
//!   `seen`/queue scratch buffers instead of fresh allocations per
//!   decision.
//! * [`SwapScorer`] — an incremental scorer that maintains the running
//!   front/extended distance sums and evaluates each candidate SWAP as an
//!   O(gates-touching-the-two-qubits) delta instead of re-summing all
//!   front and extended gates per candidate.
//!
//! Which router reproduces what: [`SabreRouter`](crate::SabreRouter) is the
//! paper's LightSABRE subject (§IV-C case study, lookahead-decay ablation);
//! [`TketRouter`](crate::TketRouter) the t|ket⟩-style greedy baseline;
//! [`AStarRouter`](crate::AStarRouter) the QMAP-style per-layer search;
//! [`MultilevelRouter`](crate::MultilevelRouter) the ML-QLS-style
//! multilevel placement (all compared in Figure 4). New router variants
//! (ablations, additional tools) should be written against this kernel
//! rather than re-deriving the machinery.

pub mod front;
pub mod policy;
pub mod score;
pub mod scratch;

pub use front::FrontTracker;
pub use policy::{
    run_greedy_pass, AdditiveDecay, DecaySchedule, DistanceRefinedTies, GreedyBfsRestarts,
    GreedyPolicies, GreedyScratch, IdentityPlacement, LookaheadPolicy, NoDecay, PlacementStrategy,
    QubitIndexTies, SeededRandomTies, TieBreaker, WindowLookahead,
};
pub use score::{ScoreParams, SwapScorer};
pub use scratch::{ShadowCounts, StampSet};

use crate::mapping::Mapping;
use crate::router::RouteError;
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, DagNodeId, DependencyDag, Gate, QubitId};
use qubikos_graph::NodeId;
use std::cell::Cell;

thread_local! {
    /// Number of [`ProblemView`]s (hence [`DependencyDag`] constructions)
    /// built on this thread — the regression counter behind the
    /// build-DAGs-once-per-route-call guarantee.
    static DAG_BUILDS: Cell<usize> = const { Cell::new(0) };
}

/// Number of dependency-DAG constructions performed by the kernel on the
/// calling thread since it started. Routing is synchronous, so the delta
/// across a `route` call counts exactly its DAG builds; tests use this to
/// pin the builds-once guarantee.
pub fn dag_builds_on_this_thread() -> usize {
    DAG_BUILDS.with(Cell::get)
}

/// One directed view of a routing problem: the dependency DAG of a circuit
/// plus its single-qubit gate schedule and per-qubit gate lists.
#[derive(Debug, Clone)]
pub struct ProblemView {
    dag: DependencyDag,
    /// Single-qubit gates to emit immediately before each DAG node.
    attached: Vec<Vec<Gate>>,
    /// Single-qubit gates after the last two-qubit gate on their qubit.
    trailing: Vec<Gate>,
    /// `gates_on_qubit[q]` = DAG nodes touching program qubit `q`, in
    /// program order.
    gates_on_qubit: Vec<Vec<DagNodeId>>,
}

impl ProblemView {
    fn build(circuit: &Circuit) -> Self {
        DAG_BUILDS.with(|c| c.set(c.get() + 1));
        let dag = DependencyDag::from_circuit(circuit);
        let (attached, trailing) = attach_single_qubit_gates(circuit, &dag);
        let mut gates_on_qubit = vec![Vec::new(); circuit.num_qubits()];
        for node in 0..dag.len() {
            let (a, b) = dag.qubit_pair(node);
            gates_on_qubit[a].push(node);
            gates_on_qubit[b].push(node);
        }
        ProblemView {
            dag,
            attached,
            trailing,
            gates_on_qubit,
        }
    }

    /// The dependency DAG of this view's circuit.
    pub fn dag(&self) -> &DependencyDag {
        &self.dag
    }

    /// Single-qubit gates that must be emitted immediately before `node`.
    pub fn attached(&self, node: DagNodeId) -> &[Gate] {
        &self.attached[node]
    }

    /// Single-qubit gates after the last two-qubit gate on their qubit.
    pub fn trailing(&self) -> &[Gate] {
        &self.trailing
    }

    /// The DAG nodes touching program qubit `q`, in program order.
    pub fn gates_on_qubit(&self, q: QubitId) -> &[DagNodeId] {
        &self.gates_on_qubit[q]
    }

    /// Emits `node`'s attached single-qubit gates followed by the two-qubit
    /// gate itself, all translated to physical qubits under `mapping`.
    pub fn emit(&self, node: DagNodeId, mapping: &Mapping, out: &mut Circuit) {
        for gate in &self.attached[node] {
            out.push(gate.map_qubits(|q| mapping.physical(q)));
        }
        out.push(self.dag.gate(node).map_qubits(|q| mapping.physical(q)));
    }

    /// Emits the trailing single-qubit gates under the final `mapping`.
    pub fn emit_trailing(&self, mapping: &Mapping, out: &mut Circuit) {
        for gate in &self.trailing {
            out.push(gate.map_qubits(|q| mapping.physical(q)));
        }
    }
}

/// The circuit-derived state of one route call, built once and shared by
/// every trial and mapping pass (see the module docs).
#[derive(Debug, Clone)]
pub struct RoutingProblem {
    forward: ProblemView,
    /// Present only for bidirectional problems (SABRE's backward passes).
    reversed: Option<ProblemView>,
}

impl RoutingProblem {
    /// A problem with only the forward view — sufficient for single-pass
    /// routers (t|ket⟩, QMAP, and SABRE with a caller-supplied mapping).
    pub fn forward_only(circuit: &Circuit) -> Self {
        RoutingProblem {
            forward: ProblemView::build(circuit),
            reversed: None,
        }
    }

    /// A problem with both the forward and the reversed view, for routers
    /// running forward–backward mapping passes (SABRE).
    pub fn bidirectional(circuit: &Circuit) -> Self {
        let mut gates: Vec<Gate> = circuit.gates().to_vec();
        gates.reverse();
        let reversed_circuit = Circuit::from_gates(circuit.num_qubits(), gates);
        RoutingProblem {
            forward: ProblemView::build(circuit),
            reversed: Some(ProblemView::build(&reversed_circuit)),
        }
    }

    /// The forward view.
    pub fn forward(&self) -> &ProblemView {
        &self.forward
    }

    /// The reversed view.
    ///
    /// # Panics
    ///
    /// Panics if the problem was built with [`Self::forward_only`].
    pub fn reversed(&self) -> &ProblemView {
        self.reversed
            .as_ref()
            .expect("reversed view requires RoutingProblem::bidirectional")
    }
}

/// Rejects circuits with more program qubits than the device has physical
/// qubits — the fit check shared by every router.
///
/// # Errors
///
/// Returns [`RouteError::TooManyQubits`] when the circuit does not fit.
pub fn check_fit(circuit: &Circuit, arch: &Architecture) -> Result<(), RouteError> {
    if circuit.num_qubits() > arch.num_qubits() {
        Err(RouteError::TooManyQubits {
            program: circuit.num_qubits(),
            physical: arch.num_qubits(),
        })
    } else {
        Ok(())
    }
}

/// Walks program qubit `a` towards program qubit `b` along a shortest path,
/// applying each SWAP to `mapping` and reporting it through `on_swap`, until
/// the two are on coupled physical qubits — the release-valve / stall
/// fallback shared by the greedy routers.
pub fn force_adjacent(
    arch: &Architecture,
    mapping: &mut Mapping,
    a: QubitId,
    b: QubitId,
    mut on_swap: impl FnMut(NodeId, NodeId),
) {
    loop {
        let pa = mapping.physical(a);
        let pb = mapping.physical(b);
        if arch.are_coupled(pa, pb) {
            break;
        }
        // The walk's destination is fixed, so one distance row answers every
        // neighbour comparison along the whole path.
        let to_pb = arch.distance_row(pb);
        let next = arch
            .neighbors(pa)
            .iter()
            .copied()
            .min_by_key(|&n| to_pb[n])
            .expect("connected architecture");
        on_swap(pa, next);
        mapping.apply_swap_physical(pa, next);
    }
}

/// Associates every single-qubit gate with the two-qubit DAG node it must
/// precede (the next two-qubit gate on either of that gate's qubits); gates
/// after the last two-qubit gate on their qubit are returned separately as
/// trailing gates. The circuit-index → DAG-node lookup is a dense `Vec`
/// (circuit indices are bounded by the gate count).
fn attach_single_qubit_gates(
    circuit: &Circuit,
    dag: &DependencyDag,
) -> (Vec<Vec<Gate>>, Vec<Gate>) {
    let mut attached = vec![Vec::new(); dag.len()];
    let mut node_of_circuit_index = vec![usize::MAX; circuit.gate_count()];
    for node in 0..dag.len() {
        node_of_circuit_index[dag.circuit_index(node)] = node;
    }
    let mut pending: Vec<Gate> = Vec::new();
    for (ci, gate) in circuit.iter() {
        if gate.is_two_qubit() {
            let node = node_of_circuit_index[ci];
            let (a, b) = dag.qubit_pair(node);
            pending.retain(|g| {
                if g.acts_on(a) || g.acts_on(b) {
                    attached[node].push(*g);
                    false
                } else {
                    true
                }
            });
        } else {
            pending.push(*gate);
        }
    }
    (attached, pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;

    fn sample_circuit() -> Circuit {
        Circuit::from_gates(
            3,
            [
                Gate::h(0),
                Gate::cx(0, 2),
                Gate::t(2),
                Gate::cx(0, 1),
                Gate::z(1),
            ],
        )
    }

    #[test]
    fn forward_view_attaches_single_qubit_gates() {
        let problem = RoutingProblem::forward_only(&sample_circuit());
        let view = problem.forward();
        assert_eq!(view.dag().len(), 2);
        // h(0) precedes cx(0,2); t(2) precedes... nothing after on qubit 2,
        // but it comes before cx(0,1)? t acts on qubit 2, cx(0,1) acts on
        // 0 and 1, so t(2) is trailing; z(1) is trailing too.
        assert_eq!(view.attached(0), &[Gate::h(0)]);
        assert!(view.attached(1).is_empty());
        assert_eq!(view.trailing(), &[Gate::t(2), Gate::z(1)]);
    }

    #[test]
    fn gates_on_qubit_lists_program_order() {
        let problem = RoutingProblem::forward_only(&sample_circuit());
        let view = problem.forward();
        assert_eq!(view.gates_on_qubit(0), &[0, 1]);
        assert_eq!(view.gates_on_qubit(1), &[1]);
        assert_eq!(view.gates_on_qubit(2), &[0]);
    }

    #[test]
    fn bidirectional_builds_reversed_dag() {
        let problem = RoutingProblem::bidirectional(&sample_circuit());
        assert_eq!(problem.reversed().dag().len(), 2);
        // Reversed program order: cx(0,1) first, then cx(0,2).
        assert_eq!(problem.reversed().dag().qubit_pair(0), (0, 1));
        assert_eq!(problem.reversed().dag().qubit_pair(1), (0, 2));
    }

    #[test]
    #[should_panic(expected = "bidirectional")]
    fn forward_only_has_no_reversed_view() {
        let problem = RoutingProblem::forward_only(&sample_circuit());
        let _ = problem.reversed();
    }

    #[test]
    fn dag_build_counter_counts_views() {
        let before = dag_builds_on_this_thread();
        let _ = RoutingProblem::forward_only(&sample_circuit());
        assert_eq!(dag_builds_on_this_thread(), before + 1);
        let _ = RoutingProblem::bidirectional(&sample_circuit());
        assert_eq!(dag_builds_on_this_thread(), before + 3);
    }

    #[test]
    fn check_fit_accepts_and_rejects() {
        let arch = devices::line(3);
        assert!(check_fit(&Circuit::new(3), &arch).is_ok());
        assert!(matches!(
            check_fit(&Circuit::new(4), &arch),
            Err(RouteError::TooManyQubits {
                program: 4,
                physical: 3
            })
        ));
    }

    #[test]
    fn force_adjacent_walks_a_shortest_path() {
        let arch = devices::line(5);
        let mut mapping = Mapping::identity(5, 5);
        let mut swaps = Vec::new();
        force_adjacent(&arch, &mut mapping, 0, 4, |u, v| swaps.push((u, v)));
        assert_eq!(swaps, vec![(0, 1), (1, 2), (2, 3)]);
        assert!(arch.are_coupled(mapping.physical(0), mapping.physical(4)));
    }

    #[test]
    fn emit_translates_to_physical_qubits() {
        let problem = RoutingProblem::forward_only(&sample_circuit());
        let mapping = Mapping::from_prog_to_phys(vec![3, 1, 0], 4);
        let mut out = Circuit::new(4);
        problem.forward().emit(0, &mapping, &mut out);
        assert_eq!(out.gates(), &[Gate::h(3), Gate::cx(3, 0)]);
        let mut tail = Circuit::new(4);
        problem.forward().emit_trailing(&mapping, &mut tail);
        assert_eq!(tail.gates(), &[Gate::t(0), Gate::z(1)]);
    }
}
