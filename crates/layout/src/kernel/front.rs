//! Front-layer tracking shared by every router.
//!
//! A [`FrontTracker`] owns the execution front of a [`DependencyDag`]: the
//! set of two-qubit gates whose predecessors have all executed, plus the
//! remaining-predecessor counts that define it. It also computes the
//! LightSABRE extended set (a BFS over the gates reachable from the front)
//! using recycled scratch buffers, so the per-decision cost is bounded by
//! the number of nodes the BFS touches rather than the DAG size.

use crate::kernel::scratch::{ShadowCounts, StampSet};
use qubikos_circuit::{DagNodeId, DependencyDag};
use std::collections::VecDeque;

/// Reusable front-layer state for one routing pass.
///
/// One tracker can be reset and reused across passes and trials — all
/// internal buffers (front vectors, BFS queue, visited stamps) keep their
/// allocations across [`FrontTracker::reset`] calls.
#[derive(Debug, Clone, Default)]
pub struct FrontTracker {
    /// `remaining_preds[n]` = predecessors of `n` that have not executed.
    remaining_preds: Vec<usize>,
    /// Current execution front, in the order the SABRE loop advances it
    /// (blocked gates and newly enabled successors interleave).
    front: Vec<DagNodeId>,
    /// Previous front, recycled as iteration scratch by [`Self::advance`].
    scratch: Vec<DagNodeId>,
    /// Output buffer of [`Self::extended_set`].
    extended: Vec<DagNodeId>,
    /// BFS predecessor-count overlay (copy-on-touch over `remaining_preds`).
    ext_counts: ShadowCounts,
    /// BFS visited set.
    ext_seen: StampSet,
    /// BFS queue.
    ext_queue: VecDeque<DagNodeId>,
}

impl FrontTracker {
    /// A tracker with no circuit attached; call [`Self::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Points the tracker at (the start of) `dag`, recycling all buffers.
    pub fn reset(&mut self, dag: &DependencyDag) {
        self.remaining_preds.clear();
        self.remaining_preds
            .extend((0..dag.len()).map(|n| dag.predecessors(n).len()));
        self.front.clear();
        self.front
            .extend((0..dag.len()).filter(|&n| dag.predecessors(n).is_empty()));
    }

    /// The current execution front.
    pub fn front(&self) -> &[DagNodeId] {
        &self.front
    }

    /// Returns `true` when every two-qubit gate has executed.
    pub fn is_done(&self) -> bool {
        self.front.is_empty()
    }

    /// Executes every front gate for which `is_ready` holds, calling
    /// `on_execute` for each in front order, and advances the front:
    /// successors whose last predecessor just executed join the front in
    /// place of the executed gate, blocked gates stay. Returns `true` if at
    /// least one gate executed.
    pub fn advance(
        &mut self,
        dag: &DependencyDag,
        mut is_ready: impl FnMut(DagNodeId) -> bool,
        mut on_execute: impl FnMut(DagNodeId),
    ) -> bool {
        std::mem::swap(&mut self.front, &mut self.scratch);
        self.front.clear();
        let mut executed_any = false;
        for i in 0..self.scratch.len() {
            let node = self.scratch[i];
            if is_ready(node) {
                on_execute(node);
                executed_any = true;
                for &s in dag.successors(node) {
                    self.remaining_preds[s] -= 1;
                    if self.remaining_preds[s] == 0 {
                        self.front.push(s);
                    }
                }
            } else {
                self.front.push(node);
            }
        }
        executed_any
    }

    /// Collects up to `limit` gates reachable from the front layer, in BFS
    /// order over the DAG — the LightSABRE extended set. The returned slice
    /// is valid until the next call on this tracker.
    pub fn extended_set(&mut self, dag: &DependencyDag, limit: usize) -> &[DagNodeId] {
        self.compute_extended_set(dag, limit);
        self.extended()
    }

    /// The extended set computed by the last
    /// [`Self::compute_extended_set`]/[`Self::extended_set`] call.
    pub fn extended(&self) -> &[DagNodeId] {
        &self.extended
    }

    /// [`Self::extended_set`] without returning the slice, so callers can
    /// re-borrow the tracker shared (for [`Self::front`]/[`Self::extended`])
    /// immediately afterwards.
    pub fn compute_extended_set(&mut self, dag: &DependencyDag, limit: usize) {
        self.extended.clear();
        if limit == 0 {
            return;
        }
        self.ext_counts.reset(dag.len());
        self.ext_seen.reset(dag.len());
        self.ext_queue.clear();
        for &f in &self.front {
            self.ext_seen.insert(f);
            self.ext_queue.push_back(f);
        }
        while let Some(node) = self.ext_queue.pop_front() {
            for &s in dag.successors(node) {
                let remaining = self
                    .ext_counts
                    .saturating_decrement(s, &self.remaining_preds);
                if remaining == 0 && self.ext_seen.insert(s) {
                    self.extended.push(s);
                    if self.extended.len() >= limit {
                        return;
                    }
                    self.ext_queue.push_back(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_circuit::{Circuit, Gate};

    fn diamond() -> DependencyDag {
        // g0(0,1) -> g2(1,2); g1(2,3) -> g2; g2 -> g3(0,3)? g3 depends on g0
        // (qubit 0) and g2 (qubit 3 via g1... qubit 3's last gate is g1).
        DependencyDag::from_circuit(&Circuit::from_gates(
            4,
            [
                Gate::cx(0, 1),
                Gate::cx(2, 3),
                Gate::cx(1, 2),
                Gate::cx(0, 3),
            ],
        ))
    }

    #[test]
    fn reset_initialises_front_layer() {
        let dag = diamond();
        let mut tracker = FrontTracker::new();
        tracker.reset(&dag);
        assert_eq!(tracker.front(), &[0, 1]);
        assert!(!tracker.is_done());
    }

    #[test]
    fn advance_executes_ready_gates_and_unlocks_successors() {
        let dag = diamond();
        let mut tracker = FrontTracker::new();
        tracker.reset(&dag);
        let mut executed = Vec::new();
        // Execute only gate 0 first: gate 3 still waits on gate 1.
        let any = tracker.advance(&dag, |n| n == 0, |n| executed.push(n));
        assert!(any);
        assert_eq!(executed, vec![0]);
        assert_eq!(tracker.front(), &[1]);
        // Now execute gate 1; gates 2 and 3 both become ready.
        tracker.advance(&dag, |_| true, |n| executed.push(n));
        assert_eq!(executed, vec![0, 1]);
        assert_eq!(tracker.front(), &[2, 3]);
        tracker.advance(&dag, |_| true, |n| executed.push(n));
        assert!(tracker.is_done());
        assert_eq!(executed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn advance_reports_stall() {
        let dag = diamond();
        let mut tracker = FrontTracker::new();
        tracker.reset(&dag);
        let any = tracker.advance(&dag, |_| false, |_| panic!("nothing executes"));
        assert!(!any);
        assert_eq!(tracker.front(), &[0, 1]);
    }

    #[test]
    fn extended_set_matches_bfs_semantics() {
        let dag = diamond();
        let mut tracker = FrontTracker::new();
        tracker.reset(&dag);
        // From the initial front {0, 1}, both 2 and 3 have all predecessors
        // inside the BFS cone.
        assert_eq!(tracker.extended_set(&dag, 20), &[2, 3]);
        assert_eq!(tracker.extended_set(&dag, 1), &[2]);
        assert!(tracker.extended_set(&dag, 0).is_empty());
    }

    #[test]
    fn extended_set_excludes_gates_blocked_outside_the_cone() {
        // g0(0,1); g1(1,2); g2(2,3): from a front of just g0 the BFS sees g1
        // (its only predecessor is g0) and then g2.
        let dag = DependencyDag::from_circuit(&Circuit::from_gates(
            4,
            [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)],
        ));
        let mut tracker = FrontTracker::new();
        tracker.reset(&dag);
        assert_eq!(tracker.extended_set(&dag, 20), &[1, 2]);
    }

    #[test]
    fn tracker_reuse_across_resets() {
        let dag = diamond();
        let mut tracker = FrontTracker::new();
        for _ in 0..3 {
            tracker.reset(&dag);
            let mut count = 0;
            while !tracker.is_done() {
                tracker.advance(&dag, |_| true, |_| count += 1);
            }
            assert_eq!(count, 4);
        }
    }
}
