//! Recycled scratch buffers for the routing inner loops.
//!
//! Every routing decision needs a "visited" set and a private copy of the
//! remaining-predecessor counts for the extended-set BFS. Allocating fresh
//! `Vec<bool>`/`Vec<usize>` per decision (as the pre-kernel routers did)
//! dominates the cost of small decisions; these buffers amortise that to
//! O(touched) per use via generation stamps and copy-on-first-touch.

/// A reusable membership set over `0..len` backed by generation stamps.
///
/// `reset` is O(1) (it bumps the generation) except when the universe grows
/// or the 32-bit generation counter would wrap, where it falls back to a
/// full clear.
#[derive(Debug, Clone, Default)]
pub struct StampSet {
    stamps: Vec<u32>,
    generation: u32,
}

impl StampSet {
    /// An empty set over an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the set and (re)sizes the universe to `0..len`.
    pub fn reset(&mut self, len: usize) {
        if self.stamps.len() < len {
            self.stamps.resize(len, 0);
        }
        if self.generation == u32::MAX {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Inserts `i`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe set by the last `reset`.
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamps[i] == self.generation {
            false
        } else {
            self.stamps[i] = self.generation;
            true
        }
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.stamps.get(i).is_some_and(|&s| s == self.generation)
    }
}

/// A copy-on-first-touch overlay over a base `&[usize]` of counters.
///
/// The extended-set BFS decrements predecessor counts without mutating the
/// tracker's authoritative counts; this overlay materialises only the
/// entries the BFS actually touches instead of cloning the whole vector
/// per decision.
#[derive(Debug, Clone, Default)]
pub struct ShadowCounts {
    values: Vec<usize>,
    touched: StampSet,
}

impl ShadowCounts {
    /// An empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all overlay entries and (re)sizes the universe to `0..len`.
    pub fn reset(&mut self, len: usize) {
        if self.values.len() < len {
            self.values.resize(len, 0);
        }
        self.touched.reset(len);
    }

    /// Saturating-decrements entry `i`, initialising it from `base[i]` on
    /// first touch, and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe set by the last `reset`.
    pub fn saturating_decrement(&mut self, i: usize, base: &[usize]) -> usize {
        let current = if self.touched.insert(i) {
            base[i]
        } else {
            self.values[i]
        };
        let next = current.saturating_sub(1);
        self.values[i] = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_set_inserts_and_resets() {
        let mut set = StampSet::new();
        set.reset(4);
        assert!(set.insert(2));
        assert!(!set.insert(2));
        assert!(set.contains(2));
        assert!(!set.contains(1));
        set.reset(4);
        assert!(!set.contains(2));
        assert!(set.insert(2));
    }

    #[test]
    fn stamp_set_grows_universe() {
        let mut set = StampSet::new();
        set.reset(2);
        assert!(set.insert(1));
        set.reset(10);
        assert!(!set.contains(1));
        assert!(set.insert(9));
    }

    #[test]
    fn stamp_set_survives_generation_wrap() {
        let mut set = StampSet::new();
        set.reset(3);
        set.insert(0);
        set.generation = u32::MAX; // simulate an ancient stamp state
        set.reset(3);
        assert!(!set.contains(0));
        assert!(set.insert(0));
        assert!(set.contains(0));
    }

    #[test]
    fn shadow_counts_copy_on_first_touch() {
        let base = [3usize, 0, 5];
        let mut shadow = ShadowCounts::new();
        shadow.reset(3);
        assert_eq!(shadow.saturating_decrement(0, &base), 2);
        assert_eq!(shadow.saturating_decrement(0, &base), 1);
        // Entry 1 saturates at zero instead of wrapping.
        assert_eq!(shadow.saturating_decrement(1, &base), 0);
        // Reset forgets the overlay: entry 0 restarts from the base value.
        shadow.reset(3);
        assert_eq!(shadow.saturating_decrement(0, &base), 2);
    }
}
