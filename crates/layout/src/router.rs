//! The [`Router`] trait and the tool registry used by the benchmark harness.

use crate::result::RoutedCircuit;
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors a router can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit uses more program qubits than the device has physical qubits.
    TooManyQubits {
        /// Program qubits required.
        program: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The router failed to make progress (e.g. its search budget was
    /// exhausted before all gates were routed).
    NoProgress {
        /// Human-readable description of where the router got stuck.
        detail: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooManyQubits { program, physical } => write!(
                f,
                "circuit needs {program} qubits but the device only has {physical}"
            ),
            RouteError::NoProgress { detail } => write!(f, "router made no progress: {detail}"),
        }
    }
}

impl Error for RouteError {}

/// A quantum layout-synthesis tool: finds an initial mapping and inserts
/// SWAPs so every two-qubit gate acts on coupled physical qubits.
pub trait Router {
    /// Routes `circuit` onto `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::TooManyQubits`] when the circuit does not fit the
    /// device, or [`RouteError::NoProgress`] if the router's internal search
    /// gives up.
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError>;

    /// Short stable tool name used in reports (e.g. `"lightsabre"`).
    fn name(&self) -> &str;
}

/// The four tools evaluated in the paper, as an enumerable registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToolKind {
    /// SABRE / LightSABRE-style router ([`crate::SabreRouter`]).
    LightSabre,
    /// ML-QLS-style multilevel router ([`crate::MultilevelRouter`]).
    MlQls,
    /// QMAP-style per-layer A* router ([`crate::AStarRouter`]).
    Qmap,
    /// t|ket⟩-style greedy router ([`crate::TketRouter`]).
    Tket,
}

impl ToolKind {
    /// Every tool, in the order the paper reports them.
    pub const ALL: [ToolKind; 4] = [
        ToolKind::LightSabre,
        ToolKind::MlQls,
        ToolKind::Qmap,
        ToolKind::Tket,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            ToolKind::LightSabre => "lightsabre",
            ToolKind::MlQls => "ml-qls",
            ToolKind::Qmap => "qmap",
            ToolKind::Tket => "tket",
        }
    }

    /// Accepted spellings for each tool, for parsing and did-you-mean
    /// suggestions. Both the ASCII and the Unicode spelling of t|ket⟩ are
    /// accepted (reports and docs use the Unicode form).
    const ALIASES: [(&'static str, ToolKind); 11] = [
        ("lightsabre", ToolKind::LightSabre),
        ("sabre", ToolKind::LightSabre),
        ("ml-qls", ToolKind::MlQls),
        ("mlqls", ToolKind::MlQls),
        ("multilevel", ToolKind::MlQls),
        ("qmap", ToolKind::Qmap),
        ("astar", ToolKind::Qmap),
        ("a*", ToolKind::Qmap),
        ("tket", ToolKind::Tket),
        ("t|ket>", ToolKind::Tket),
        ("t|ket⟩", ToolKind::Tket),
    ];

    /// Parses a tool name as accepted by the experiment harness CLIs.
    ///
    /// # Errors
    ///
    /// Returns a [`ToolParseError`] carrying the rejected input and, when a
    /// known spelling is close, a did-you-mean suggestion.
    pub fn parse(name: &str) -> Result<ToolKind, ToolParseError> {
        let lower = name.to_ascii_lowercase();
        if let Some(&(_, kind)) = Self::ALIASES.iter().find(|(alias, _)| *alias == lower) {
            return Ok(kind);
        }
        let suggestion = Self::ALIASES
            .iter()
            .map(|&(alias, _)| (alias, edit_distance(&lower, alias)))
            .min_by_key(|&(alias, d)| (d, alias))
            .filter(|&(alias, d)| d <= 2.max(alias.len() / 3))
            .map(|(alias, _)| alias);
        Err(ToolParseError {
            input: name.to_string(),
            suggestion,
        })
    }

    /// The tool's [`RouterSpec`](crate::RouterSpec) — its definition as a
    /// named composition in the router construction kit.
    pub fn spec(self) -> crate::RouterSpec {
        match self {
            ToolKind::LightSabre => crate::RouterSpec::lightsabre(),
            ToolKind::MlQls => crate::RouterSpec::ml_qls(),
            ToolKind::Qmap => crate::RouterSpec::qmap(),
            ToolKind::Tket => crate::RouterSpec::tket(),
        }
    }

    /// Builds the tool with its default configuration and the given seed —
    /// a thin alias over [`Self::spec`]: the returned router is the named
    /// composition, emitting the same SWAP stream (and the same tool tag)
    /// as the pre-refactor monolithic router.
    pub fn build(self, seed: u64) -> Box<dyn Router + Send + Sync> {
        Box::new(self.spec().build_named(seed, self.name()))
    }
}

/// Error from [`ToolKind::parse`]: the input was not a known tool name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolParseError {
    input: String,
    suggestion: Option<&'static str>,
}

impl ToolParseError {
    /// The rejected input, verbatim.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// The closest known spelling, when one is plausibly intended.
    pub fn suggestion(&self) -> Option<&'static str> {
        self.suggestion
    }

    /// Canonical names of every known tool, for "expected one of" help
    /// text.
    pub fn known_tools() -> impl Iterator<Item = &'static str> {
        ToolKind::ALL.iter().map(|k| k.name())
    }
}

impl fmt::Display for ToolParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown tool `{}`", self.input)?;
        if let Some(suggestion) = self.suggestion {
            write!(f, " (did you mean `{suggestion}`?)")?;
        }
        Ok(())
    }
}

impl Error for ToolParseError {}

/// Levenshtein edit distance, for did-you-mean suggestions on the handful
/// of short tool aliases (the O(a·b) rolling-row version is plenty).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl fmt::Display for ToolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_names_roundtrip() {
        for tool in ToolKind::ALL {
            assert_eq!(ToolKind::parse(tool.name()), Ok(tool));
            assert_eq!(tool.to_string(), tool.name());
        }
        assert_eq!(ToolKind::parse("SABRE"), Ok(ToolKind::LightSabre));
        assert!(ToolKind::parse("nonsense").is_err());
    }

    #[test]
    fn tket_unicode_spelling_round_trips() {
        // The harness CLIs must accept both the ASCII and the Unicode
        // spelling; parsing the accepted name back must stay stable.
        for spelling in ["t|ket>", "t|ket⟩", "tket"] {
            let tool = ToolKind::parse(spelling).expect("accepted spelling");
            assert_eq!(tool, ToolKind::Tket);
            assert_eq!(ToolKind::parse(tool.name()), Ok(tool));
        }
    }

    #[test]
    fn parse_errors_suggest_close_spellings() {
        let err = ToolKind::parse("lightsaber").unwrap_err();
        assert_eq!(err.input(), "lightsaber");
        assert_eq!(err.suggestion(), Some("lightsabre"));
        assert!(err.to_string().contains("did you mean `lightsabre`?"));

        let err = ToolKind::parse("tkt").unwrap_err();
        assert_eq!(err.suggestion(), Some("tket"));

        // Nothing plausible: no suggestion, but the input is echoed.
        let err = ToolKind::parse("zzzzzzzzzzzz").unwrap_err();
        assert_eq!(err.suggestion(), None);
        assert!(err.to_string().contains("zzzzzzzzzzzz"));
        assert!(!err.to_string().contains("did you mean"));

        let known: Vec<&str> = ToolParseError::known_tools().collect();
        assert_eq!(known.len(), ToolKind::ALL.len());
        assert!(known.contains(&"ml-qls"));
    }

    #[test]
    fn build_returns_the_named_composition() {
        for tool in ToolKind::ALL {
            let router = tool.build(7);
            assert_eq!(router.name(), tool.name());
        }
        assert_eq!(ToolKind::LightSabre.spec(), crate::RouterSpec::lightsabre());
        assert_eq!(ToolKind::Tket.spec(), crate::RouterSpec::tket());
        assert_eq!(ToolKind::MlQls.spec(), crate::RouterSpec::ml_qls());
        assert_eq!(ToolKind::Qmap.spec(), crate::RouterSpec::qmap());
    }

    #[test]
    fn route_error_display() {
        let err = RouteError::TooManyQubits {
            program: 10,
            physical: 5,
        };
        assert!(err.to_string().contains("10"));
        let err = RouteError::NoProgress {
            detail: "stuck".into(),
        };
        assert!(err.to_string().contains("stuck"));
    }
}
