//! The [`Router`] trait and the tool registry used by the benchmark harness.

use crate::result::RoutedCircuit;
use qubikos_arch::Architecture;
use qubikos_circuit::Circuit;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors a router can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit uses more program qubits than the device has physical qubits.
    TooManyQubits {
        /// Program qubits required.
        program: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The router failed to make progress (e.g. its search budget was
    /// exhausted before all gates were routed).
    NoProgress {
        /// Human-readable description of where the router got stuck.
        detail: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooManyQubits { program, physical } => write!(
                f,
                "circuit needs {program} qubits but the device only has {physical}"
            ),
            RouteError::NoProgress { detail } => write!(f, "router made no progress: {detail}"),
        }
    }
}

impl Error for RouteError {}

/// A quantum layout-synthesis tool: finds an initial mapping and inserts
/// SWAPs so every two-qubit gate acts on coupled physical qubits.
pub trait Router {
    /// Routes `circuit` onto `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::TooManyQubits`] when the circuit does not fit the
    /// device, or [`RouteError::NoProgress`] if the router's internal search
    /// gives up.
    fn route(&self, circuit: &Circuit, arch: &Architecture) -> Result<RoutedCircuit, RouteError>;

    /// Short stable tool name used in reports (e.g. `"lightsabre"`).
    fn name(&self) -> &str;
}

/// The four tools evaluated in the paper, as an enumerable registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToolKind {
    /// SABRE / LightSABRE-style router ([`crate::SabreRouter`]).
    LightSabre,
    /// ML-QLS-style multilevel router ([`crate::MultilevelRouter`]).
    MlQls,
    /// QMAP-style per-layer A* router ([`crate::AStarRouter`]).
    Qmap,
    /// t|ket⟩-style greedy router ([`crate::TketRouter`]).
    Tket,
}

impl ToolKind {
    /// Every tool, in the order the paper reports them.
    pub const ALL: [ToolKind; 4] = [
        ToolKind::LightSabre,
        ToolKind::MlQls,
        ToolKind::Qmap,
        ToolKind::Tket,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            ToolKind::LightSabre => "lightsabre",
            ToolKind::MlQls => "ml-qls",
            ToolKind::Qmap => "qmap",
            ToolKind::Tket => "tket",
        }
    }

    /// Parses a tool name as accepted by the experiment harness CLIs.
    pub fn parse(name: &str) -> Option<ToolKind> {
        match name.to_ascii_lowercase().as_str() {
            "lightsabre" | "sabre" => Some(ToolKind::LightSabre),
            "ml-qls" | "mlqls" | "multilevel" => Some(ToolKind::MlQls),
            "qmap" | "astar" | "a*" => Some(ToolKind::Qmap),
            // Both the ASCII and the Unicode spelling of t|ket⟩ are accepted
            // (reports and docs use the Unicode form).
            "tket" | "t|ket>" | "t|ket⟩" => Some(ToolKind::Tket),
            _ => None,
        }
    }

    /// Builds the tool with its default configuration and the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Router + Send + Sync> {
        match self {
            ToolKind::LightSabre => Box::new(crate::SabreRouter::new(
                crate::SabreConfig::default().with_seed(seed),
            )),
            ToolKind::MlQls => Box::new(crate::MultilevelRouter::new(
                crate::MultilevelConfig::default().with_seed(seed),
            )),
            ToolKind::Qmap => Box::new(crate::AStarRouter::new(
                crate::AStarConfig::default().with_seed(seed),
            )),
            ToolKind::Tket => Box::new(crate::TketRouter::new(
                crate::TketConfig::default().with_seed(seed),
            )),
        }
    }
}

impl fmt::Display for ToolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_names_roundtrip() {
        for tool in ToolKind::ALL {
            assert_eq!(ToolKind::parse(tool.name()), Some(tool));
            assert_eq!(tool.to_string(), tool.name());
        }
        assert_eq!(ToolKind::parse("SABRE"), Some(ToolKind::LightSabre));
        assert_eq!(ToolKind::parse("nonsense"), None);
    }

    #[test]
    fn tket_unicode_spelling_round_trips() {
        // The harness CLIs must accept both the ASCII and the Unicode
        // spelling; parsing the accepted name back must stay stable.
        for spelling in ["t|ket>", "t|ket⟩", "tket"] {
            let tool = ToolKind::parse(spelling).expect("accepted spelling");
            assert_eq!(tool, ToolKind::Tket);
            assert_eq!(ToolKind::parse(tool.name()), Some(tool));
        }
    }

    #[test]
    fn route_error_display() {
        let err = RouteError::TooManyQubits {
            program: 10,
            physical: 5,
        };
        assert!(err.to_string().contains("10"));
        let err = RouteError::NoProgress {
            detail: "stuck".into(),
        };
        assert!(err.to_string().contains("stuck"));
    }
}
