//! Routing results.

use crate::mapping::Mapping;
use qubikos_circuit::{Circuit, CircuitStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The output of a layout-synthesis tool.
///
/// `physical_circuit` is expressed over the device's physical qubits and may
/// contain SWAP gates; `initial_mapping` states where each program qubit
/// starts, and `final_mapping` where it ends up after all inserted SWAPs.
/// The quantity the QUBIKOS evaluation cares about is [`swap_count`].
///
/// [`swap_count`]: RoutedCircuit::swap_count
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedCircuit {
    /// Circuit over physical qubits, including inserted SWAP gates.
    pub physical_circuit: Circuit,
    /// Program → physical mapping before the first gate.
    pub initial_mapping: Mapping,
    /// Program → physical mapping after the last gate.
    pub final_mapping: Mapping,
    /// Name of the tool that produced this result.
    pub tool: String,
}

impl RoutedCircuit {
    /// Number of SWAP gates the tool inserted.
    pub fn swap_count(&self) -> usize {
        self.physical_circuit.swap_count()
    }

    /// Statistics of the physical circuit.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(&self.physical_circuit)
    }

    /// SWAP ratio against a known optimal SWAP count, the paper's
    /// "optimality gap" metric for a single circuit.
    ///
    /// Returns `None` when `optimal == 0` (the metric is only defined for
    /// circuits that need at least one SWAP).
    pub fn swap_ratio(&self, optimal: usize) -> Option<f64> {
        if optimal == 0 {
            None
        } else {
            Some(self.swap_count() as f64 / optimal as f64)
        }
    }
}

impl fmt::Display for RoutedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} swaps, {} gates, depth {}",
            self.tool,
            self.swap_count(),
            self.physical_circuit.gate_count(),
            self.physical_circuit.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_circuit::Gate;

    fn sample() -> RoutedCircuit {
        let physical = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::swap(1, 2), Gate::cx(0, 1)]);
        RoutedCircuit {
            physical_circuit: physical,
            initial_mapping: Mapping::identity(3, 3),
            final_mapping: Mapping::from_prog_to_phys(vec![0, 2, 1], 3),
            tool: "test-tool".to_string(),
        }
    }

    #[test]
    fn swap_count_and_stats() {
        let r = sample();
        assert_eq!(r.swap_count(), 1);
        assert_eq!(r.stats().two_qubit_gates, 3);
    }

    #[test]
    fn swap_ratio() {
        let r = sample();
        assert_eq!(r.swap_ratio(1), Some(1.0));
        assert_eq!(r.swap_ratio(0), None);
        let ratio = r.swap_ratio(2).expect("defined");
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_names_tool() {
        assert!(sample().to_string().contains("test-tool"));
    }
}
