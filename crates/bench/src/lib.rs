//! Experiment harness regenerating every table and figure of the paper.
//!
//! | Paper artefact | Harness entry point |
//! |---|---|
//! | §IV-A optimality study (exact verification of generated SWAP counts) | [`optimality::run_optimality_study`], `--bin optimality_study` |
//! | Figure 4 (a)–(d): SWAP-ratio optimality gaps of four tools on four devices | [`evaluation::run_tool_evaluation`], `--bin tool_evaluation` |
//! | Abstract headline gaps (per-tool averages across devices) | [`evaluation::aggregate_by_tool`], printed by `tool_evaluation --all` |
//! | §IV-C LightSABRE case study (lookahead decay) | [`case_study::run_case_study`], `--bin sabre_case_study` |
//! | Design ablations (trials, extended-set size, padding) | [`ablations::run_ablations`], `--bin ablations`, criterion benches |
//!
//! The library functions return plain data structures so that both the CLI
//! binaries and the criterion benches can reuse them; [`report`] renders the
//! tables the paper prints.
//!
//! Every pipeline executes on the [`qubikos_engine`] work-stealing executor:
//! results are identical for any thread count, a `--threads` flag is shared
//! by all binaries (default: every available core), and per-job timings can
//! stream to any [`qubikos_engine::ProgressSink`] via the `*_with_sink`
//! entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod case_study;
pub mod evaluation;
pub mod microbench;
pub mod optimality;
pub mod report;

pub use ablations::{run_ablations, AblationConfig, AblationPoint, AblationReport};
pub use case_study::{run_case_study, CaseStudyConfig, CaseStudyOutcome};
pub use evaluation::{
    aggregate_by_tool, run_tool_evaluation, run_tool_evaluation_with_sink, EvaluationCell,
    EvaluationConfig, EvaluationReport,
};
pub use optimality::{run_optimality_study, ExactNodesAtK, OptimalityConfig, OptimalityReport};
