//! Experiment harness regenerating every table and figure of the paper.
//!
//! | Paper artefact | Harness entry point |
//! |---|---|
//! | §IV-A optimality study (exact verification of generated SWAP counts) | [`optimality::run_optimality_study`], `--bin optimality_study` |
//! | Figure 4 (a)–(d): SWAP-ratio optimality gaps of four tools on four devices | [`evaluation::run_tool_evaluation`], `--bin tool_evaluation` |
//! | Abstract headline gaps (per-tool averages across devices) | [`evaluation::aggregate_by_tool`], printed by `tool_evaluation --all` |
//! | §IV-C LightSABRE case study (lookahead decay) | [`case_study::run_case_study`], `--bin sabre_case_study` |
//! | Design ablations (trials, extended-set size, padding) | [`ablations::run_ablations`], `--bin ablations`, criterion benches |
//! | Router-construction-kit ablation matrix (composition cross-product ranked against known optima) | [`ablations::run_composition_matrix`], `qubikos ablations --grid` |
//!
//! The library functions return plain data structures so that both the CLI
//! binaries and the criterion benches can reuse them; [`report`] renders the
//! tables the paper prints.
//!
//! Every command is also a subcommand of the unified `qubikos` binary
//! ([`cli`] holds the shared implementations; the single-purpose bins are
//! thin wrappers), and the evaluation/optimality pipelines can run from a
//! persistent on-disk corpus ([`store::SuiteStore`]: a small `manifest.json`
//! root index pointing at `shards/shard_*.json` shard manifests plus QASM
//! files and a content-addressed `results/` cache keyed by
//! [`qubikos_engine::JobKey`]) via `--suite DIR`, skipping every
//! (tool, circuit) pair the cache already holds. Export and verification
//! resume at shard granularity via a ledger next to the root index, the
//! pipelines stream one shard at a time, and [`analytics`] folds cached
//! results into corpus-wide summaries with an associative per-shard merge.
//!
//! Every pipeline executes on the [`qubikos_engine`] work-stealing executor:
//! results are identical for any thread count, a `--threads` flag is shared
//! by all binaries (default: every available core), and per-job timings can
//! stream to any [`qubikos_engine::ProgressSink`] via the `*_with_sink`
//! entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod analytics;
pub mod case_study;
pub mod cli;
pub mod evaluation;
pub mod microbench;
pub mod optimality;
pub mod report;
pub mod store;
pub mod vfs;

pub use ablations::{
    run_ablations, run_composition_matrix, run_composition_matrix_partial, AblationConfig,
    AblationPoint, AblationReport, CompositionGrid, CompositionSummary, MatrixConfig,
    MatrixOutcome, MatrixReport,
};
pub use analytics::{
    gap_bucket, run_suite_analytics, run_suite_analytics_with_sink, AnalyticsConfig,
    AnalyticsReport, ScalingPoint, ShardSummary, ToolSummary, GAP_BUCKETS, GAP_BUCKET_EDGES,
};
pub use case_study::{run_case_study, CaseStudyConfig, CaseStudyOutcome};
pub use evaluation::{
    aggregate_by_tool, run_suite_evaluation, run_suite_evaluation_partial,
    run_suite_evaluation_with_sink, run_tool_evaluation, run_tool_evaluation_with_sink,
    EvaluationCell, EvaluationConfig, EvaluationReport, SuiteEvalConfig, SuiteEvalOutcome,
    DEFAULT_TOOL_SEED,
};
pub use optimality::{
    run_optimality_study, run_suite_optimality, run_suite_optimality_partial,
    run_suite_optimality_with_sink, ExactNodesAtK, OptimalityConfig, OptimalityReport,
    SuiteOptimalityOutcome,
};
pub use store::{
    export_suite, CacheStatsSnapshot, ExportOptions, ExportOutcome, LoadedShard, QuarantineEntry,
    QuarantineReport, StoreError, SuiteStore, VerifyFailure, VerifyOutcome, VerifyReport,
    EXPORT_LEDGER_FILE, QUARANTINE_DIR, QUARANTINE_REPORT_FILE, VERIFY_LEDGER_FILE,
};
pub use vfs::{
    Fault, FaultKind, FaultPlan, FaultVfs, InjectedFault, OpKind, RealVfs, RetryPolicy, Vfs,
};
