//! Experiment harness regenerating every table and figure of the paper.
//!
//! | Paper artefact | Harness entry point |
//! |---|---|
//! | §IV-A optimality study (exact verification of generated SWAP counts) | [`optimality::run_optimality_study`], `--bin optimality_study` |
//! | Figure 4 (a)–(d): SWAP-ratio optimality gaps of four tools on four devices | [`evaluation::run_tool_evaluation`], `--bin tool_evaluation` |
//! | Abstract headline gaps (per-tool averages across devices) | [`evaluation::aggregate_by_tool`], printed by `tool_evaluation --all` |
//! | §IV-C LightSABRE case study (lookahead decay) | [`case_study::run_case_study`], `--bin sabre_case_study` |
//! | Design ablations (trials, extended-set size, padding) | `--bin ablations`, criterion benches |
//!
//! The library functions return plain data structures so that both the CLI
//! binaries and the criterion benches can reuse them; [`report`] renders the
//! tables the paper prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod evaluation;
pub mod optimality;
pub mod report;

pub use case_study::{run_case_study, CaseStudyOutcome};
pub use evaluation::{
    aggregate_by_tool, run_tool_evaluation, EvaluationCell, EvaluationConfig, EvaluationReport,
};
pub use optimality::{run_optimality_study, OptimalityConfig, OptimalityReport};
