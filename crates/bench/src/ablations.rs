//! Design ablations called out in DESIGN.md: how the SABRE trial count and
//! extended-set size change the optimality gap, and how redundant-gate
//! padding changes benchmark difficulty.
//!
//! Formerly inline in the `ablations` binary and fully sequential; now a
//! library module so the sweeps run on the [`qubikos_engine`] executor (one
//! job per circuit, per-worker router reuse) and the binary only parses
//! flags and renders.

use qubikos::{generate_suite, ExperimentPoint, GenerateError, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_engine::{Engine, NullSink, ProgressSink, AUTO_THREADS};
use qubikos_layout::{validate_routing, Router, SabreConfig, SabreRouter};
use serde::{Deserialize, Serialize};

/// Configuration of the ablation sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Device the sweeps run on.
    pub device: DeviceKind,
    /// SABRE trial counts to sweep (ablation 1).
    pub trial_counts: Vec<usize>,
    /// Extended-set sizes to sweep (ablation 2).
    pub extended_set_sizes: Vec<usize>,
    /// Two-qubit gate budgets to sweep at a fixed SWAP count (ablation 3).
    pub padding_gate_budgets: Vec<usize>,
    /// Designed SWAP count used by the padding sweep.
    pub padding_swap_count: usize,
    /// Suite used by the trial-count and extended-set sweeps.
    pub suite: SuiteConfig,
    /// Circuits per padding budget.
    pub padding_circuits_per_budget: usize,
    /// Base seed of the padding sweep's suites (independent of `suite` so the
    /// padding instances differ from the trial/extended-set instances).
    pub padding_base_seed: u64,
    /// Router seed shared by every sweep point.
    pub router_seed: u64,
    /// Number of worker threads; [`AUTO_THREADS`] (0) uses every available
    /// core. Results are identical for any value.
    pub threads: usize,
}

impl AblationConfig {
    /// The sweep configuration the `ablations` binary has always run:
    /// Aspen-4, trials {1, 4, 16}, extended sets {0, 5, 20, 40}, padding
    /// budgets {100, 200, 400} at 6 designed SWAPs.
    pub fn paper() -> Self {
        AblationConfig {
            device: DeviceKind::Aspen4,
            trial_counts: vec![1, 4, 16],
            extended_set_sizes: vec![0, 5, 20, 40],
            padding_gate_budgets: vec![100, 200, 400],
            padding_swap_count: 6,
            suite: SuiteConfig {
                swap_counts: vec![4, 8],
                circuits_per_count: 3,
                two_qubit_gates: 150,
                base_seed: 21,
            },
            padding_circuits_per_budget: 3,
            padding_base_seed: 33,
            router_seed: 5,
            threads: AUTO_THREADS,
        }
    }

    /// A grid-sized configuration for tests: same shape, seconds of runtime.
    pub fn quick() -> Self {
        AblationConfig {
            device: DeviceKind::Grid3x3,
            trial_counts: vec![1, 2],
            extended_set_sizes: vec![0, 5],
            padding_gate_budgets: vec![20, 40],
            padding_swap_count: 2,
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 21,
            },
            padding_circuits_per_budget: 2,
            padding_base_seed: 33,
            router_seed: 5,
            threads: AUTO_THREADS,
        }
    }

    /// Returns the configuration with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One sweep point: a parameter value and the mean SWAP ratio it produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The swept parameter's value (trial count, extended-set size, or gate
    /// budget, depending on the sweep).
    pub parameter: usize,
    /// Mean SWAP ratio over the sweep's circuits.
    pub mean_swap_ratio: f64,
}

/// All three ablation sweeps of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// Device the sweeps ran on.
    pub device: DeviceKind,
    /// Mean ratio per SABRE trial count.
    pub trial_counts: Vec<AblationPoint>,
    /// Mean ratio per extended-set size.
    pub extended_set_sizes: Vec<AblationPoint>,
    /// Mean ratio per two-qubit gate budget (fixed designed SWAP count).
    pub padding_gate_budgets: Vec<AblationPoint>,
    /// The designed SWAP count the padding sweep held fixed.
    pub padding_swap_count: usize,
}

/// Runs all three ablation sweeps.
///
/// # Errors
///
/// Propagates [`GenerateError`] on suite misconfiguration instead of
/// panicking.
pub fn run_ablations(config: &AblationConfig) -> Result<AblationReport, GenerateError> {
    run_ablations_with_sink(config, &NullSink)
}

/// [`run_ablations`] with a caller-supplied progress/metrics sink.
///
/// # Errors
///
/// As [`run_ablations`].
pub fn run_ablations_with_sink(
    config: &AblationConfig,
    sink: &dyn ProgressSink,
) -> Result<AblationReport, GenerateError> {
    let arch = config.device.build();
    let suite = generate_suite(&arch, &config.suite)?;

    // Ablation 1: SABRE trial count.
    let trial_counts = config
        .trial_counts
        .iter()
        .map(|&trials| AblationPoint {
            parameter: trials,
            mean_swap_ratio: mean_ratio_on(
                &arch,
                &suite,
                SabreConfig::default()
                    .with_trials(trials)
                    .with_seed(config.router_seed),
                config.threads,
                sink,
            ),
        })
        .collect();

    // Ablation 2: extended-set size (at a fixed modest trial count).
    let extended_set_sizes = config
        .extended_set_sizes
        .iter()
        .map(|&size| {
            let mut sabre = SabreConfig::default()
                .with_trials(4)
                .with_seed(config.router_seed);
            sabre.extended_set_size = size;
            AblationPoint {
                parameter: size,
                mean_swap_ratio: mean_ratio_on(&arch, &suite, sabre, config.threads, sink),
            }
        })
        .collect();

    // Ablation 3: padding (total gate budget) at a fixed optimal SWAP count.
    let padding_gate_budgets = config
        .padding_gate_budgets
        .iter()
        .map(|&gates| {
            let padded_suite = generate_suite(
                &arch,
                &SuiteConfig {
                    swap_counts: vec![config.padding_swap_count],
                    circuits_per_count: config.padding_circuits_per_budget,
                    two_qubit_gates: gates,
                    base_seed: config.padding_base_seed,
                },
            )?;
            Ok(AblationPoint {
                parameter: gates,
                mean_swap_ratio: mean_ratio_on(
                    &arch,
                    &padded_suite,
                    SabreConfig::default()
                        .with_trials(4)
                        .with_seed(config.router_seed),
                    config.threads,
                    sink,
                ),
            })
        })
        .collect::<Result<_, GenerateError>>()?;

    Ok(AblationReport {
        device: config.device,
        trial_counts,
        extended_set_sizes,
        padding_gate_budgets,
        padding_swap_count: config.padding_swap_count,
    })
}

/// Mean SWAP ratio of one router configuration over a suite, computed on the
/// engine (one job per circuit, one reused router per worker, job-order fold
/// so the mean is schedule-independent).
fn mean_ratio_on(
    arch: &Architecture,
    suite: &[ExperimentPoint],
    sabre: SabreConfig,
    threads: usize,
    sink: &dyn ProgressSink,
) -> f64 {
    let engine = Engine::new(threads).with_base_seed(sabre.seed);
    let ratios = engine
        .run_values(
            suite,
            |_worker| SabreRouter::new(sabre.clone()),
            |router, _ctx, point| {
                let routed = router
                    .route(point.benchmark.circuit(), arch)
                    .expect("benchmark fits");
                validate_routing(point.benchmark.circuit(), arch, &routed).expect("valid");
                point
                    .benchmark
                    .swap_ratio(&routed)
                    .expect("non-zero optimum")
            },
            sink,
        )
        .unwrap_or_else(|error| panic!("ablation sweep aborted: {error}"));
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablations_cover_every_sweep_point() {
        let config = AblationConfig::quick().with_threads(2);
        let report = run_ablations(&config).expect("valid config");
        assert_eq!(report.trial_counts.len(), 2);
        assert_eq!(report.extended_set_sizes.len(), 2);
        assert_eq!(report.padding_gate_budgets.len(), 2);
        for point in report
            .trial_counts
            .iter()
            .chain(&report.extended_set_sizes)
            .chain(&report.padding_gate_budgets)
        {
            assert!(
                point.mean_swap_ratio >= 1.0 - 1e-9,
                "ratio below optimum at {point:?}"
            );
        }
    }

    #[test]
    fn reports_identical_across_thread_counts() {
        let reference = run_ablations(&AblationConfig::quick().with_threads(1)).expect("valid");
        let parallel = run_ablations(&AblationConfig::quick().with_threads(8)).expect("valid");
        assert_eq!(reference, parallel);
    }
}
