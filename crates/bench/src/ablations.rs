//! Design ablations: the legacy SABRE parameter sweeps, plus the router
//! construction kit's **composition matrix**.
//!
//! The legacy half ([`run_ablations`]) keeps the three hand-picked sweeps
//! called out in DESIGN.md (trial count, extended-set size, padding). The
//! matrix half enumerates the composition cross-product of a
//! [`CompositionGrid`] — one [`RouterSpec`](qubikos_layout::RouterSpec) per
//! surviving grid point after
//! [`canonicalization`](qubikos_layout::RouterSpec::canonicalized) prunes
//! redundant combinations — and runs every composition against a stored
//! known-optimal suite ([`run_composition_matrix`]), ranking compositions
//! by mean optimality gap and win rate. Results are banked in the suite
//! store's content-addressed cache under the composition's
//! [`id`](qubikos_layout::RouterSpec::id) as the namespace, so a rerun of
//! the same grid on the same corpus is answered entirely from cache.

use crate::evaluation::{all_pairs, cell_gap, route_and_count, CachedRouting, DEFAULT_TOOL_SEED};
use crate::store::{StoreError, SuiteStore};
use qubikos::{generate_suite, ExperimentPoint, GenerateError, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_engine::{Engine, JobKey, NullSink, ProgressSink, AUTO_THREADS};
use qubikos_layout::{
    validate_routing, DecaySpec, LookaheadSpec, PlacementSpec, Router, RouterSpec, SabreConfig,
    SabreRouter, SearchSpec, TieBreakerSpec, WeightsSpec,
};
use serde::{Deserialize, Serialize};

/// Configuration of the ablation sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Device the sweeps run on.
    pub device: DeviceKind,
    /// SABRE trial counts to sweep (ablation 1).
    pub trial_counts: Vec<usize>,
    /// Extended-set sizes to sweep (ablation 2).
    pub extended_set_sizes: Vec<usize>,
    /// Two-qubit gate budgets to sweep at a fixed SWAP count (ablation 3).
    pub padding_gate_budgets: Vec<usize>,
    /// Designed SWAP count used by the padding sweep.
    pub padding_swap_count: usize,
    /// Suite used by the trial-count and extended-set sweeps.
    pub suite: SuiteConfig,
    /// Circuits per padding budget.
    pub padding_circuits_per_budget: usize,
    /// Base seed of the padding sweep's suites (independent of `suite` so the
    /// padding instances differ from the trial/extended-set instances).
    pub padding_base_seed: u64,
    /// Router seed shared by every sweep point.
    pub router_seed: u64,
    /// Number of worker threads; [`AUTO_THREADS`] (0) uses every available
    /// core. Results are identical for any value.
    pub threads: usize,
}

impl AblationConfig {
    /// The sweep configuration the `ablations` binary has always run:
    /// Aspen-4, trials {1, 4, 16}, extended sets {0, 5, 20, 40}, padding
    /// budgets {100, 200, 400} at 6 designed SWAPs.
    pub fn paper() -> Self {
        AblationConfig {
            device: DeviceKind::Aspen4,
            trial_counts: vec![1, 4, 16],
            extended_set_sizes: vec![0, 5, 20, 40],
            padding_gate_budgets: vec![100, 200, 400],
            padding_swap_count: 6,
            suite: SuiteConfig {
                swap_counts: vec![4, 8],
                circuits_per_count: 3,
                two_qubit_gates: 150,
                base_seed: 21,
            },
            padding_circuits_per_budget: 3,
            padding_base_seed: 33,
            router_seed: 5,
            threads: AUTO_THREADS,
        }
    }

    /// A grid-sized configuration for tests: same shape, seconds of runtime.
    pub fn quick() -> Self {
        AblationConfig {
            device: DeviceKind::Grid3x3,
            trial_counts: vec![1, 2],
            extended_set_sizes: vec![0, 5],
            padding_gate_budgets: vec![20, 40],
            padding_swap_count: 2,
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 21,
            },
            padding_circuits_per_budget: 2,
            padding_base_seed: 33,
            router_seed: 5,
            threads: AUTO_THREADS,
        }
    }

    /// Returns the configuration with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One sweep point: a parameter value and the mean SWAP ratio it produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The swept parameter's value (trial count, extended-set size, or gate
    /// budget, depending on the sweep).
    pub parameter: usize,
    /// Mean SWAP ratio over the sweep's circuits.
    pub mean_swap_ratio: f64,
}

/// All three ablation sweeps of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// Device the sweeps ran on.
    pub device: DeviceKind,
    /// Mean ratio per SABRE trial count.
    pub trial_counts: Vec<AblationPoint>,
    /// Mean ratio per extended-set size.
    pub extended_set_sizes: Vec<AblationPoint>,
    /// Mean ratio per two-qubit gate budget (fixed designed SWAP count).
    pub padding_gate_budgets: Vec<AblationPoint>,
    /// The designed SWAP count the padding sweep held fixed.
    pub padding_swap_count: usize,
}

/// Runs all three ablation sweeps.
///
/// # Errors
///
/// Propagates [`GenerateError`] on suite misconfiguration instead of
/// panicking.
pub fn run_ablations(config: &AblationConfig) -> Result<AblationReport, GenerateError> {
    run_ablations_with_sink(config, &NullSink)
}

/// [`run_ablations`] with a caller-supplied progress/metrics sink.
///
/// # Errors
///
/// As [`run_ablations`].
pub fn run_ablations_with_sink(
    config: &AblationConfig,
    sink: &dyn ProgressSink,
) -> Result<AblationReport, GenerateError> {
    let arch = config.device.build();
    let suite = generate_suite(&arch, &config.suite)?;

    // Ablation 1: SABRE trial count.
    let trial_counts = config
        .trial_counts
        .iter()
        .map(|&trials| AblationPoint {
            parameter: trials,
            mean_swap_ratio: mean_ratio_on(
                &arch,
                &suite,
                SabreConfig::default()
                    .with_trials(trials)
                    .with_seed(config.router_seed),
                config.threads,
                sink,
            ),
        })
        .collect();

    // Ablation 2: extended-set size (at a fixed modest trial count).
    let extended_set_sizes = config
        .extended_set_sizes
        .iter()
        .map(|&size| {
            let mut sabre = SabreConfig::default()
                .with_trials(4)
                .with_seed(config.router_seed);
            sabre.extended_set_size = size;
            AblationPoint {
                parameter: size,
                mean_swap_ratio: mean_ratio_on(&arch, &suite, sabre, config.threads, sink),
            }
        })
        .collect();

    // Ablation 3: padding (total gate budget) at a fixed optimal SWAP count.
    let padding_gate_budgets = config
        .padding_gate_budgets
        .iter()
        .map(|&gates| {
            let padded_suite = generate_suite(
                &arch,
                &SuiteConfig {
                    swap_counts: vec![config.padding_swap_count],
                    circuits_per_count: config.padding_circuits_per_budget,
                    two_qubit_gates: gates,
                    base_seed: config.padding_base_seed,
                },
            )?;
            Ok(AblationPoint {
                parameter: gates,
                mean_swap_ratio: mean_ratio_on(
                    &arch,
                    &padded_suite,
                    SabreConfig::default()
                        .with_trials(4)
                        .with_seed(config.router_seed),
                    config.threads,
                    sink,
                ),
            })
        })
        .collect::<Result<_, GenerateError>>()?;

    Ok(AblationReport {
        device: config.device,
        trial_counts,
        extended_set_sizes,
        padding_gate_budgets,
        padding_swap_count: config.padding_swap_count,
    })
}

/// Mean SWAP ratio of one router configuration over a suite, computed on the
/// engine (one job per circuit, one reused router per worker, job-order fold
/// so the mean is schedule-independent).
fn mean_ratio_on(
    arch: &Architecture,
    suite: &[ExperimentPoint],
    sabre: SabreConfig,
    threads: usize,
    sink: &dyn ProgressSink,
) -> f64 {
    let engine = Engine::new(threads).with_base_seed(sabre.seed);
    let ratios = engine
        .run_values(
            suite,
            |_worker| SabreRouter::new(sabre.clone()),
            |router, _ctx, point| {
                let routed = router
                    .route(point.benchmark.circuit(), arch)
                    .expect("benchmark fits");
                validate_routing(point.benchmark.circuit(), arch, &routed).expect("valid");
                point
                    .benchmark
                    .swap_ratio(&routed)
                    .expect("non-zero optimum")
            },
            sink,
        )
        .unwrap_or_else(|error| panic!("ablation sweep aborted: {error}"));
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

/// One choice-list per policy axis of the router construction kit. The
/// matrix runs the full cross-product, canonicalized and deduplicated: a
/// grid point whose axes cannot change routing behaviour (an A* search
/// paired with a decay schedule, a zero-increment decay, …) collapses onto
/// its canonical spec and is enumerated once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositionGrid {
    /// Search engines to cross.
    pub searches: Vec<SearchSpec>,
    /// Lookahead policies to cross.
    pub lookaheads: Vec<LookaheadSpec>,
    /// Decay schedules to cross.
    pub decays: Vec<DecaySpec>,
    /// Tie-breakers to cross.
    pub tie_breakers: Vec<TieBreakerSpec>,
    /// Placement strategies to cross.
    pub placements: Vec<PlacementSpec>,
    /// Coupler-weight models to cross.
    pub weights: Vec<WeightsSpec>,
}

impl CompositionGrid {
    /// A grid that runs in seconds on a quick suite but still exercises
    /// every axis: two greedy search shapes plus a small A*, front-only vs
    /// published lookahead, decay on/off, random vs first-candidate ties,
    /// greedy-BFS vs identity placement, uniform vs fidelity-derived
    /// weights. 96 raw points, 66 after pruning.
    pub fn quick() -> Self {
        CompositionGrid {
            searches: vec![
                SearchSpec::Greedy {
                    trials: 2,
                    mapping_passes: 1,
                    stall_threshold: 64,
                },
                SearchSpec::Greedy {
                    trials: 2,
                    mapping_passes: 2,
                    stall_threshold: 64,
                },
                SearchSpec::AStar {
                    max_expansions: 256,
                },
            ],
            lookaheads: vec![LookaheadSpec::front_only(), LookaheadSpec::sabre_default()],
            decays: vec![DecaySpec::None, DecaySpec::sabre_default()],
            tie_breakers: vec![TieBreakerSpec::SeededRandom, TieBreakerSpec::QubitIndex],
            placements: vec![PlacementSpec::GreedyBfs, PlacementSpec::Identity],
            weights: vec![WeightsSpec::Uniform, WeightsSpec::Fidelity { seed: 1 }],
        }
    }

    /// The full matrix for overnight runs: every tie-breaker and placement,
    /// four lookahead windows, the paper tools' search shapes.
    pub fn paper() -> Self {
        CompositionGrid {
            searches: vec![
                SearchSpec::Greedy {
                    trials: 1,
                    mapping_passes: 1,
                    stall_threshold: 64,
                },
                SearchSpec::Greedy {
                    trials: 4,
                    mapping_passes: 1,
                    stall_threshold: 64,
                },
                SearchSpec::Greedy {
                    trials: 16,
                    mapping_passes: 3,
                    stall_threshold: 64,
                },
                SearchSpec::AStar {
                    max_expansions: 4000,
                },
            ],
            lookaheads: vec![
                LookaheadSpec::front_only(),
                LookaheadSpec {
                    window: 5,
                    extended_set_weight: 0.5,
                    depth_decay: None,
                },
                LookaheadSpec::sabre_default(),
                LookaheadSpec {
                    window: 40,
                    extended_set_weight: 0.5,
                    depth_decay: None,
                },
            ],
            decays: vec![DecaySpec::None, DecaySpec::sabre_default()],
            tie_breakers: vec![
                TieBreakerSpec::SeededRandom,
                TieBreakerSpec::QubitIndex,
                TieBreakerSpec::DistanceRefined,
            ],
            placements: vec![
                PlacementSpec::GreedyBfs,
                PlacementSpec::Multilevel,
                PlacementSpec::Identity,
            ],
            weights: vec![WeightsSpec::Uniform, WeightsSpec::Fidelity { seed: 1 }],
        }
    }

    /// The raw cross-product size before canonicalization and dedup.
    pub fn raw_combinations(&self) -> usize {
        self.searches.len()
            * self.lookaheads.len()
            * self.decays.len()
            * self.tie_breakers.len()
            * self.placements.len()
            * self.weights.len()
    }

    /// Enumerates the cross-product in axis order (searches outermost,
    /// weights innermost), canonicalizing every point and keeping only the
    /// first occurrence of each distinct composition id. The order is fully
    /// determined by the grid, so composition indices are stable across
    /// runs and thread counts.
    pub fn enumerate(&self) -> Vec<RouterSpec> {
        let mut seen = std::collections::BTreeSet::new();
        let mut specs = Vec::new();
        for &search in &self.searches {
            for &lookahead in &self.lookaheads {
                for &decay in &self.decays {
                    for &tie_breaker in &self.tie_breakers {
                        for &placement in &self.placements {
                            for &weights in &self.weights {
                                let spec = RouterSpec {
                                    search,
                                    lookahead,
                                    decay,
                                    tie_breaker,
                                    placement,
                                    weights,
                                }
                                .canonicalized();
                                if seen.insert(spec.id()) {
                                    specs.push(spec);
                                }
                            }
                        }
                    }
                }
            }
        }
        specs
    }
}

/// Configuration of one composition-matrix run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// The grid to enumerate.
    pub grid: CompositionGrid,
    /// Routing seed handed to every composition. Cached results record the
    /// seed they were produced with; a different seed reads as a miss.
    pub tool_seed: u64,
    /// Number of worker threads ([`AUTO_THREADS`] = all available cores).
    /// The report is bit-identical for any value.
    pub threads: usize,
    /// Truncates the enumerated (pruned) composition list to the first `N`
    /// entries — the smoke-test hook.
    pub max_compositions: Option<usize>,
}

impl MatrixConfig {
    /// The quick grid with the evaluation pipeline's standard tool seed.
    pub fn quick() -> Self {
        MatrixConfig {
            grid: CompositionGrid::quick(),
            tool_seed: DEFAULT_TOOL_SEED,
            threads: AUTO_THREADS,
            max_compositions: None,
        }
    }

    /// Returns the configuration with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the configuration truncated to the first `max` compositions.
    pub fn with_max_compositions(mut self, max: usize) -> Self {
        self.max_compositions = Some(max);
        self
    }

    /// The compositions this run covers: the grid's pruned enumeration,
    /// truncated to `max_compositions` when set.
    pub fn compositions(&self) -> Vec<RouterSpec> {
        let mut specs = self.grid.enumerate();
        if let Some(max) = self.max_compositions {
            specs.truncate(max);
        }
        specs
    }
}

/// One ranked row of the matrix report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositionSummary {
    /// The composition's stable identity (also its cache namespace).
    pub id: String,
    /// The spec behind the id.
    pub spec: RouterSpec,
    /// Instances the composition was scored on.
    pub instances: usize,
    /// Mean inserted SWAPs per instance.
    pub average_swaps: f64,
    /// Mean per-instance optimality gap (SWAP ratio; absolute excess on
    /// zero-optimum instances — see `EvaluationCell::swap_ratio`).
    pub mean_gap: f64,
    /// Instances on which the composition matched the best SWAP count any
    /// enumerated composition achieved (ties all win).
    pub wins: usize,
    /// `wins / instances`.
    pub win_rate: f64,
    /// Instances routed at exactly the designed (known-optimal) SWAP count.
    pub optimal: usize,
}

/// The ranked composition matrix: one row per composition, best mean gap
/// first (ties broken by id, so the ranking is total and reproducible).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Device the stored suite targets.
    pub device: DeviceKind,
    /// Instances every composition was scored on.
    pub instances: usize,
    /// Ranked rows.
    pub compositions: Vec<CompositionSummary>,
}

/// Result of a matrix run: the ranked report plus how much work the
/// per-composition cache saved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixOutcome {
    /// The ranked report.
    pub report: MatrixReport,
    /// (composition, circuit) pairs actually routed in this run.
    pub routed: usize,
    /// (composition, circuit) pairs answered from the result cache.
    pub cache_hits: usize,
    /// Shards processed this run.
    pub shards: usize,
    /// Shards quarantined as persistently corrupt and skipped.
    pub shards_quarantined: usize,
    /// Whether the whole corpus was covered.
    pub complete: bool,
}

/// Runs the composition matrix against a stored known-optimal suite,
/// reading and writing the store's content-addressed result cache under
/// each composition's id as the namespace.
///
/// Streams shard by shard exactly like the suite evaluation: at most one
/// shard of circuits is materialized, and only when at least one of its
/// (composition, circuit) pairs misses the cache; a rerun of the same grid
/// is 100% cache hits and loads no circuits at all.
///
/// # Errors
///
/// Propagates [`StoreError`] from loading a shard or writing cache entries.
/// A corrupt cache *entry* reads as a miss and is recomputed; a corrupt
/// *shard* is quarantined and skipped.
///
/// # Panics
///
/// Panics if a composition produces an invalid routing (a kit bug, never a
/// benchmark property), or if the grid enumerates no compositions.
pub fn run_composition_matrix(
    store: &SuiteStore,
    config: &MatrixConfig,
    sink: &dyn ProgressSink,
) -> Result<MatrixOutcome, StoreError> {
    run_composition_matrix_partial(store, config, None, sink)
}

/// [`run_composition_matrix`] truncated to the first `stop_after_shards`
/// shards (the resume/CI hook; per-pair results are banked as produced, so
/// a rerun answers processed shards from cache).
///
/// # Errors
///
/// # Panics
///
/// As [`run_composition_matrix`].
pub fn run_composition_matrix_partial(
    store: &SuiteStore,
    config: &MatrixConfig,
    stop_after_shards: Option<usize>,
    sink: &dyn ProgressSink,
) -> Result<MatrixOutcome, StoreError> {
    let device = store.device();
    let arch = device.build();
    let compositions: Vec<(String, RouterSpec)> = config
        .compositions()
        .into_iter()
        .map(|spec| (spec.id(), spec))
        .collect();
    assert!(
        !compositions.is_empty(),
        "composition grid enumerates no compositions"
    );
    let shards = stop_after_shards
        .unwrap_or(usize::MAX)
        .min(store.shard_count());
    let mut fold = MatrixFold::new(compositions.len());
    let mut routed_total = 0;
    let mut cache_hits = 0;
    let mut shards_quarantined = 0;

    for shard in 0..shards {
        match matrix_shard(store, &compositions, config, &arch, shard, sink) {
            Ok((designed, swaps, routed, hits)) => {
                fold.add_shard(&designed, &swaps);
                routed_total += routed;
                cache_hits += hits;
            }
            Err(error) if error.is_corruption() => {
                store.quarantine_shard_error(shard, &error);
                shards_quarantined += 1;
            }
            Err(error) => return Err(error),
        }
    }

    Ok(MatrixOutcome {
        report: fold.finish(device, &compositions),
        routed: routed_total,
        cache_hits,
        shards,
        shards_quarantined,
        complete: shards == store.shard_count(),
    })
}

/// Scores one shard for every composition: cache lookups first, engine
/// routing of the misses (per-worker composed routers, results persisted
/// from inside each job), then the resolved SWAP counts in point-major job
/// order alongside each instance's designed count.
#[allow(clippy::type_complexity)]
fn matrix_shard(
    store: &SuiteStore,
    compositions: &[(String, RouterSpec)],
    config: &MatrixConfig,
    arch: &Architecture,
    shard: usize,
    sink: &dyn ProgressSink,
) -> Result<(Vec<usize>, Vec<usize>, usize, usize), StoreError> {
    let records = store.shard_records(shard)?;
    let jobs: Vec<(usize, usize)> = all_pairs(records.len(), compositions.len());
    let job_key = |&(comp_index, point_index): &(usize, usize)| {
        JobKey::new(
            &compositions[comp_index].0,
            &records[point_index].content_hash,
        )
    };

    // Resolve the cache first: only misses become engine jobs. An entry is
    // keyed by composition identity, so two compositions never share (or
    // clobber) each other's results, and an entry produced under a
    // different routing seed reads as a miss.
    let mut swaps: Vec<Option<usize>> = jobs
        .iter()
        .map(|job| {
            let cached: CachedRouting = store.read_cached(&job_key(job))?;
            (cached.tool_seed == config.tool_seed
                && cached.circuit_hash == records[job.1].content_hash)
                .then_some(cached.swaps)
        })
        .collect();
    let misses: Vec<(usize, usize)> = jobs
        .iter()
        .zip(&swaps)
        .filter(|(_, cached)| cached.is_none())
        .map(|(&job, _)| job)
        .collect();

    if !misses.is_empty() {
        let loaded = store.load_shard(shard)?;
        let engine = Engine::new(config.threads).with_base_seed(config.tool_seed);
        let routed: Vec<usize> = engine
            .run_values(
                &misses,
                |_worker| {
                    compositions
                        .iter()
                        .map(|(id, spec)| spec.build_named(config.tool_seed, id.clone()))
                        .collect::<Vec<_>>()
                },
                |routers, _ctx, job: &(usize, usize)| -> Result<usize, StoreError> {
                    let swaps = route_and_count(&routers[job.0], &loaded[job.1], arch);
                    store.write_cached(
                        &job_key(job),
                        &CachedRouting {
                            tool: compositions[job.0].0.clone(),
                            tool_seed: config.tool_seed,
                            circuit_hash: records[job.1].content_hash.clone(),
                            swaps,
                        },
                    )?;
                    Ok(swaps)
                },
                sink,
            )
            .unwrap_or_else(|error| panic!("composition matrix aborted: {error}"))
            .into_iter()
            .collect::<Result<_, _>>()?;

        let mut fresh = routed.iter();
        for slot in swaps.iter_mut().filter(|slot| slot.is_none()) {
            *slot = Some(*fresh.next().expect("one routed result per miss"));
        }
    }

    let designed = records.iter().map(|r| r.swap_count).collect();
    let resolved = swaps
        .into_iter()
        .map(|slot| slot.expect("every job resolved"))
        .collect();
    Ok((designed, resolved, misses.len(), jobs.len() - misses.len()))
}

/// Per-composition accumulator behind the matrix report. Sums are folded
/// shard by shard in shard order, and within a shard in point-major job
/// order, so the finished report is bit-identical for any thread count
/// (the engine returns results in job order regardless of scheduling).
struct MatrixFold {
    stats: Vec<CompositionStats>,
}

#[derive(Clone, Default)]
struct CompositionStats {
    instances: usize,
    sum_swaps: u64,
    gap_sum: f64,
    wins: usize,
    optimal: usize,
}

impl MatrixFold {
    fn new(compositions: usize) -> Self {
        MatrixFold {
            stats: vec![CompositionStats::default(); compositions],
        }
    }

    /// Folds one shard: `swaps` holds every composition's SWAP count in
    /// point-major job order (`swaps[point * compositions + comp]`). Wins
    /// are judged within the enumerated matrix: every composition matching
    /// the instance's best count wins that instance.
    fn add_shard(&mut self, designed: &[usize], swaps: &[usize]) {
        let n = self.stats.len();
        debug_assert_eq!(designed.len() * n, swaps.len());
        for (point_index, &optimal_swaps) in designed.iter().enumerate() {
            let row = &swaps[point_index * n..(point_index + 1) * n];
            let best = *row.iter().min().expect("at least one composition");
            for (comp_index, &inserted) in row.iter().enumerate() {
                let stats = &mut self.stats[comp_index];
                stats.instances += 1;
                stats.sum_swaps += inserted as u64;
                stats.gap_sum += cell_gap(inserted as f64, optimal_swaps);
                if inserted == best {
                    stats.wins += 1;
                }
                if inserted <= optimal_swaps {
                    stats.optimal += 1;
                }
            }
        }
    }

    /// Renders the ranked report: best mean gap first, ties broken by id so
    /// the order is total and identical across runs.
    fn finish(self, device: DeviceKind, compositions: &[(String, RouterSpec)]) -> MatrixReport {
        let instances = self.stats.first().map_or(0, |s| s.instances);
        let mut rows: Vec<CompositionSummary> = self
            .stats
            .into_iter()
            .zip(compositions)
            .map(|(stats, (id, spec))| CompositionSummary {
                id: id.clone(),
                spec: *spec,
                instances: stats.instances,
                average_swaps: stats.sum_swaps as f64 / stats.instances.max(1) as f64,
                mean_gap: stats.gap_sum / stats.instances.max(1) as f64,
                wins: stats.wins,
                win_rate: stats.wins as f64 / stats.instances.max(1) as f64,
                optimal: stats.optimal,
            })
            .collect();
        rows.sort_by(|a, b| {
            a.mean_gap
                .partial_cmp(&b.mean_gap)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        MatrixReport {
            device,
            instances,
            compositions: rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablations_cover_every_sweep_point() {
        let config = AblationConfig::quick().with_threads(2);
        let report = run_ablations(&config).expect("valid config");
        assert_eq!(report.trial_counts.len(), 2);
        assert_eq!(report.extended_set_sizes.len(), 2);
        assert_eq!(report.padding_gate_budgets.len(), 2);
        for point in report
            .trial_counts
            .iter()
            .chain(&report.extended_set_sizes)
            .chain(&report.padding_gate_budgets)
        {
            assert!(
                point.mean_swap_ratio >= 1.0 - 1e-9,
                "ratio below optimum at {point:?}"
            );
        }
    }

    #[test]
    fn reports_identical_across_thread_counts() {
        let reference = run_ablations(&AblationConfig::quick().with_threads(1)).expect("valid");
        let parallel = run_ablations(&AblationConfig::quick().with_threads(8)).expect("valid");
        assert_eq!(reference, parallel);
    }

    #[test]
    fn quick_grid_enumerates_a_pruned_cross_product() {
        let grid = CompositionGrid::quick();
        let specs = grid.enumerate();
        assert!(
            specs.len() >= 24,
            "quick grid must enumerate at least 24 distinct compositions, got {}",
            specs.len()
        );
        assert!(
            specs.len() < grid.raw_combinations(),
            "canonicalization must prune redundant grid points ({} raw)",
            grid.raw_combinations()
        );
        let ids: std::collections::BTreeSet<String> = specs.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), specs.len(), "composition ids must be unique");
        // Every surviving A* point is canonical: the axes A* ignores are
        // pinned to their neutral values.
        for spec in &specs {
            if let SearchSpec::AStar { .. } = spec.search {
                assert_eq!(spec.lookahead, LookaheadSpec::front_only());
                assert_eq!(spec.decay, DecaySpec::None);
                assert_eq!(spec.weights, WeightsSpec::Uniform);
            }
        }
    }

    #[test]
    fn paper_grid_is_a_superset_in_every_axis() {
        let paper = CompositionGrid::paper();
        assert!(paper.enumerate().len() > CompositionGrid::quick().enumerate().len());
        assert!(paper.tie_breakers.len() == 3 && paper.placements.len() == 3);
    }

    #[test]
    fn max_compositions_truncates_the_stable_enumeration() {
        let config = MatrixConfig::quick().with_max_compositions(8);
        let truncated = config.compositions();
        assert_eq!(truncated.len(), 8);
        assert_eq!(&MatrixConfig::quick().compositions()[..8], &truncated[..]);
    }

    fn fresh_store(name: &str) -> SuiteStore {
        let dir =
            std::env::temp_dir().join(format!("qubikos-matrix-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let suite = SuiteConfig {
            swap_counts: vec![1, 2],
            circuits_per_count: 2,
            two_qubit_gates: 20,
            base_seed: 5,
        };
        SuiteStore::export(&dir, DeviceKind::Grid3x3, &suite, 2, &NullSink).expect("export")
    }

    #[test]
    fn matrix_ranks_compositions_and_reruns_from_cache() {
        let store = fresh_store("rank-and-cache");
        let config = MatrixConfig::quick()
            .with_threads(2)
            .with_max_compositions(12);
        let cold = run_composition_matrix(&store, &config, &NullSink).expect("cold run");
        let pairs = 12 * store.total_instances();
        assert_eq!(cold.routed, pairs);
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.complete);
        assert_eq!(cold.report.compositions.len(), 12);
        assert_eq!(cold.report.instances, store.total_instances());
        // Ranked: mean gap is non-decreasing, ties broken by id.
        for pair in cold.report.compositions.windows(2) {
            assert!(
                pair[0].mean_gap < pair[1].mean_gap
                    || (pair[0].mean_gap == pair[1].mean_gap && pair[0].id < pair[1].id),
                "rows out of rank order: {} then {}",
                pair[0].id,
                pair[1].id
            );
        }
        // Every instance has at least one winner, and win/optimal counts
        // stay within the instance count.
        let wins: usize = cold.report.compositions.iter().map(|c| c.wins).sum();
        assert!(wins >= store.total_instances());
        for row in &cold.report.compositions {
            assert_eq!(row.instances, store.total_instances());
            assert!(row.wins <= row.instances && row.optimal <= row.instances);
            assert!(row.mean_gap >= 1.0 - 1e-9);
        }

        // The acceptance property: a rerun of the same grid on the same
        // corpus is answered 100% from the per-composition cache.
        let warm = run_composition_matrix(&store, &config, &NullSink).expect("warm run");
        assert_eq!(warm.routed, 0, "rerun must be all cache hits");
        assert_eq!(warm.cache_hits, pairs);
        assert_eq!(warm.report, cold.report);
    }

    #[test]
    fn matrix_reports_identical_across_thread_counts() {
        // Two independent stores (separate caches), one cold run each: the
        // report depends only on the grid and the corpus, not on threads.
        let single = run_composition_matrix(
            &fresh_store("threads-1"),
            &MatrixConfig::quick()
                .with_threads(1)
                .with_max_compositions(10),
            &NullSink,
        )
        .expect("single-threaded run");
        let parallel = run_composition_matrix(
            &fresh_store("threads-8"),
            &MatrixConfig::quick()
                .with_threads(8)
                .with_max_compositions(10),
            &NullSink,
        )
        .expect("parallel run");
        assert_eq!(single.report, parallel.report);
    }

    #[test]
    fn matrix_cache_entries_are_keyed_by_composition_identity() {
        // A different tool seed must re-route everything: entries record
        // the seed they were produced with and read as misses otherwise.
        let store = fresh_store("seed-miss");
        let config = MatrixConfig::quick()
            .with_threads(2)
            .with_max_compositions(4);
        let cold = run_composition_matrix(&store, &config, &NullSink).expect("cold");
        assert_eq!(cold.cache_hits, 0);
        let mut reseeded = config.clone();
        reseeded.tool_seed = config.tool_seed + 1;
        let miss = run_composition_matrix(&store, &reseeded, &NullSink).expect("reseeded");
        assert_eq!(miss.cache_hits, 0, "a different seed must miss the cache");
        assert_eq!(miss.routed, 4 * store.total_instances());
    }
}
