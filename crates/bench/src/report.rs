//! Plain-text rendering of experiment reports, mirroring the rows the paper
//! plots in Figure 4 and quotes in the text.

use crate::ablations::{AblationReport, MatrixReport};
use crate::analytics::{AnalyticsReport, GAP_BUCKET_EDGES};
use crate::case_study::CaseStudyOutcome;
use crate::evaluation::EvaluationReport;
use crate::optimality::OptimalityReport;
use qubikos_layout::ToolKind;
use std::fmt::Write as _;

/// Renders one device's Figure-4 data as a table: rows are tools, columns are
/// the designed SWAP counts, entries are the average SWAP ratio.
pub fn render_evaluation(report: &EvaluationReport) -> String {
    let mut counts: Vec<usize> = report.cells.iter().map(|c| c.optimal_swaps).collect();
    counts.sort_unstable();
    counts.dedup();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "SWAP ratio (average inserted / optimal) on {}",
        report.device.name()
    );
    let _ = write!(out, "{:<12}", "tool");
    for c in &counts {
        let _ = write!(out, "{:>12}", format!("opt={c}"));
    }
    let _ = writeln!(out, "{:>12}", "device gap");
    for tool in ToolKind::ALL {
        let cells = report.cells_for(tool);
        if cells.is_empty() {
            continue;
        }
        let _ = write!(out, "{:<12}", tool.name());
        for c in &counts {
            match cells.iter().find(|cell| cell.optimal_swaps == *c) {
                Some(cell) => {
                    let _ = write!(out, "{:>12.2}", cell.swap_ratio);
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let gap = report.device_gap(tool).unwrap_or(f64::NAN);
        let _ = writeln!(out, "{gap:>11.2}x");
    }
    out
}

/// Renders the abstract's headline per-tool aggregate gaps.
pub fn render_aggregate(aggregate: &[(ToolKind, f64)]) -> String {
    let mut out = String::from("Aggregate optimality gap across devices\n");
    for (tool, gap) in aggregate {
        let _ = writeln!(out, "  {:<12}{gap:>8.2}x", tool.name());
    }
    out
}

/// Renders the §IV-A optimality-study summary: the headline line plus the
/// exact solver's per-`k` budget breakdown, so the study output shows where
/// the search nodes and wall-clock went.
pub fn render_optimality(report: &OptimalityReport) -> String {
    let mut out = format!(
        "optimality study: {} circuits, {} certified, {} exhaustively confirmed, {} over exact budget, {} failures\n",
        report.circuits,
        report.certified,
        report.exactly_confirmed,
        report.exact_budget_exceeded,
        report.failures
    );
    if report.deadline_exceeded > 0 {
        let _ = writeln!(
            out,
            "deadline: {} circuit(s) exceeded the per-job wall-clock budget (certified, not exhaustively confirmed)",
            report.deadline_exceeded
        );
    }
    if report.exact_nodes > 0 {
        let _ = writeln!(
            out,
            "exact solver: {} nodes, {:.1} ms wall-clock (summed over jobs)",
            report.exact_nodes,
            report.exact_wall_micros as f64 / 1e3
        );
        for entry in &report.exact_nodes_by_k {
            let _ = writeln!(
                out,
                "  k={}: {} queries, {} nodes",
                entry.swaps, entry.queries, entry.nodes
            );
        }
    }
    out
}

/// Renders the §IV-C case-study comparison.
pub fn render_case_study(outcome: &CaseStudyOutcome) -> String {
    format!(
        "LightSABRE lookahead case study on {} ({} circuits, optimal initial mapping supplied)\n\
         uniform lookahead : ratio {:.2}x, optimal on {}/{} circuits\n\
         decayed lookahead : ratio {:.2}x (decay {}), optimal on {}/{} circuits\n",
        outcome.device.name(),
        outcome.circuits,
        outcome.uniform_lookahead_ratio,
        outcome.uniform_optimal,
        outcome.circuits,
        outcome.decayed_lookahead_ratio,
        outcome.decay,
        outcome.decayed_optimal,
        outcome.circuits
    )
}

/// Renders the streaming corpus analytics: per-tool coverage, optimality
/// and win counts, the gap-distribution histograms, and the scaling curves.
/// Every ratio is derived from the integer fold here, at render time, so
/// the rendered text is bit-identical for any thread count.
pub fn render_analytics(report: &AnalyticsReport) -> String {
    let summary = &report.summary;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus analytics on {}: {} instances in {} shards, {} fully covered (tool seed {})",
        report.device.name(),
        summary.instances,
        report.shards,
        summary.fully_covered,
        report.tool_seed
    );
    if report.shards_quarantined > 0 || report.cache.corrupt_entries > 0 {
        let _ = writeln!(
            out,
            "degraded: {} shard(s) quarantined, {} corrupt cache entr(ies) quarantined",
            report.shards_quarantined, report.cache.corrupt_entries
        );
    }
    let _ = writeln!(
        out,
        "{:<12}{:>10}{:>10}{:>10}{:>12}",
        "tool", "covered", "optimal", "wins", "agg ratio"
    );
    for tool in &summary.tools {
        let ratio = if tool.sum_designed > 0 {
            tool.sum_swaps as f64 / tool.sum_designed as f64
        } else {
            f64::NAN
        };
        let _ = writeln!(
            out,
            "{:<12}{:>10}{:>10}{:>10}{:>11.2}x",
            tool.tool.name(),
            tool.covered,
            tool.optimal,
            tool.wins,
            ratio
        );
    }
    let _ = writeln!(
        out,
        "gap histogram (upper edges {GAP_BUCKET_EDGES:?}, then overflow)"
    );
    for tool in &summary.tools {
        if tool.covered == 0 {
            continue;
        }
        let _ = write!(out, "  {:<12}", tool.tool.name());
        for count in &tool.gap_histogram {
            let _ = write!(out, "{count:>7}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "scaling (average inserted SWAPs by designed count)");
    for tool in &summary.tools {
        if tool.scaling.is_empty() {
            continue;
        }
        let _ = write!(out, "  {:<12}", tool.tool.name());
        for point in &tool.scaling {
            let _ = write!(
                out,
                " {}:{:.2}",
                point.designed,
                point.sum_swaps as f64 / point.instances as f64
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the three ablation sweeps as the tables the `ablations` binary
/// prints.
pub fn render_ablations(report: &AblationReport) -> String {
    let mut out = String::new();
    let device = report.device.name();
    let _ = writeln!(out, "SABRE trial-count ablation on {device}");
    for point in &report.trial_counts {
        let _ = writeln!(
            out,
            "  trials={:<3} mean swap ratio {:.2}x",
            point.parameter, point.mean_swap_ratio
        );
    }
    let _ = writeln!(out, "SABRE extended-set-size ablation on {device}");
    for point in &report.extended_set_sizes {
        let _ = writeln!(
            out,
            "  extended-set={:<3} mean swap ratio {:.2}x",
            point.parameter, point.mean_swap_ratio
        );
    }
    let _ = writeln!(
        out,
        "Padding ablation on {device} (optimal swaps = {})",
        report.padding_swap_count
    );
    for point in &report.padding_gate_budgets {
        let _ = writeln!(
            out,
            "  two-qubit gates={:<4} mean swap ratio {:.2}x",
            point.parameter, point.mean_swap_ratio
        );
    }
    out
}

/// Renders the ranked composition matrix: one row per composition, best
/// mean gap first. The id doubles as the cache namespace, so a row can be
/// correlated with its `results/<id>/` entries directly.
pub fn render_composition_matrix(report: &MatrixReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "composition matrix on {}: {} compositions ranked over {} known-optimal instances",
        report.device.name(),
        report.compositions.len(),
        report.instances
    );
    let _ = writeln!(
        out,
        "{:>4}  {:<44}{:>10}{:>10}{:>10}{:>12}",
        "rank", "composition", "mean gap", "win rate", "optimal", "avg swaps"
    );
    for (rank, row) in report.compositions.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4}  {:<44}{:>9.2}x{:>9.0}%{:>10}{:>12.2}",
            rank + 1,
            row.id,
            row.mean_gap,
            row.win_rate * 100.0,
            row.optimal,
            row.average_swaps
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablations::AblationPoint;
    use crate::evaluation::EvaluationCell;
    use qubikos_arch::DeviceKind;

    fn sample_report() -> EvaluationReport {
        EvaluationReport {
            device: DeviceKind::Aspen4,
            cells: vec![
                EvaluationCell {
                    tool: ToolKind::LightSabre,
                    optimal_swaps: 5,
                    circuits: 10,
                    average_swaps: 7.0,
                    swap_ratio: 1.4,
                },
                EvaluationCell {
                    tool: ToolKind::LightSabre,
                    optimal_swaps: 10,
                    circuits: 10,
                    average_swaps: 25.0,
                    swap_ratio: 2.5,
                },
                EvaluationCell {
                    tool: ToolKind::Tket,
                    optimal_swaps: 5,
                    circuits: 10,
                    average_swaps: 70.0,
                    swap_ratio: 14.0,
                },
            ],
        }
    }

    #[test]
    fn evaluation_table_contains_tools_and_counts() {
        let text = render_evaluation(&sample_report());
        assert!(text.contains("aspen-4"));
        assert!(text.contains("lightsabre"));
        assert!(text.contains("tket"));
        assert!(text.contains("opt=5"));
        assert!(text.contains("1.40"));
        assert!(text.contains("14.00"));
    }

    #[test]
    fn aggregate_table_lists_gaps() {
        let text = render_aggregate(&[(ToolKind::LightSabre, 1.95), (ToolKind::Qmap, 207.0)]);
        assert!(text.contains("lightsabre"));
        assert!(text.contains("207.00x"));
    }

    #[test]
    fn optimality_and_case_study_render() {
        use crate::optimality::ExactNodesAtK;
        let text = render_optimality(&OptimalityReport {
            circuits: 10,
            certified: 10,
            exactly_confirmed: 5,
            exact_budget_exceeded: 0,
            deadline_exceeded: 1,
            failures: 0,
            exact_nodes: 1500,
            exact_nodes_by_k: vec![
                ExactNodesAtK {
                    swaps: 1,
                    queries: 5,
                    nodes: 500,
                },
                ExactNodesAtK {
                    swaps: 2,
                    queries: 3,
                    nodes: 1000,
                },
            ],
            exact_wall_micros: 2500,
        });
        assert!(text.contains("10 circuits"));
        assert!(text.contains("1 circuit(s) exceeded the per-job wall-clock budget"));
        assert!(text.contains("1500 nodes"));
        assert!(text.contains("k=1: 5 queries, 500 nodes"));
        assert!(text.contains("k=2: 3 queries, 1000 nodes"));
        assert!(text.contains("2.5 ms"));
        let text = render_case_study(&CaseStudyOutcome {
            device: DeviceKind::Aspen4,
            circuits: 4,
            uniform_lookahead_ratio: 1.5,
            decayed_lookahead_ratio: 1.2,
            decay: 0.7,
            uniform_optimal: 2,
            decayed_optimal: 3,
        });
        assert!(text.contains("uniform lookahead"));
        assert!(text.contains("decay 0.7"));
    }

    #[test]
    fn analytics_table_renders_rates_and_curves() {
        use crate::analytics::ShardSummary;
        let mut summary = ShardSummary::empty(&[ToolKind::LightSabre, ToolKind::Tket]);
        summary.add_instance(5, &[Some(5), Some(9)]);
        summary.add_instance(10, &[Some(14), None]);
        let text = render_analytics(&AnalyticsReport {
            device: DeviceKind::Grid3x3,
            tool_seed: 7,
            shards: 2,
            shards_quarantined: 0,
            cache: crate::store::CacheStatsSnapshot::default(),
            summary,
        });
        assert!(text.contains("2 instances in 2 shards"));
        assert!(!text.contains("degraded:"));
        assert!(text.contains("1 fully covered"));
        assert!(text.contains("lightsabre"));
        assert!(text.contains("tket"));
        // lightsabre: (5 + 14) / (5 + 10) ≈ 1.27
        assert!(text.contains("1.27x"));
        // Scaling: lightsabre averages 5.00 at designed 5 and 14.00 at 10.
        assert!(text.contains("5:5.00"));
        assert!(text.contains("10:14.00"));
        assert!(text.contains("gap histogram"));
    }

    #[test]
    fn ablation_tables_render_every_sweep() {
        let text = render_ablations(&AblationReport {
            device: DeviceKind::Aspen4,
            trial_counts: vec![AblationPoint {
                parameter: 4,
                mean_swap_ratio: 1.5,
            }],
            extended_set_sizes: vec![AblationPoint {
                parameter: 20,
                mean_swap_ratio: 1.3,
            }],
            padding_gate_budgets: vec![AblationPoint {
                parameter: 200,
                mean_swap_ratio: 1.8,
            }],
            padding_swap_count: 6,
        });
        assert!(text.contains("trials=4"));
        assert!(text.contains("extended-set=20"));
        assert!(text.contains("two-qubit gates=200"));
        assert!(text.contains("optimal swaps = 6"));
    }

    #[test]
    fn composition_matrix_renders_ranked_rows() {
        use crate::ablations::CompositionSummary;
        use qubikos_layout::RouterSpec;
        let row = |id: &str, gap: f64, wins: usize| CompositionSummary {
            id: id.to_string(),
            spec: RouterSpec::tket(),
            instances: 4,
            average_swaps: 3.25,
            mean_gap: gap,
            wins,
            win_rate: wins as f64 / 4.0,
            optimal: wins,
        };
        let text = render_composition_matrix(&MatrixReport {
            device: DeviceKind::Grid3x3,
            instances: 4,
            compositions: vec![
                row("g1x1s16.front.nodecay.idxtie.bfs.uw", 1.25, 4),
                row("astar256.front.nodecay.idxtie.ident.uw", 2.5, 1),
            ],
        });
        assert!(text.contains("2 compositions ranked over 4 known-optimal instances"));
        assert!(text.contains("   1  g1x1s16.front.nodecay.idxtie.bfs.uw"));
        assert!(text.contains("   2  astar256.front.nodecay.idxtie.ident.uw"));
        assert!(text.contains("1.25x"));
        assert!(text.contains("100%"));
    }
}
