//! The Figure-4 experiment: SWAP-ratio optimality gaps of heuristic tools.
//!
//! Execution goes through [`qubikos_engine`]: one job per (tool, circuit)
//! pair, stolen dynamically by the worker threads, so a slow tool on a big
//! instance (QMAP on Eagle-127 can take orders of magnitude longer than
//! t|ket⟩ on the same circuit) never serializes the run the way the old
//! static chunking did. Each worker builds every router **once** and reuses
//! it across all of its jobs — routers derive their RNG from their config
//! seed on every `route` call, so reuse is bit-identical to rebuilding while
//! skipping the per-circuit allocation and setup cost.
//!
//! Two entry points produce the same report:
//!
//! * [`run_tool_evaluation`] generates the suite in memory and routes every
//!   (tool, circuit) pair — the original, self-contained pipeline;
//! * [`run_suite_evaluation`] runs from a [`SuiteStore`] corpus on disk,
//!   consulting the store's content-addressed result cache first: pairs the
//!   cache already holds are *not routed at all*, so a repeated or resumed
//!   run costs only the cache reads. Both report bit-identical numbers for
//!   the same suite because routing is deterministic per (tool, circuit).

use crate::store::{StoreError, SuiteStore};
use qubikos::{generate_suite, ExperimentPoint, GenerateError, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_engine::{Engine, JobKey, NullSink, ProgressSink, AUTO_THREADS};
use qubikos_layout::{validate_routing, Router, ToolKind};
use serde::{Deserialize, Serialize};

/// The tool seed every standard evaluation hands to the routers. One
/// constant shared by [`EvaluationConfig::paper`]/[`EvaluationConfig::quick`]
/// and [`SuiteEvalConfig::default`], so the in-memory and suite-backed
/// pipelines can never drift apart and silently break their bit-identical
/// contract.
pub const DEFAULT_TOOL_SEED: u64 = 7;

/// Configuration of one tool-evaluation run (one subfigure of Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Device under evaluation.
    pub device: DeviceKind,
    /// Suite to generate (SWAP counts, circuits per count, gate budget).
    pub suite: SuiteConfig,
    /// Tools to evaluate.
    pub tools: Vec<ToolKind>,
    /// Seed handed to every tool (the suite has its own base seed).
    pub tool_seed: u64,
    /// Number of worker threads; [`AUTO_THREADS`] (0) uses every available
    /// core, 1 disables parallelism. The report is identical either way.
    pub threads: usize,
}

impl EvaluationConfig {
    /// The paper's full configuration for `device` (10 circuits per SWAP
    /// count, all four tools), running on every available core.
    pub fn paper(device: DeviceKind) -> Self {
        EvaluationConfig {
            device,
            suite: SuiteConfig::paper_evaluation(device),
            tools: ToolKind::ALL.to_vec(),
            tool_seed: DEFAULT_TOOL_SEED,
            threads: AUTO_THREADS,
        }
    }

    /// A scaled-down configuration that preserves the experiment's shape but
    /// runs in seconds (used by the default CLI invocation and the benches).
    pub fn quick(device: DeviceKind) -> Self {
        let mut config = Self::paper(device);
        config.suite = config.suite.with_circuits_per_count(2);
        // Keep the large devices affordable: fewer gates, same SWAP counts.
        config.suite.two_qubit_gates = config.suite.two_qubit_gates.min(400);
        config
    }

    /// Returns the configuration with an explicit thread count
    /// ([`AUTO_THREADS`] = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Average results of one (tool, designed SWAP count) cell of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationCell {
    /// The tool evaluated.
    pub tool: ToolKind,
    /// Designed (optimal) SWAP count of the circuits in the cell.
    pub optimal_swaps: usize,
    /// Number of circuits in the cell.
    pub circuits: usize,
    /// Average SWAPs the tool inserted.
    pub average_swaps: f64,
    /// Average SWAP ratio (the paper's optimality gap for this cell).
    ///
    /// For a zero-optimum cell (QUEKO-style circuits whose designed SWAP
    /// count is 0) the ratio is undefined, so the cell reports the average
    /// **absolute excess** SWAPs instead — `average_swaps - 0` — rather
    /// than an infinity or NaN that would poison every aggregate above it.
    pub swap_ratio: f64,
}

/// All cells of one device's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Device the report was produced on.
    pub device: DeviceKind,
    /// One row per (tool, SWAP count) combination.
    pub cells: Vec<EvaluationCell>,
}

impl EvaluationReport {
    /// All cells belonging to one tool, ordered by SWAP count.
    pub fn cells_for(&self, tool: ToolKind) -> Vec<&EvaluationCell> {
        let mut cells: Vec<&EvaluationCell> =
            self.cells.iter().filter(|c| c.tool == tool).collect();
        cells.sort_by_key(|c| c.optimal_swaps);
        cells
    }

    /// The device-level optimality gap of one tool: mean SWAP ratio over all
    /// of its cells.
    pub fn device_gap(&self, tool: ToolKind) -> Option<f64> {
        let cells = self.cells_for(tool);
        if cells.is_empty() {
            return None;
        }
        Some(cells.iter().map(|c| c.swap_ratio).sum::<f64>() / cells.len() as f64)
    }
}

/// The cell-level gap metric, guarded for zero-optimum cells: the SWAP
/// ratio where it is defined, the absolute excess SWAP count where it is
/// not (see [`EvaluationCell::swap_ratio`]). Shared with the analytics
/// module, whose gap histogram buckets the same per-instance metric.
pub(crate) fn cell_gap(average_swaps: f64, optimal_swaps: usize) -> f64 {
    if optimal_swaps == 0 {
        average_swaps
    } else {
        average_swaps / optimal_swaps as f64
    }
}

/// Runs one subfigure of Figure 4: generates the QUBIKOS suite for the device
/// and measures the SWAP ratio of every requested tool on every circuit.
///
/// # Errors
///
/// Propagates [`GenerateError`] on suite misconfiguration (zero SWAP count,
/// unsupported architecture) instead of panicking.
///
/// # Panics
///
/// Panics if a tool produces an invalid routing (this would be a bug in the
/// tool, not a property of the benchmark, and must never be silently
/// averaged into the results). The engine attributes the panic to the exact
/// (tool, circuit) job that failed.
pub fn run_tool_evaluation(config: &EvaluationConfig) -> Result<EvaluationReport, GenerateError> {
    run_tool_evaluation_with_sink(config, &NullSink)
}

/// [`run_tool_evaluation`] with a caller-supplied progress/metrics sink
/// (stderr streaming in the CLI, per-job timing JSON in nightly CI).
///
/// # Errors
///
/// # Panics
///
/// As [`run_tool_evaluation`].
pub fn run_tool_evaluation_with_sink(
    config: &EvaluationConfig,
    sink: &dyn ProgressSink,
) -> Result<EvaluationReport, GenerateError> {
    let arch = config.device.build();
    let suite = generate_suite(&arch, &config.suite)?;

    // Route every (tool, circuit) pair, point-major so the expensive large
    // instances of different tools interleave across workers.
    let jobs: Vec<(usize, usize)> = all_pairs(suite.len(), config.tools.len());
    let swaps = route_jobs(
        &arch,
        &suite,
        &config.tools,
        config.tool_seed,
        config.threads,
        &jobs,
        sink,
    );

    let point_swap_counts: Vec<usize> = suite.iter().map(|p| p.swap_count).collect();
    Ok(assemble_report(
        config.device,
        &config.tools,
        &config.suite.swap_counts,
        &point_swap_counts,
        &jobs,
        &swaps,
    ))
}

/// Configuration of a suite-backed evaluation: everything *except* the suite
/// itself, which comes from the store's manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteEvalConfig {
    /// Tools to evaluate.
    pub tools: Vec<ToolKind>,
    /// Seed handed to every tool. Cached results record the seed they were
    /// produced with; an entry with a different seed is a cache miss.
    pub tool_seed: u64,
    /// Number of worker threads ([`AUTO_THREADS`] = all available cores).
    pub threads: usize,
}

impl Default for SuiteEvalConfig {
    /// All four tools with the evaluation pipeline's standard tool seed —
    /// the same values [`EvaluationConfig::paper`] uses, so a suite-backed
    /// run reproduces the in-memory pipeline's report.
    fn default() -> Self {
        SuiteEvalConfig {
            tools: ToolKind::ALL.to_vec(),
            tool_seed: DEFAULT_TOOL_SEED,
            threads: AUTO_THREADS,
        }
    }
}

impl SuiteEvalConfig {
    /// Returns the configuration with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One cached routing result: the `results/<tool>/<circuit-hash>.json`
/// payload of the suite store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedRouting {
    /// Tool that produced the result.
    pub tool: String,
    /// Seed the tool ran with.
    pub tool_seed: u64,
    /// Content hash of the routed circuit's QASM (redundant with the entry's
    /// file name; stored for self-description and defense in depth).
    pub circuit_hash: String,
    /// SWAPs the tool inserted.
    pub swaps: usize,
}

/// Result of a suite-backed evaluation: the report plus how much work the
/// cache saved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteEvalOutcome {
    /// The evaluation report (bit-identical to the in-memory pipeline's
    /// report for the same suite).
    pub report: EvaluationReport,
    /// (tool, circuit) pairs actually routed in this run.
    pub routed: usize,
    /// (tool, circuit) pairs answered from the result cache.
    pub cache_hits: usize,
    /// Shards processed this run.
    pub shards: usize,
    /// Shards skipped because their manifest or an instance file was
    /// persistently corrupt; the offending file was moved to the store's
    /// `quarantine/` directory and the report covers the remaining shards.
    pub shards_quarantined: usize,
    /// Whether the whole corpus was covered (false when the run was
    /// truncated by `stop_after_shards` — the report then covers a prefix).
    pub complete: bool,
}

/// Runs the Figure-4 evaluation from a stored suite, reading and writing
/// the store's content-addressed result cache.
///
/// The run streams shard by shard: at most one shard of circuits is ever
/// materialized (and integrity-checked — hash, parse, regeneration round
/// trip), and only when at least one of that shard's (tool, circuit) pairs
/// misses the cache; a fully-warm run reads nothing but the shard manifests
/// and the cache entries. Use `SuiteStore::verify_streaming` for a
/// standalone integrity check.
///
/// # Errors
///
/// Propagates [`StoreError`] from loading a shard or writing cache
/// entries. A corrupt cache *entry* is not an error — it reads as a miss
/// and is recomputed and rewritten.
///
/// # Panics
///
/// As [`run_tool_evaluation`], if a tool produces an invalid routing.
pub fn run_suite_evaluation(
    store: &SuiteStore,
    config: &SuiteEvalConfig,
) -> Result<SuiteEvalOutcome, StoreError> {
    run_suite_evaluation_with_sink(store, config, &NullSink)
}

/// [`run_suite_evaluation`] with a caller-supplied progress/metrics sink.
/// The sink only sees the jobs that actually run (cache misses), one engine
/// worklist per shard with misses.
///
/// # Errors
///
/// # Panics
///
/// As [`run_suite_evaluation`].
pub fn run_suite_evaluation_with_sink(
    store: &SuiteStore,
    config: &SuiteEvalConfig,
    sink: &dyn ProgressSink,
) -> Result<SuiteEvalOutcome, StoreError> {
    run_suite_evaluation_partial(store, config, None, sink)
}

/// The streaming core of the suite-backed evaluation: processes shards in
/// order, folding each shard's results into the report accumulator before
/// the next shard is touched, so memory stays bounded by one shard plus the
/// fold state no matter how large the corpus is.
///
/// `stop_after_shards` truncates the run after that many shards (the
/// interrupt hook for resume tests and CI); per-pair results are banked in
/// the content-addressed cache as they are produced, so a rerun answers the
/// already-processed shards entirely from cache — resume at shard
/// granularity falls out of the cache semantics, no ledger needed.
///
/// A shard whose manifest or instance files are *persistently* corrupt
/// (reads are retried first) is quarantined and skipped rather than failing
/// the run: the offending file moves to `quarantine/`, the skip is counted
/// in [`SuiteEvalOutcome::shards_quarantined`], and the report covers the
/// surviving shards. Plain I/O errors still propagate.
///
/// # Errors
///
/// # Panics
///
/// As [`run_suite_evaluation`].
pub fn run_suite_evaluation_partial(
    store: &SuiteStore,
    config: &SuiteEvalConfig,
    stop_after_shards: Option<usize>,
    sink: &dyn ProgressSink,
) -> Result<SuiteEvalOutcome, StoreError> {
    let device = store.device();
    let arch = device.build();
    let swap_counts = store.config().swap_counts.clone();
    let shards = stop_after_shards
        .unwrap_or(usize::MAX)
        .min(store.shard_count());
    let mut fold = EvalFold::new(&config.tools, &swap_counts);
    let mut routed_total = 0;
    let mut cache_hits = 0;
    let mut shards_quarantined = 0;

    for shard in 0..shards {
        match eval_shard(store, config, &arch, shard, sink) {
            Ok((results, routed, hits)) => {
                for (tool_index, designed, swaps) in results {
                    fold.add(tool_index, designed, swaps);
                }
                routed_total += routed;
                cache_hits += hits;
            }
            Err(error) if error.is_corruption() => {
                store.quarantine_shard_error(shard, &error);
                shards_quarantined += 1;
            }
            Err(error) => return Err(error),
        }
    }

    Ok(SuiteEvalOutcome {
        report: fold.finish(device),
        routed: routed_total,
        cache_hits,
        shards,
        shards_quarantined,
        complete: shards == store.shard_count(),
    })
}

/// Evaluates one shard: cache lookups, engine routing of the misses, cache
/// writes. Returns `(tool_index, designed SWAP count, inserted SWAPs)` per
/// (tool, instance) pair plus the routed/cache-hit counts — everything the
/// caller's fold needs, so a corrupt shard can be dropped wholesale before
/// anything is folded.
#[allow(clippy::type_complexity)]
fn eval_shard(
    store: &SuiteStore,
    config: &SuiteEvalConfig,
    arch: &Architecture,
    shard: usize,
    sink: &dyn ProgressSink,
) -> Result<(Vec<(usize, usize, usize)>, usize, usize), StoreError> {
    let records = store.shard_records(shard)?;
    let jobs: Vec<(usize, usize)> = all_pairs(records.len(), config.tools.len());
    let job_key = |&(tool_index, point_index): &(usize, usize)| {
        JobKey::new(
            config.tools[tool_index].name(),
            &records[point_index].content_hash,
        )
    };

    // Resolve the cache first: only misses become engine jobs.
    let mut swaps: Vec<Option<usize>> = jobs
        .iter()
        .map(|job| {
            let cached: CachedRouting = store.read_cached(&job_key(job))?;
            // An entry produced under a different tool seed (or,
            // defensively, for different bytes) answers a different
            // question: miss.
            (cached.tool_seed == config.tool_seed
                && cached.circuit_hash == records[job.1].content_hash)
                .then_some(cached.swaps)
        })
        .collect();
    let misses: Vec<(usize, usize)> = jobs
        .iter()
        .zip(&swaps)
        .filter(|(_, cached)| cached.is_none())
        .map(|(&job, _)| job)
        .collect();

    if !misses.is_empty() {
        // The shard's circuits are only materialized — and only this
        // shard re-verified (hash, parse, regeneration round trip) —
        // when there is fresh routing to do. Each result is persisted
        // from inside its job: a run killed at 90% of a large corpus has
        // already banked 90% of its work (`write_cached` is
        // rename-atomic, so a kill mid-write costs only that one entry).
        let loaded = store.load_shard(shard)?;
        let engine = Engine::new(config.threads).with_base_seed(config.tool_seed);
        let routed: Vec<usize> = engine
            .run_values(
                &misses,
                |_worker| {
                    config
                        .tools
                        .iter()
                        .map(|&tool| tool.build(config.tool_seed))
                        .collect::<Vec<_>>()
                },
                |routers, _ctx, job: &(usize, usize)| -> Result<usize, StoreError> {
                    let swaps = route_and_count(routers[job.0].as_ref(), &loaded[job.1], arch);
                    store.write_cached(
                        &job_key(job),
                        &CachedRouting {
                            tool: config.tools[job.0].name().to_string(),
                            tool_seed: config.tool_seed,
                            circuit_hash: records[job.1].content_hash.clone(),
                            swaps,
                        },
                    )?;
                    Ok(swaps)
                },
                sink,
            )
            .unwrap_or_else(|error| panic!("tool evaluation aborted: {error}"))
            .into_iter()
            .collect::<Result<_, _>>()?;

        // Fill the gaps left by the cache misses.
        let mut fresh = routed.iter();
        for slot in swaps.iter_mut().filter(|slot| slot.is_none()) {
            *slot = Some(*fresh.next().expect("one routed result per miss"));
        }
    }

    let results = jobs
        .iter()
        .zip(&swaps)
        .map(|(&(tool_index, point_index), slot)| {
            (
                tool_index,
                records[point_index].swap_count,
                slot.expect("every job resolved"),
            )
        })
        .collect();
    Ok((results, misses.len(), jobs.len() - misses.len()))
}

/// The point-major (tool, circuit) job list both pipelines share: all tools
/// of point 0, then all tools of point 1, … so the expensive large instances
/// of different tools interleave across workers. Shared with the ablation
/// matrix, whose "tools" are composition indices.
pub(crate) fn all_pairs(points: usize, tools: usize) -> Vec<(usize, usize)> {
    (0..points)
        .flat_map(|point_index| (0..tools).map(move |tool_index| (tool_index, point_index)))
        .collect()
}

/// Routes the given `(tool_index, point_index)` jobs on the engine and
/// returns the inserted SWAP counts in job order. Each worker builds every
/// router once; `route` reseeds from the config on every call, so reuse
/// changes nothing but speed.
fn route_jobs(
    arch: &Architecture,
    suite: &[ExperimentPoint],
    tools: &[ToolKind],
    tool_seed: u64,
    threads: usize,
    jobs: &[(usize, usize)],
    sink: &dyn ProgressSink,
) -> Vec<usize> {
    let engine = Engine::new(threads).with_base_seed(tool_seed);
    engine
        .run_values(
            jobs,
            |_worker| {
                tools
                    .iter()
                    .map(|&tool| tool.build(tool_seed))
                    .collect::<Vec<_>>()
            },
            |routers, _ctx, &(tool_index, point_index)| {
                route_and_count(routers[tool_index].as_ref(), &suite[point_index], arch)
            },
            sink,
        )
        .unwrap_or_else(|error| panic!("tool evaluation aborted: {error}"))
}

/// Incremental accumulator behind every evaluation report: per
/// (tool, designed SWAP count) cell it keeps only an integer SWAP sum and a
/// circuit count, so folding is **exactly associative** — results folded
/// shard by shard, or all at once, or in any grouping, finish to the same
/// bytes. Averages and ratios are derived (in f64) only at
/// [`finish`](Self::finish), never accumulated.
struct EvalFold<'a> {
    tools: &'a [ToolKind],
    swap_counts: &'a [usize],
    /// `cells[tool_index][count_index]` = (SWAP sum, circuits).
    cells: Vec<Vec<(u64, usize)>>,
}

impl<'a> EvalFold<'a> {
    fn new(tools: &'a [ToolKind], swap_counts: &'a [usize]) -> Self {
        EvalFold {
            tools,
            swap_counts,
            cells: vec![vec![(0, 0); swap_counts.len()]; tools.len()],
        }
    }

    /// Adds one routed (tool, circuit) result. Results for designed counts
    /// outside the configured grid are dropped, matching the historical
    /// cell-filter semantics.
    fn add(&mut self, tool_index: usize, designed_swaps: usize, swaps: usize) {
        if let Some(count_index) = self.swap_counts.iter().position(|&c| c == designed_swaps) {
            let cell = &mut self.cells[tool_index][count_index];
            cell.0 += swaps as u64;
            cell.1 += 1;
        }
    }

    /// Renders the accumulated cells, visiting tools then SWAP counts in
    /// config order (empty cells skipped) — the exact order and arithmetic
    /// of the original one-shot report assembly.
    fn finish(self, device: DeviceKind) -> EvaluationReport {
        let mut cells = Vec::new();
        for (tool_index, &tool) in self.tools.iter().enumerate() {
            for (count_index, &count) in self.swap_counts.iter().enumerate() {
                let (sum, circuits) = self.cells[tool_index][count_index];
                if circuits == 0 {
                    continue;
                }
                let average_swaps = sum as f64 / circuits as f64;
                cells.push(EvaluationCell {
                    tool,
                    optimal_swaps: count,
                    circuits,
                    average_swaps,
                    swap_ratio: cell_gap(average_swaps, count),
                });
            }
        }
        EvaluationReport { device, cells }
    }
}

/// Folds per-job SWAP counts into the per-(tool, SWAP count) cell grid.
/// `swaps[i]` is the result of `jobs[i]`; the fold is associative (see
/// [`EvalFold`]), so the report is schedule-independent.
/// `point_swap_counts[p]` is point `p`'s designed SWAP count — the only
/// per-circuit datum the fold needs.
fn assemble_report(
    device: DeviceKind,
    tools: &[ToolKind],
    swap_counts: &[usize],
    point_swap_counts: &[usize],
    jobs: &[(usize, usize)],
    swaps: &[usize],
) -> EvaluationReport {
    let mut fold = EvalFold::new(tools, swap_counts);
    for (&(tool_index, point_index), &s) in jobs.iter().zip(swaps) {
        fold.add(tool_index, point_swap_counts[point_index], s);
    }
    fold.finish(device)
}

pub(crate) fn route_and_count(
    router: &dyn Router,
    point: &ExperimentPoint,
    arch: &Architecture,
) -> usize {
    let routed = router
        .route(point.benchmark.circuit(), arch)
        .expect("benchmark circuits always fit their own architecture");
    validate_routing(point.benchmark.circuit(), arch, &routed)
        .expect("tools under evaluation must produce valid routings");
    routed.swap_count()
}

/// Aggregates several device reports into the per-tool headline gaps the
/// abstract quotes (the mean of each tool's device-level gaps).
pub fn aggregate_by_tool(reports: &[EvaluationReport]) -> Vec<(ToolKind, f64)> {
    let mut aggregate = Vec::new();
    for tool in ToolKind::ALL {
        let gaps: Vec<f64> = reports.iter().filter_map(|r| r.device_gap(tool)).collect();
        if gaps.is_empty() {
            continue;
        }
        aggregate.push((tool, gaps.iter().sum::<f64>() / gaps.len() as f64));
    }
    aggregate
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four (kernel-based) routers, so the invariance tests below cover
    /// every tool, not just the fast pair.
    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            device: DeviceKind::Grid3x3,
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 5,
            },
            tools: ToolKind::ALL.to_vec(),
            tool_seed: 1,
            threads: 2,
        }
    }

    #[test]
    fn evaluation_produces_one_cell_per_tool_and_count() {
        let report = run_tool_evaluation(&tiny_config()).expect("valid config");
        assert_eq!(report.cells.len(), 8);
        for cell in &report.cells {
            assert_eq!(cell.circuits, 2);
            assert!(
                cell.swap_ratio >= 1.0 - 1e-9,
                "ratio below optimum: {cell:?}"
            );
        }
        for tool in ToolKind::ALL {
            assert_eq!(report.cells_for(tool).len(), 2);
            assert!(report.device_gap(tool).is_some());
        }
    }

    #[test]
    fn single_threaded_run_matches_shape() {
        let mut config = tiny_config();
        config.threads = 1;
        config.tools = vec![ToolKind::LightSabre];
        let report = run_tool_evaluation(&config).expect("valid config");
        assert_eq!(report.cells.len(), 2);
    }

    /// The engine's determinism guarantee at the pipeline level: the whole
    /// report is byte-identical (same JSON serialization) across thread
    /// counts, including the auto count.
    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let reference = serde_json::to_string(
            &run_tool_evaluation(&tiny_config().with_threads(1)).expect("valid config"),
        )
        .expect("serialize");
        for threads in [2usize, 8, AUTO_THREADS] {
            let report =
                run_tool_evaluation(&tiny_config().with_threads(threads)).expect("valid config");
            let json = serde_json::to_string(&report).expect("serialize");
            assert_eq!(reference, json, "report diverged at threads={threads}");
        }
    }

    #[test]
    fn aggregate_averages_device_gaps() {
        let report = run_tool_evaluation(&tiny_config()).expect("valid config");
        let aggregate = aggregate_by_tool(std::slice::from_ref(&report));
        assert_eq!(aggregate.len(), 4);
        for (_, gap) in aggregate {
            assert!(gap >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn paper_and_quick_configs_cover_all_tools() {
        let paper = EvaluationConfig::paper(DeviceKind::Aspen4);
        assert_eq!(paper.tools.len(), 4);
        assert_eq!(paper.suite.two_qubit_gates, 300);
        assert_eq!(paper.threads, AUTO_THREADS);
        let quick = EvaluationConfig::quick(DeviceKind::Eagle127);
        assert!(quick.suite.two_qubit_gates <= 400);
        assert_eq!(quick.suite.circuits_per_count, 2);
    }

    /// The satellite bugfix: a misconfigured suite (zero SWAP count) must
    /// surface as an error, not a panic deep inside the pipeline.
    #[test]
    fn misconfigured_suite_returns_an_error() {
        let mut config = tiny_config();
        config.suite.swap_counts = vec![0];
        assert_eq!(
            run_tool_evaluation(&config).unwrap_err(),
            GenerateError::ZeroSwaps
        );
    }

    /// The satellite bugfix: zero-optimum cells (QUEKO-style) report the
    /// absolute excess SWAP count instead of dividing by zero.
    #[test]
    fn zero_optimum_cells_report_absolute_excess() {
        assert_eq!(cell_gap(3.5, 0), 3.5);
        assert_eq!(cell_gap(0.0, 0), 0.0);
        assert!((cell_gap(3.0, 2) - 1.5).abs() < 1e-12);
        assert!(cell_gap(7.0, 0).is_finite());
    }
}
