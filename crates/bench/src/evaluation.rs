//! The Figure-4 experiment: SWAP-ratio optimality gaps of heuristic tools.
//!
//! Execution goes through [`qubikos_engine`]: one job per (tool, circuit)
//! pair, stolen dynamically by the worker threads, so a slow tool on a big
//! instance (QMAP on Eagle-127 can take orders of magnitude longer than
//! t|ket⟩ on the same circuit) never serializes the run the way the old
//! static chunking did. Each worker builds every router **once** and reuses
//! it across all of its jobs — routers derive their RNG from their config
//! seed on every `route` call, so reuse is bit-identical to rebuilding while
//! skipping the per-circuit allocation and setup cost.

use qubikos::{generate_suite, ExperimentPoint, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_engine::{Engine, NullSink, ProgressSink, AUTO_THREADS};
use qubikos_layout::{validate_routing, Router, ToolKind};
use serde::{Deserialize, Serialize};

/// Configuration of one tool-evaluation run (one subfigure of Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Device under evaluation.
    pub device: DeviceKind,
    /// Suite to generate (SWAP counts, circuits per count, gate budget).
    pub suite: SuiteConfig,
    /// Tools to evaluate.
    pub tools: Vec<ToolKind>,
    /// Seed handed to every tool (the suite has its own base seed).
    pub tool_seed: u64,
    /// Number of worker threads; [`AUTO_THREADS`] (0) uses every available
    /// core, 1 disables parallelism. The report is identical either way.
    pub threads: usize,
}

impl EvaluationConfig {
    /// The paper's full configuration for `device` (10 circuits per SWAP
    /// count, all four tools), running on every available core.
    pub fn paper(device: DeviceKind) -> Self {
        EvaluationConfig {
            device,
            suite: SuiteConfig::paper_evaluation(device),
            tools: ToolKind::ALL.to_vec(),
            tool_seed: 7,
            threads: AUTO_THREADS,
        }
    }

    /// A scaled-down configuration that preserves the experiment's shape but
    /// runs in seconds (used by the default CLI invocation and the benches).
    pub fn quick(device: DeviceKind) -> Self {
        let mut config = Self::paper(device);
        config.suite = config.suite.with_circuits_per_count(2);
        // Keep the large devices affordable: fewer gates, same SWAP counts.
        config.suite.two_qubit_gates = config.suite.two_qubit_gates.min(400);
        config
    }

    /// Returns the configuration with an explicit thread count
    /// ([`AUTO_THREADS`] = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Average results of one (tool, designed SWAP count) cell of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationCell {
    /// The tool evaluated.
    pub tool: ToolKind,
    /// Designed (optimal) SWAP count of the circuits in the cell.
    pub optimal_swaps: usize,
    /// Number of circuits in the cell.
    pub circuits: usize,
    /// Average SWAPs the tool inserted.
    pub average_swaps: f64,
    /// Average SWAP ratio (the paper's optimality gap for this cell).
    pub swap_ratio: f64,
}

/// All cells of one device's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Device the report was produced on.
    pub device: DeviceKind,
    /// One row per (tool, SWAP count) combination.
    pub cells: Vec<EvaluationCell>,
}

impl EvaluationReport {
    /// All cells belonging to one tool, ordered by SWAP count.
    pub fn cells_for(&self, tool: ToolKind) -> Vec<&EvaluationCell> {
        let mut cells: Vec<&EvaluationCell> =
            self.cells.iter().filter(|c| c.tool == tool).collect();
        cells.sort_by_key(|c| c.optimal_swaps);
        cells
    }

    /// The device-level optimality gap of one tool: mean SWAP ratio over all
    /// of its cells.
    pub fn device_gap(&self, tool: ToolKind) -> Option<f64> {
        let cells = self.cells_for(tool);
        if cells.is_empty() {
            return None;
        }
        Some(cells.iter().map(|c| c.swap_ratio).sum::<f64>() / cells.len() as f64)
    }
}

/// Runs one subfigure of Figure 4: generates the QUBIKOS suite for the device
/// and measures the SWAP ratio of every requested tool on every circuit.
///
/// # Panics
///
/// Panics if a tool produces an invalid routing (this would be a bug in the
/// tool, not a property of the benchmark, and must never be silently
/// averaged into the results). The engine attributes the panic to the exact
/// (tool, circuit) job that failed.
pub fn run_tool_evaluation(config: &EvaluationConfig) -> EvaluationReport {
    run_tool_evaluation_with_sink(config, &NullSink)
}

/// [`run_tool_evaluation`] with a caller-supplied progress/metrics sink
/// (stderr streaming in the CLI, per-job timing JSON in nightly CI).
///
/// # Panics
///
/// As [`run_tool_evaluation`].
pub fn run_tool_evaluation_with_sink(
    config: &EvaluationConfig,
    sink: &dyn ProgressSink,
) -> EvaluationReport {
    let arch = config.device.build();
    let suite = generate_suite(&arch, &config.suite).expect("suite generation succeeds");

    // One job per (tool, circuit) pair, point-major so the expensive large
    // instances of different tools interleave across workers.
    let jobs: Vec<(usize, &ExperimentPoint)> = suite
        .iter()
        .flat_map(|point| (0..config.tools.len()).map(move |tool_index| (tool_index, point)))
        .collect();

    let engine = Engine::new(config.threads).with_base_seed(config.tool_seed);
    let swaps = engine
        .run_values(
            &jobs,
            // Build every router once per worker; `route` reseeds from the
            // config on every call, so reuse changes nothing but speed.
            |_worker| {
                config
                    .tools
                    .iter()
                    .map(|&tool| tool.build(config.tool_seed))
                    .collect::<Vec<_>>()
            },
            |routers, _ctx, &(tool_index, point)| {
                route_and_count(routers[tool_index].as_ref(), point, &arch)
            },
            sink,
        )
        .unwrap_or_else(|error| panic!("tool evaluation aborted: {error}"));

    // `swaps` is in job-id order (deterministic for any thread count), so
    // zipping it back against the job list reconstructs the full grid.
    let mut cells = Vec::new();
    for (tool_index, &tool) in config.tools.iter().enumerate() {
        for &count in &config.suite.swap_counts {
            let cell_swaps: Vec<usize> = jobs
                .iter()
                .zip(&swaps)
                .filter(|((t, point), _)| *t == tool_index && point.swap_count == count)
                .map(|(_, &s)| s)
                .collect();
            if cell_swaps.is_empty() {
                continue;
            }
            let average_swaps = cell_swaps.iter().sum::<usize>() as f64 / cell_swaps.len() as f64;
            cells.push(EvaluationCell {
                tool,
                optimal_swaps: count,
                circuits: cell_swaps.len(),
                average_swaps,
                swap_ratio: average_swaps / count as f64,
            });
        }
    }
    EvaluationReport {
        device: config.device,
        cells,
    }
}

fn route_and_count(router: &dyn Router, point: &ExperimentPoint, arch: &Architecture) -> usize {
    let routed = router
        .route(point.benchmark.circuit(), arch)
        .expect("benchmark circuits always fit their own architecture");
    validate_routing(point.benchmark.circuit(), arch, &routed)
        .expect("tools under evaluation must produce valid routings");
    routed.swap_count()
}

/// Aggregates several device reports into the per-tool headline gaps the
/// abstract quotes (the mean of each tool's device-level gaps).
pub fn aggregate_by_tool(reports: &[EvaluationReport]) -> Vec<(ToolKind, f64)> {
    let mut aggregate = Vec::new();
    for tool in ToolKind::ALL {
        let gaps: Vec<f64> = reports.iter().filter_map(|r| r.device_gap(tool)).collect();
        if gaps.is_empty() {
            continue;
        }
        aggregate.push((tool, gaps.iter().sum::<f64>() / gaps.len() as f64));
    }
    aggregate
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four (kernel-based) routers, so the invariance tests below cover
    /// every tool, not just the fast pair.
    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            device: DeviceKind::Grid3x3,
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 5,
            },
            tools: ToolKind::ALL.to_vec(),
            tool_seed: 1,
            threads: 2,
        }
    }

    #[test]
    fn evaluation_produces_one_cell_per_tool_and_count() {
        let report = run_tool_evaluation(&tiny_config());
        assert_eq!(report.cells.len(), 8);
        for cell in &report.cells {
            assert_eq!(cell.circuits, 2);
            assert!(
                cell.swap_ratio >= 1.0 - 1e-9,
                "ratio below optimum: {cell:?}"
            );
        }
        for tool in ToolKind::ALL {
            assert_eq!(report.cells_for(tool).len(), 2);
            assert!(report.device_gap(tool).is_some());
        }
    }

    #[test]
    fn single_threaded_run_matches_shape() {
        let mut config = tiny_config();
        config.threads = 1;
        config.tools = vec![ToolKind::LightSabre];
        let report = run_tool_evaluation(&config);
        assert_eq!(report.cells.len(), 2);
    }

    /// The engine's determinism guarantee at the pipeline level: the whole
    /// report is byte-identical (same JSON serialization) across thread
    /// counts, including the auto count.
    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let reference = serde_json::to_string(&run_tool_evaluation(&tiny_config().with_threads(1)))
            .expect("serialize");
        for threads in [2usize, 8, AUTO_THREADS] {
            let report = run_tool_evaluation(&tiny_config().with_threads(threads));
            let json = serde_json::to_string(&report).expect("serialize");
            assert_eq!(reference, json, "report diverged at threads={threads}");
        }
    }

    #[test]
    fn aggregate_averages_device_gaps() {
        let report = run_tool_evaluation(&tiny_config());
        let aggregate = aggregate_by_tool(std::slice::from_ref(&report));
        assert_eq!(aggregate.len(), 4);
        for (_, gap) in aggregate {
            assert!(gap >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn paper_and_quick_configs_cover_all_tools() {
        let paper = EvaluationConfig::paper(DeviceKind::Aspen4);
        assert_eq!(paper.tools.len(), 4);
        assert_eq!(paper.suite.two_qubit_gates, 300);
        assert_eq!(paper.threads, AUTO_THREADS);
        let quick = EvaluationConfig::quick(DeviceKind::Eagle127);
        assert!(quick.suite.two_qubit_gates <= 400);
        assert_eq!(quick.suite.circuits_per_count, 2);
    }
}
