//! The Figure-4 experiment: SWAP-ratio optimality gaps of heuristic tools.

use qubikos::{generate_suite, ExperimentPoint, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_layout::{validate_routing, ToolKind};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Configuration of one tool-evaluation run (one subfigure of Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Device under evaluation.
    pub device: DeviceKind,
    /// Suite to generate (SWAP counts, circuits per count, gate budget).
    pub suite: SuiteConfig,
    /// Tools to evaluate.
    pub tools: Vec<ToolKind>,
    /// Seed handed to every tool (the suite has its own base seed).
    pub tool_seed: u64,
    /// Number of worker threads; 1 disables parallelism.
    pub threads: usize,
}

impl EvaluationConfig {
    /// The paper's full configuration for `device` (10 circuits per SWAP
    /// count, all four tools).
    pub fn paper(device: DeviceKind) -> Self {
        EvaluationConfig {
            device,
            suite: SuiteConfig::paper_evaluation(device),
            tools: ToolKind::ALL.to_vec(),
            tool_seed: 7,
            threads: 4,
        }
    }

    /// A scaled-down configuration that preserves the experiment's shape but
    /// runs in seconds (used by the default CLI invocation and the benches).
    pub fn quick(device: DeviceKind) -> Self {
        let mut config = Self::paper(device);
        config.suite = config.suite.with_circuits_per_count(2);
        // Keep the large devices affordable: fewer gates, same SWAP counts.
        config.suite.two_qubit_gates = config.suite.two_qubit_gates.min(400);
        config
    }
}

/// Average results of one (tool, designed SWAP count) cell of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationCell {
    /// The tool evaluated.
    pub tool: ToolKind,
    /// Designed (optimal) SWAP count of the circuits in the cell.
    pub optimal_swaps: usize,
    /// Number of circuits in the cell.
    pub circuits: usize,
    /// Average SWAPs the tool inserted.
    pub average_swaps: f64,
    /// Average SWAP ratio (the paper's optimality gap for this cell).
    pub swap_ratio: f64,
}

/// All cells of one device's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Device the report was produced on.
    pub device: DeviceKind,
    /// One row per (tool, SWAP count) combination.
    pub cells: Vec<EvaluationCell>,
}

impl EvaluationReport {
    /// All cells belonging to one tool, ordered by SWAP count.
    pub fn cells_for(&self, tool: ToolKind) -> Vec<&EvaluationCell> {
        let mut cells: Vec<&EvaluationCell> =
            self.cells.iter().filter(|c| c.tool == tool).collect();
        cells.sort_by_key(|c| c.optimal_swaps);
        cells
    }

    /// The device-level optimality gap of one tool: mean SWAP ratio over all
    /// of its cells.
    pub fn device_gap(&self, tool: ToolKind) -> Option<f64> {
        let cells = self.cells_for(tool);
        if cells.is_empty() {
            return None;
        }
        Some(cells.iter().map(|c| c.swap_ratio).sum::<f64>() / cells.len() as f64)
    }
}

/// Runs one subfigure of Figure 4: generates the QUBIKOS suite for the device
/// and measures the SWAP ratio of every requested tool on every circuit.
///
/// # Panics
///
/// Panics if a tool produces an invalid routing (this would be a bug in the
/// tool, not a property of the benchmark, and must never be silently
/// averaged into the results).
pub fn run_tool_evaluation(config: &EvaluationConfig) -> EvaluationReport {
    let arch = config.device.build();
    let suite = generate_suite(&arch, &config.suite).expect("suite generation succeeds");
    let results = Mutex::new(Vec::new());

    let threads = config.threads.max(1);
    let work: Vec<&ExperimentPoint> = suite.iter().collect();
    let chunk_size = work.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in work.chunks(chunk_size.max(1)) {
            let results = &results;
            let arch = &arch;
            let tools = &config.tools;
            let tool_seed = config.tool_seed;
            scope.spawn(move || {
                for point in chunk {
                    for &tool in tools {
                        let swaps = route_and_count(tool, tool_seed, point, arch);
                        results
                            .lock()
                            .expect("no worker panicked holding the lock")
                            .push((tool, point.swap_count, swaps));
                    }
                }
            });
        }
    });

    let raw = results
        .into_inner()
        .expect("no worker panicked holding the lock");
    let mut cells = Vec::new();
    for &tool in &config.tools {
        for &count in &config.suite.swap_counts {
            let swaps: Vec<usize> = raw
                .iter()
                .filter(|(t, c, _)| *t == tool && *c == count)
                .map(|(_, _, s)| *s)
                .collect();
            if swaps.is_empty() {
                continue;
            }
            let average_swaps = swaps.iter().sum::<usize>() as f64 / swaps.len() as f64;
            cells.push(EvaluationCell {
                tool,
                optimal_swaps: count,
                circuits: swaps.len(),
                average_swaps,
                swap_ratio: average_swaps / count as f64,
            });
        }
    }
    EvaluationReport {
        device: config.device,
        cells,
    }
}

fn route_and_count(
    tool: ToolKind,
    seed: u64,
    point: &ExperimentPoint,
    arch: &Architecture,
) -> usize {
    let router = tool.build(seed);
    let routed = router
        .route(point.benchmark.circuit(), arch)
        .expect("benchmark circuits always fit their own architecture");
    validate_routing(point.benchmark.circuit(), arch, &routed)
        .expect("tools under evaluation must produce valid routings");
    routed.swap_count()
}

/// Aggregates several device reports into the per-tool headline gaps the
/// abstract quotes (the mean of each tool's device-level gaps).
pub fn aggregate_by_tool(reports: &[EvaluationReport]) -> Vec<(ToolKind, f64)> {
    let mut aggregate = Vec::new();
    for tool in ToolKind::ALL {
        let gaps: Vec<f64> = reports.iter().filter_map(|r| r.device_gap(tool)).collect();
        if gaps.is_empty() {
            continue;
        }
        aggregate.push((tool, gaps.iter().sum::<f64>() / gaps.len() as f64));
    }
    aggregate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            device: DeviceKind::Grid3x3,
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 5,
            },
            tools: vec![ToolKind::LightSabre, ToolKind::Tket],
            tool_seed: 1,
            threads: 2,
        }
    }

    #[test]
    fn evaluation_produces_one_cell_per_tool_and_count() {
        let report = run_tool_evaluation(&tiny_config());
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert_eq!(cell.circuits, 2);
            assert!(
                cell.swap_ratio >= 1.0 - 1e-9,
                "ratio below optimum: {cell:?}"
            );
        }
        assert_eq!(report.cells_for(ToolKind::LightSabre).len(), 2);
        assert!(report.device_gap(ToolKind::LightSabre).is_some());
        assert!(report.device_gap(ToolKind::Qmap).is_none());
    }

    #[test]
    fn single_threaded_run_matches_shape() {
        let mut config = tiny_config();
        config.threads = 1;
        config.tools = vec![ToolKind::LightSabre];
        let report = run_tool_evaluation(&config);
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn aggregate_averages_device_gaps() {
        let report = run_tool_evaluation(&tiny_config());
        let aggregate = aggregate_by_tool(std::slice::from_ref(&report));
        assert_eq!(aggregate.len(), 2);
        for (_, gap) in aggregate {
            assert!(gap >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn paper_and_quick_configs_cover_all_tools() {
        let paper = EvaluationConfig::paper(DeviceKind::Aspen4);
        assert_eq!(paper.tools.len(), 4);
        assert_eq!(paper.suite.two_qubit_gates, 300);
        let quick = EvaluationConfig::quick(DeviceKind::Eagle127);
        assert!(quick.suite.two_qubit_gates <= 400);
        assert_eq!(quick.suite.circuits_per_count, 2);
    }
}
