//! Shared machinery for the harness binaries: flag parsing helpers used by
//! every command, and the micro-benchmark sampling methodology.
//!
//! `router_bench` and `exact_bench` expose the same `--json PATH` /
//! `--samples N` interface and the same sampling methodology; both live
//! here so the two bins — and their nightly JSON artifacts — never diverge.
//! The generic `--flag value` helpers are also what the unified `qubikos`
//! CLI and the per-command bins parse with, so a flag means the same thing
//! everywhere.

use std::time::Instant;

/// Returns the value following `flag` in `args`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether the bare flag `flag` appears in `args`.
pub fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Sorted wall-clock samples of one benchmarked operation.
pub struct TimingSamples {
    sorted_ns: Vec<u64>,
}

impl TimingSamples {
    /// Runs `run` `samples` times and records each wall-clock duration.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn collect(samples: usize, mut run: impl FnMut()) -> Self {
        assert!(samples > 0, "at least one sample required");
        let mut sorted_ns: Vec<u64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_nanos() as u64
            })
            .collect();
        sorted_ns.sort_unstable();
        TimingSamples { sorted_ns }
    }

    /// The median sample (upper median for even counts).
    pub fn median_ns(&self) -> u64 {
        self.sorted_ns[self.sorted_ns.len() / 2]
    }

    /// The fastest sample.
    pub fn min_ns(&self) -> u64 {
        self.sorted_ns[0]
    }

    /// The slowest sample.
    pub fn max_ns(&self) -> u64 {
        self.sorted_ns[self.sorted_ns.len() - 1]
    }
}

/// The process's peak resident set size in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs —
/// consumers (the nightly `store_bench` artifact) treat 0 as "unavailable",
/// never as "no memory used".
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.split_whitespace()
                .next()
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .unwrap_or(0)
}

/// Parses `--json PATH` from `args`, panicking on a missing or flag-shaped
/// path.
///
/// # Panics
///
/// Panics when `--json` is present without a following path, or when the
/// "path" is itself a flag.
pub fn json_path_flag(args: &[String]) -> Option<String> {
    args.iter().position(|a| a == "--json").map(|i| {
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--json requires an output path"));
        assert!(
            !value.starts_with("--"),
            "--json requires an output path, found flag `{value}`"
        );
        value.clone()
    })
}

/// Parses `--samples N` from `args`, falling back to `default` and clamping
/// to at least 3 so a median is always a real middle element.
///
/// # Panics
///
/// Panics when `--samples` is present without a parseable positive integer.
pub fn samples_flag(args: &[String], default: usize) -> usize {
    args.iter()
        .position(|a| a == "--samples")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--samples requires a count"))
                .parse()
                .expect("--samples takes a positive integer")
        })
        .unwrap_or(default)
        .max(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_and_flag_present() {
        let a = args(&["--arch", "aspen4", "--full"]);
        assert_eq!(arg_value(&a, "--arch"), Some("aspen4".to_string()));
        assert_eq!(arg_value(&a, "--out"), None);
        assert_eq!(arg_value(&a, "--full"), None);
        assert!(flag_present(&a, "--full"));
        assert!(!flag_present(&a, "--smoke"));
    }

    #[test]
    fn json_path_is_optional() {
        assert_eq!(json_path_flag(&args(&["--samples", "5"])), None);
        assert_eq!(
            json_path_flag(&args(&["--json", "out.json"])),
            Some("out.json".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "found flag")]
    fn json_path_rejects_flag_values() {
        json_path_flag(&args(&["--json", "--samples"]));
    }

    #[test]
    fn samples_defaults_and_clamps() {
        assert_eq!(samples_flag(&args(&[]), 15), 15);
        assert_eq!(samples_flag(&args(&["--samples", "25"]), 15), 25);
        assert_eq!(samples_flag(&args(&["--samples", "1"]), 15), 3);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        // On Linux a running process always has a nonzero high-water mark;
        // elsewhere the helper degrades to its 0 sentinel.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        } else {
            assert_eq!(peak_rss_kb(), 0);
        }
    }

    #[test]
    fn timing_samples_order_statistics() {
        let mut tick = 0u64;
        let samples = TimingSamples::collect(5, || tick += 1);
        assert_eq!(tick, 5);
        assert!(samples.min_ns() <= samples.median_ns());
        assert!(samples.median_ns() <= samples.max_ns());
    }
}
