//! Streaming corpus analytics: the paper's summary tables (gap
//! distributions, per-tool win rates, scaling curves) computed as an
//! incremental per-shard fold over a stored suite's result cache.
//!
//! The analytics pass reads **no circuits at all**: everything it needs is
//! in the shard manifests (designed SWAP counts, content hashes) and the
//! content-addressed routing cache that a prior `qubikos eval` run banked.
//! Each shard folds into a [`ShardSummary`] whose every field is an integer
//! accumulator, and [`ShardSummary::merge`] is an **associative** combine —
//! pinned by a proptest — so summaries computed shard-parallel on the
//! engine reduce to the exact same report as a sequential pass, at any
//! thread count. Memory is bounded by one shard manifest plus the fold
//! state, which is what lets a million-instance corpus produce its tables
//! on a laptop.
//!
//! Instances whose routing is not cached (for some tool) simply count as
//! uncovered for that tool; win rates are computed only over instances
//! covered by *every* configured tool, so partial caches never skew the
//! comparison.

use crate::evaluation::{cell_gap, CachedRouting, DEFAULT_TOOL_SEED};
use crate::store::{CacheStatsSnapshot, StoreError, SuiteStore};
use qubikos::InstanceRecord;
use qubikos_arch::DeviceKind;
use qubikos_engine::{Engine, JobKey, NullSink, ProgressSink, AUTO_THREADS};
use qubikos_layout::ToolKind;
use serde::{Deserialize, Serialize};

/// Upper edges of the gap-distribution buckets (a gap `g` lands in the
/// first bucket with `g <= edge`, up to a small epsilon; gaps above the
/// last edge land in the overflow bucket). The gap metric is the
/// per-instance SWAP ratio — absolute excess for zero-optimum instances
/// (see `EvaluationCell::swap_ratio`).
pub const GAP_BUCKET_EDGES: [f64; 7] = [1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0];

/// Number of gap-distribution buckets ([`GAP_BUCKET_EDGES`] plus overflow).
pub const GAP_BUCKETS: usize = GAP_BUCKET_EDGES.len() + 1;

/// Bucket index of one instance's gap.
pub fn gap_bucket(gap: f64) -> usize {
    const EPS: f64 = 1e-9;
    GAP_BUCKET_EDGES
        .iter()
        .position(|&edge| gap <= edge + EPS)
        .unwrap_or(GAP_BUCKET_EDGES.len())
}

/// Configuration of an analytics pass over a stored suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticsConfig {
    /// Tools to summarize (cache entries of other tools are ignored).
    pub tools: Vec<ToolKind>,
    /// Tool seed the cached routings must have been produced with; entries
    /// under a different seed count as uncovered.
    pub tool_seed: u64,
    /// Number of worker threads ([`AUTO_THREADS`] = all available cores).
    /// The report is bit-identical for any value.
    pub threads: usize,
}

impl Default for AnalyticsConfig {
    /// All four tools with the evaluation pipeline's standard tool seed, so
    /// the analytics read exactly the cache a default `qubikos eval` run
    /// writes.
    fn default() -> Self {
        AnalyticsConfig {
            tools: ToolKind::ALL.to_vec(),
            tool_seed: DEFAULT_TOOL_SEED,
            threads: AUTO_THREADS,
        }
    }
}

impl AnalyticsConfig {
    /// Returns the configuration with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One point of a tool's scaling curve: aggregate SWAPs at one designed
/// SWAP count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Designed (optimal) SWAP count.
    pub designed: usize,
    /// Covered instances at this count.
    pub instances: u64,
    /// Total SWAPs the tool inserted on them (average = `sum_swaps /
    /// instances`, derived at render time).
    pub sum_swaps: u64,
}

/// One tool's accumulators within a [`ShardSummary`]. Integer-only, so
/// merging is exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolSummary {
    /// The tool.
    pub tool: ToolKind,
    /// Instances with a compatible cached routing for this tool.
    pub covered: u64,
    /// Covered instances routed at exactly the designed SWAP count.
    pub optimal: u64,
    /// Fully-covered instances where this tool inserted the fewest SWAPs
    /// (ties award every minimal tool).
    pub wins: u64,
    /// Total SWAPs inserted over covered instances.
    pub sum_swaps: u64,
    /// Total designed SWAPs over covered instances (denominator of the
    /// tool's aggregate ratio).
    pub sum_designed: u64,
    /// Gap distribution over covered instances ([`GAP_BUCKETS`] buckets).
    pub gap_histogram: Vec<u64>,
    /// Scaling curve, ascending in designed SWAP count.
    pub scaling: Vec<ScalingPoint>,
}

impl ToolSummary {
    fn empty(tool: ToolKind) -> Self {
        ToolSummary {
            tool,
            covered: 0,
            optimal: 0,
            wins: 0,
            sum_swaps: 0,
            sum_designed: 0,
            gap_histogram: vec![0; GAP_BUCKETS],
            scaling: Vec::new(),
        }
    }

    /// Adds one covered instance (`swaps` inserted on a `designed`-SWAP
    /// instance).
    fn add_covered(&mut self, designed: usize, swaps: usize) {
        self.covered += 1;
        if swaps == designed {
            self.optimal += 1;
        }
        self.sum_swaps += swaps as u64;
        self.sum_designed += designed as u64;
        self.gap_histogram[gap_bucket(cell_gap(swaps as f64, designed))] += 1;
        match self
            .scaling
            .binary_search_by_key(&designed, |point| point.designed)
        {
            Ok(i) => {
                self.scaling[i].instances += 1;
                self.scaling[i].sum_swaps += swaps as u64;
            }
            Err(i) => self.scaling.insert(
                i,
                ScalingPoint {
                    designed,
                    instances: 1,
                    sum_swaps: swaps as u64,
                },
            ),
        }
    }

    fn merge(&mut self, other: &ToolSummary) {
        assert_eq!(self.tool, other.tool, "tool summaries must align");
        self.covered += other.covered;
        self.optimal += other.optimal;
        self.wins += other.wins;
        self.sum_swaps += other.sum_swaps;
        self.sum_designed += other.sum_designed;
        for (mine, theirs) in self.gap_histogram.iter_mut().zip(&other.gap_histogram) {
            *mine += theirs;
        }
        for point in &other.scaling {
            match self
                .scaling
                .binary_search_by_key(&point.designed, |p| p.designed)
            {
                Ok(i) => {
                    self.scaling[i].instances += point.instances;
                    self.scaling[i].sum_swaps += point.sum_swaps;
                }
                Err(i) => self.scaling.insert(i, *point),
            }
        }
    }
}

/// The associative per-shard fold state: integer accumulators only, merged
/// across shards without ever revisiting one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Instances seen.
    pub instances: u64,
    /// Instances covered by every configured tool (the win-rate
    /// denominator).
    pub fully_covered: u64,
    /// Per-tool accumulators, in configured tool order.
    pub tools: Vec<ToolSummary>,
}

impl ShardSummary {
    /// The identity element of [`merge`](Self::merge) for `tools`.
    pub fn empty(tools: &[ToolKind]) -> Self {
        ShardSummary {
            instances: 0,
            fully_covered: 0,
            tools: tools.iter().map(|&tool| ToolSummary::empty(tool)).collect(),
        }
    }

    /// Folds one instance into the summary. `swaps[t]` is tool `t`'s cached
    /// SWAP count, `None` when uncovered.
    pub fn add_instance(&mut self, designed: usize, swaps: &[Option<usize>]) {
        assert_eq!(swaps.len(), self.tools.len(), "one slot per tool");
        self.instances += 1;
        for (summary, slot) in self.tools.iter_mut().zip(swaps) {
            if let Some(swaps) = slot {
                summary.add_covered(designed, *swaps);
            }
        }
        if swaps.iter().all(Option::is_some) {
            self.fully_covered += 1;
            let best = swaps
                .iter()
                .map(|slot| slot.expect("fully covered"))
                .min()
                .expect("at least one tool");
            for (summary, slot) in self.tools.iter_mut().zip(swaps) {
                if slot.expect("fully covered") == best {
                    summary.wins += 1;
                }
            }
        }
    }

    /// Associatively combines two summaries (commutative too; the engine
    /// nevertheless merges in shard order so even floating-point *renders*
    /// of the report are reproducible).
    ///
    /// # Panics
    ///
    /// Panics if the summaries were built for different tool lists.
    pub fn merge(&mut self, other: &ShardSummary) {
        assert_eq!(self.tools.len(), other.tools.len(), "tool lists must align");
        self.instances += other.instances;
        self.fully_covered += other.fully_covered;
        for (mine, theirs) in self.tools.iter_mut().zip(&other.tools) {
            mine.merge(theirs);
        }
    }
}

/// The full analytics report: the merged summary plus the corpus identity
/// it was computed over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticsReport {
    /// Device the corpus targets.
    pub device: DeviceKind,
    /// Tool seed the summarized cache entries were produced with.
    pub tool_seed: u64,
    /// Shards folded.
    pub shards: usize,
    /// Shards skipped because their manifest was persistently corrupt; the
    /// offending file was moved to the store's `quarantine/` directory and
    /// the summary covers the remaining shards.
    pub shards_quarantined: usize,
    /// The store's cache counters over this pass (hits, misses, and corrupt
    /// entries quarantined while reading the routing cache).
    pub cache: CacheStatsSnapshot,
    /// The merged accumulators.
    pub summary: ShardSummary,
}

/// Summarizes one shard's instance records against the store's routing
/// cache. Reads no circuits; one pass over (instance × tool) cache entries.
fn summarize_records(
    store: &SuiteStore,
    config: &AnalyticsConfig,
    records: &[InstanceRecord],
) -> ShardSummary {
    let mut summary = ShardSummary::empty(&config.tools);
    let mut slots = vec![None; config.tools.len()];
    for record in records {
        for (slot, &tool) in slots.iter_mut().zip(&config.tools) {
            let key = JobKey::new(tool.name(), record.content_hash.as_str());
            *slot = store
                .read_cached::<CachedRouting>(&key)
                .filter(|cached| {
                    cached.tool_seed == config.tool_seed
                        && cached.circuit_hash == record.content_hash
                })
                .map(|cached| cached.swaps);
        }
        summary.add_instance(record.swap_count, &slots);
    }
    summary
}

/// Runs the analytics pass over a stored suite: shard-parallel summaries on
/// the engine, merged in shard order.
///
/// # Errors
///
/// Propagates [`StoreError`] from reading shard manifests, except that a
/// *persistently corrupt* manifest (reads are retried first) is quarantined
/// and its shard skipped — counted in
/// [`AnalyticsReport::shards_quarantined`] — so one bad shard degrades the
/// summary instead of failing the pass. A missing or corrupt cache *entry*
/// is not an error — the instance counts as uncovered for that tool (a
/// corrupt entry is additionally quarantined and counted in
/// [`AnalyticsReport::cache`]).
pub fn run_suite_analytics(
    store: &SuiteStore,
    config: &AnalyticsConfig,
) -> Result<AnalyticsReport, StoreError> {
    run_suite_analytics_with_sink(store, config, &NullSink)
}

/// [`run_suite_analytics`] with a caller-supplied progress/metrics sink
/// (one job per shard).
///
/// # Errors
///
/// As [`run_suite_analytics`].
pub fn run_suite_analytics_with_sink(
    store: &SuiteStore,
    config: &AnalyticsConfig,
    sink: &dyn ProgressSink,
) -> Result<AnalyticsReport, StoreError> {
    let shards: Vec<usize> = (0..store.shard_count()).collect();
    let cache_before = store.cache_stats();
    let engine = Engine::new(config.threads).with_base_seed(config.tool_seed);
    let summaries = engine
        .run_values(
            &shards,
            |_worker| (),
            |(), _ctx, &shard| -> Result<ShardSummary, StoreError> {
                let records = store.shard_records(shard)?;
                Ok(summarize_records(store, config, &records))
            },
            sink,
        )
        .unwrap_or_else(|error| panic!("suite analytics aborted: {error}"));

    // The engine returns summaries in shard order regardless of thread
    // count; merging left to right therefore produces identical bytes for
    // any parallelism (and merge itself is associative, proptest-pinned).
    let mut merged = ShardSummary::empty(&config.tools);
    let mut shards_quarantined = 0;
    for (&shard, summary) in shards.iter().zip(&summaries) {
        match summary {
            Ok(summary) => merged.merge(summary),
            Err(error) if error.is_corruption() => {
                store.quarantine_shard_error(shard, error);
                shards_quarantined += 1;
            }
            Err(error) => return Err(error.clone()),
        }
    }
    Ok(AnalyticsReport {
        device: store.device(),
        tool_seed: config.tool_seed,
        shards: shards.len(),
        shards_quarantined,
        cache: store.cache_stats().delta_since(&cache_before),
        summary: merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_summary(seed_instances: Vec<(u8, [Option<u8>; 2])>) -> ShardSummary {
        let tools = [ToolKind::LightSabre, ToolKind::Tket];
        let mut summary = ShardSummary::empty(&tools);
        for (designed, slots) in seed_instances {
            let slots: Vec<Option<usize>> = slots.iter().map(|s| s.map(|v| v as usize)).collect();
            summary.add_instance(designed as usize, &slots);
        }
        summary
    }

    #[test]
    fn gap_buckets_cover_the_line() {
        assert_eq!(gap_bucket(1.0), 0);
        assert_eq!(gap_bucket(0.0), 0);
        assert_eq!(gap_bucket(1.2), 1);
        assert_eq!(gap_bucket(1.5), 2);
        assert_eq!(gap_bucket(2.5), 4);
        assert_eq!(gap_bucket(10.0), 6);
        assert_eq!(gap_bucket(1e6), GAP_BUCKETS - 1);
    }

    #[test]
    fn wins_require_full_coverage_and_split_ties() {
        let tools = [ToolKind::LightSabre, ToolKind::Tket];
        let mut summary = ShardSummary::empty(&tools);
        // Covered by one tool only: counts for coverage, not for wins.
        summary.add_instance(2, &[Some(3), None]);
        // Fully covered, distinct: one winner.
        summary.add_instance(2, &[Some(2), Some(4)]);
        // Fully covered, tied: both win.
        summary.add_instance(1, &[Some(1), Some(1)]);
        assert_eq!(summary.instances, 3);
        assert_eq!(summary.fully_covered, 2);
        assert_eq!(summary.tools[0].covered, 3);
        assert_eq!(summary.tools[1].covered, 2);
        assert_eq!(summary.tools[0].wins, 2);
        assert_eq!(summary.tools[1].wins, 1);
        assert_eq!(summary.tools[0].optimal, 2, "2@2 and 1@1 are optimal");
        // Scaling is keyed and sorted by designed count.
        assert_eq!(summary.tools[0].scaling.len(), 2);
        assert_eq!(summary.tools[0].scaling[0].designed, 1);
        assert_eq!(summary.tools[0].scaling[1].designed, 2);
        assert_eq!(summary.tools[0].scaling[1].instances, 2);
        assert_eq!(summary.tools[0].scaling[1].sum_swaps, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole's correctness pin: merge is associative, and any
        /// split of an instance stream into shards folds to the same
        /// summary as the sequential pass.
        #[test]
        fn merge_is_associative_and_split_invariant(
            instances in proptest::collection::vec(
                (1u8..6, (0u64..4, 0u64..4)), 0..40),
            split_a in 0usize..41,
            split_b in 0usize..41,
        ) {
            // Decode: slot value 0 = uncovered, v>0 = v swaps.
            let decode = |(designed, (a, b)): (u8, (u64, u64))| {
                (designed, [
                    (a > 0).then_some(a as u8 + designed - 1),
                    (b > 0).then_some(b as u8),
                ])
            };
            let all: Vec<(u8, [Option<u8>; 2])> =
                instances.iter().copied().map(decode).collect();
            let sequential = arbitrary_summary(all.clone());

            // Split into three "shards" at arbitrary points.
            let cut_a = split_a.min(all.len());
            let cut_b = split_b.min(all.len()).max(cut_a);
            let a = arbitrary_summary(all[..cut_a].to_vec());
            let b = arbitrary_summary(all[cut_a..cut_b].to_vec());
            let c = arbitrary_summary(all[cut_b..].to_vec());

            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut right_tail = b.clone();
            right_tail.merge(&c);
            let mut right = a.clone();
            right.merge(&right_tail);

            prop_assert_eq!(&left, &right);
            prop_assert_eq!(&left, &sequential);
            // Identity element.
            let mut with_identity = sequential.clone();
            with_identity.merge(&ShardSummary::empty(&[
                ToolKind::LightSabre,
                ToolKind::Tket,
            ]));
            prop_assert_eq!(&with_identity, &sequential);
        }
    }
}
