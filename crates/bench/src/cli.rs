//! The command layer shared by the unified `qubikos` CLI and the legacy
//! per-command bins.
//!
//! Every experiment entry point (`eval`, `optimality`, `case-study`,
//! `ablations`, `suite export`, `suite verify`) is one function taking the
//! raw argument list, so the `qubikos` multiplexer bin and the original
//! single-purpose bins (`tool_evaluation`, `optimality_study`, …) share one
//! implementation and one flag vocabulary (parsed with the
//! [`crate::microbench`] helpers). Commands return a process exit code with
//! one meaning per failure class, so scripts and CI can react without
//! parsing stderr:
//!
//! | code | meaning |
//! |------|---------|
//! | [`EXIT_OK`] (0) | the run completed and every check passed |
//! | [`EXIT_POLICY`] (1) | the run completed but violated a caller policy (e.g. `--require-cached` with a cold cache) |
//! | [`EXIT_USAGE`] (2) | bad usage, configuration, or an I/O / store error (`Err` from a command) |
//! | [`EXIT_VERIFY`] (3) | the run completed and found verification or optimality failures |
//! | [`EXIT_TIMEOUT`] (4) | the run completed with no failures, but at least one job exceeded its wall-clock deadline |

use crate::ablations::{
    run_ablations_with_sink, run_composition_matrix, AblationConfig, MatrixConfig,
};
use crate::analytics::{run_suite_analytics_with_sink, AnalyticsConfig};
use crate::case_study::{run_case_study, CaseStudyConfig};
use crate::evaluation::{
    aggregate_by_tool, run_suite_evaluation_with_sink, run_tool_evaluation_with_sink,
    EvaluationConfig, SuiteEvalConfig,
};
use crate::microbench::{arg_value, flag_present};
use crate::optimality::{
    run_optimality_study_with_sink, run_suite_optimality_with_sink, OptimalityConfig,
};
use crate::report::{
    render_ablations, render_aggregate, render_analytics, render_case_study,
    render_composition_matrix, render_evaluation, render_optimality,
};
use crate::store::{ExportOptions, SuiteStore};
use qubikos_arch::DeviceKind;
use qubikos_engine::{
    threads_from_args, ProgressSink, StderrProgress, TeeSink, TimingSink, AUTO_THREADS,
};
use qubikos_layout::{ToolKind, ToolParseError};

/// Exit code: the run completed and every check passed.
pub const EXIT_OK: i32 = 0;
/// Exit code: the run completed but violated a caller-supplied policy, such
/// as `--require-cached` on a cache that had to route pairs fresh.
pub const EXIT_POLICY: i32 = 1;
/// Exit code: bad usage, bad configuration, or an I/O / store error — every
/// `Err` a command returns maps here.
pub const EXIT_USAGE: i32 = 2;
/// Exit code: the run completed and found verification or optimality
/// failures (corrupt instances, uncertified circuits).
pub const EXIT_VERIFY: i32 = 3;
/// Exit code: the run completed with zero failures, but at least one job
/// exceeded its per-job wall-clock deadline, so some circuits degraded to
/// `unproven` instead of being exhaustively confirmed.
pub const EXIT_TIMEOUT: i32 = 4;

/// What a command hands back to `main`: a process exit code, or an error to
/// render on stderr (exit code [`EXIT_USAGE`]).
pub type CommandOutcome = Result<i32, Box<dyn std::error::Error>>;

/// Renders a command outcome and exits the process accordingly.
pub fn exit_with(outcome: CommandOutcome) -> ! {
    match outcome {
        Ok(code) => std::process::exit(code),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(EXIT_USAGE);
        }
    }
}

/// Maps a completed report's failure and timeout counts to an exit code:
/// failures dominate ([`EXIT_VERIFY`]), then timeouts ([`EXIT_TIMEOUT`]),
/// then [`EXIT_OK`].
fn report_exit_code(failures: usize, deadline_exceeded: usize) -> i32 {
    if failures > 0 {
        EXIT_VERIFY
    } else if deadline_exceeded > 0 {
        EXIT_TIMEOUT
    } else {
        EXIT_OK
    }
}

/// The `qubikos` CLI's top-level dispatcher.
///
/// # Errors
///
/// Propagates the dispatched command's error.
pub fn dispatch(args: &[String]) -> CommandOutcome {
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return Ok(EXIT_USAGE);
    };
    let rest = &args[1..];
    match command.as_str() {
        "suite" => match rest.first().map(String::as_str) {
            Some("export") => suite_export_command(&rest[1..]),
            Some("verify") => suite_verify_command(&rest[1..]),
            _ => {
                eprintln!("qubikos suite: expected `export` or `verify`\n\n{USAGE}");
                Ok(EXIT_USAGE)
            }
        },
        "eval" => eval_command(rest),
        "analytics" => analytics_command(rest),
        "optimality" => optimality_command(rest),
        "case-study" => case_study_command(rest),
        "ablations" => ablations_command(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(EXIT_OK)
        }
        other => {
            eprintln!("qubikos: unknown command `{other}`\n\n{USAGE}");
            Ok(EXIT_USAGE)
        }
    }
}

const USAGE: &str = "\
qubikos — the QUBIKOS benchmark and evaluation pipeline

USAGE:
  qubikos suite export [--arch DEV] [--out DIR] [--full] [--threads N]
                       [--shard-size K] [--max-shards M]
      Generate a benchmark suite and persist it as a sharded corpus: a small
      manifest.json root index pointing at shards/shard_*.json manifests plus
      the QASM files. Shards are generated in parallel with byte-identical
      output at any thread count; an interrupted export (or --max-shards M)
      leaves a ledger and re-running resumes with only the missing shards.
      The suite matches what `qubikos eval` would generate in memory for the
      same device, so stored and in-memory runs report identical numbers.
  qubikos suite verify --suite DIR [--threads N] [--max-shards M]
      Re-check every stored instance, streaming one shard at a time: root
      and shard hashes, QASM parse, and the regeneration round trip. Reports
      every failing instance (with its shard and index) instead of stopping
      at the first; clean shards are ledgered so a re-run after an interrupt
      (or --max-shards M) only checks the remainder.
  qubikos analytics --suite DIR [--threads N] [--json PATH]
      Corpus-wide summary tables (gap distributions, per-tool win rates,
      scaling curves) folded shard-by-shard from the results/ cache a prior
      `eval --suite` run banked — no circuits are loaded, memory stays flat,
      and the report is bit-identical at any thread count.
  qubikos eval [--arch DEV | --all] [--tools LIST] [--full] [--threads N]
               [--timing-json PATH] [--suite DIR] [--require-cached]
      Figure-4 tool evaluation. With --suite, runs from the stored corpus
      and the content-addressed result cache (already-evaluated
      (tool, circuit) pairs are not routed again); --require-cached exits
      nonzero unless every pair was a cache hit. --arch/--full apply only
      to in-memory runs (with --suite the manifest fixes both),
      --tools restricts the run to a comma-separated subset (an
      unrecognized name errors with a did-you-mean suggestion), and
      --timing-json records the jobs that actually ran.
  qubikos optimality [--full | --smoke] [--threads N] [--suite DIR]
                     [--exact-deadline-ms N]
      §IV-A optimality study. With --suite, verifies the stored corpus,
      consulting/filling the results/optimality cache; --full/--smoke
      apply only to in-memory runs (the manifest fixes the suite shape).
      --exact-deadline-ms caps each exact-solver job's wall clock: a circuit
      that exceeds it degrades to `unproven` (still certified, not
      exhaustively confirmed) instead of stalling the run, and the command
      exits 4 when that happened with zero failures.
  qubikos case-study [--decay D] [--full] [--threads N]
      §IV-C LightSABRE lookahead case study.
  qubikos ablations [--threads N]
      The legacy hand-picked SABRE parameter sweeps.
  qubikos ablations --grid --suite DIR [--full] [--json PATH]
                    [--list-compositions] [--max-compositions N]
                    [--require-cached] [--timing-json PATH] [--threads N]
      Router-construction-kit ablation matrix: enumerates the composition
      cross-product of the policy axes (search, lookahead, decay,
      tie-breaking, placement, coupler weights), prunes redundant points,
      routes every composition against the stored known-optimal suite, and
      ranks compositions by mean optimality gap and win rate. Results are
      cached per composition id, so a rerun is answered from cache and
      --require-cached exits 1 unless it was. --list-compositions prints
      the pruned enumeration and exits; --full swaps in the overnight grid.

DEV:   grid | aspen4 | sycamore | rochester | eagle | osprey
TOOLS: lightsabre | tket | ml-qls | qmap (comma-separated)

EXIT CODES:
  0  success — the run completed and every check passed
  1  policy  — completed, but a caller policy failed (--require-cached, cold cache)
  2  usage   — bad flags/configuration, or an I/O / store error
  3  verify  — completed, but verification or optimality failures were found
  4  timeout — completed with no failures, but jobs exceeded their deadline";

/// `qubikos suite export` / the `export_suite` bin.
///
/// # Errors
///
/// Store/generation errors.
pub fn suite_export_command(args: &[String]) -> CommandOutcome {
    let device = parse_arch(args)?.unwrap_or(DeviceKind::Aspen4);
    let out = arg_value(args, "--out").unwrap_or_else(|| "qubikos_suite".to_string());
    let threads = threads_from_args(args).unwrap_or(AUTO_THREADS);
    let mut options = ExportOptions::default();
    if let Some(shard_size) = numeric_flag(args, "--shard-size")? {
        if shard_size == 0 {
            return Err("--shard-size must be at least 1".into());
        }
        options = options.with_shard_size(shard_size);
    }
    if let Some(max_shards) = numeric_flag(args, "--max-shards")? {
        options = options.with_stop_after_shards(max_shards);
    }
    // The exported suite is exactly the one `eval` generates in memory for
    // the same device and mode, so `eval --suite` on the result reproduces
    // the in-memory report bit-identically.
    let eval_config = if flag_present(args, "--full") {
        EvaluationConfig::paper(device)
    } else {
        EvaluationConfig::quick(device)
    };
    let progress = StderrProgress::new(format!("export {}", device.name()), 10);
    let outcome = SuiteStore::export_with_options(
        &out,
        device,
        &eval_config.suite,
        &options,
        threads,
        &progress,
    )?;
    match outcome.store {
        Some(store) => {
            println!(
                "wrote {} instances for {} to {} ({} shards: {} generated, {} resumed from ledger)",
                store.total_instances(),
                device.name(),
                store.root().display(),
                outcome.shards_total,
                outcome.shards_written,
                outcome.shards_resumed
            );
            Ok(0)
        }
        None => {
            println!(
                "export interrupted after {} of {} shards ({} resumed); re-run the same \
                 command to finish from the ledger",
                outcome.shards_written + outcome.shards_resumed,
                outcome.shards_total,
                outcome.shards_resumed
            );
            Ok(0)
        }
    }
}

/// Parses a `--flag N` numeric option, erroring when the flag is present
/// without a parseable value (a typo must never silently fall back to the
/// default).
fn numeric_flag(args: &[String], flag: &str) -> Result<Option<usize>, Box<dyn std::error::Error>> {
    match arg_value(args, flag) {
        None if flag_present(args, flag) => Err(format!("{flag} requires an integer").into()),
        None => Ok(None),
        Some(value) => value
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("{flag}: expected an integer, found `{value}`").into()),
    }
}

/// Parses `--arch`, erroring on an unrecognized device name instead of
/// silently falling back to a default (a typo must never quietly evaluate
/// the wrong device).
fn parse_arch(args: &[String]) -> Result<Option<DeviceKind>, Box<dyn std::error::Error>> {
    match arg_value(args, "--arch") {
        None => Ok(None),
        Some(name) => match DeviceKind::parse(&name) {
            Ok(device) => Ok(Some(device)),
            Err(err) => {
                let known: Vec<&str> = qubikos_arch::DeviceParseError::known_devices().collect();
                Err(format!("--arch: {err} (known devices: {})", known.join(" | ")).into())
            }
        },
    }
}

/// Parses `--tools LIST` (comma-separated tool names), erroring on an
/// unrecognized name with the parser's did-you-mean suggestion and the full
/// known-tool list — a typo must never silently evaluate the wrong tool
/// set. Duplicates collapse to the first occurrence.
fn parse_tools(args: &[String]) -> Result<Option<Vec<ToolKind>>, Box<dyn std::error::Error>> {
    match arg_value(args, "--tools") {
        None if flag_present(args, "--tools") => {
            Err("--tools requires a comma-separated list of tool names".into())
        }
        None => Ok(None),
        Some(list) => {
            let mut tools: Vec<ToolKind> = Vec::new();
            for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                match ToolKind::parse(name) {
                    Ok(tool) => {
                        if !tools.contains(&tool) {
                            tools.push(tool);
                        }
                    }
                    Err(err) => {
                        let known: Vec<&str> = ToolParseError::known_tools().collect();
                        return Err(
                            format!("--tools: {err} (known tools: {})", known.join(" | ")).into(),
                        );
                    }
                }
            }
            if tools.is_empty() {
                return Err("--tools requires at least one tool name".into());
            }
            Ok(Some(tools))
        }
    }
}

/// Parses `--suite DIR`, erroring when the flag is present without a usable
/// value — a forgotten directory must never silently degrade into the
/// (expensive, differently-scoped) in-memory pipeline.
fn suite_flag(args: &[String]) -> Result<Option<String>, Box<dyn std::error::Error>> {
    match arg_value(args, "--suite") {
        Some(value) if value.starts_with("--") => {
            Err(format!("--suite requires a directory path, found flag `{value}`").into())
        }
        Some(value) => Ok(Some(value)),
        None if flag_present(args, "--suite") => Err("--suite requires a directory path".into()),
        None => Ok(None),
    }
}

/// `qubikos suite verify`.
///
/// Streams the corpus one shard at a time, reports **every** failing
/// instance (with its shard and index) instead of stopping at the first,
/// and ledgers clean shards so interrupted runs resume.
///
/// # Errors
///
/// Store errors (unreadable root index, IO); integrity violations are
/// reported on stderr and exit code 1, not `Err`.
pub fn suite_verify_command(args: &[String]) -> CommandOutcome {
    let dir = suite_flag(args)?
        .ok_or("suite verify requires --suite DIR (the exported suite directory)")?;
    let threads = threads_from_args(args).unwrap_or(AUTO_THREADS);
    let max_shards = numeric_flag(args, "--max-shards")?;
    let store = SuiteStore::open(&dir)?;
    let progress = StderrProgress::new(format!("verify {}", store.device().name()), 10);
    let report = store.verify_streaming(threads, max_shards, &progress)?;
    for failure in &report.failures {
        eprintln!("FAIL: {failure}");
    }
    println!(
        "verified {} instances of {} in {} ({} shards checked, {} resumed from ledger; \
         hashes, QASM parse, regeneration round trip)",
        report.instances,
        store.device().name(),
        store.root().display(),
        report.shards_checked,
        report.shards_resumed
    );
    if !report.failures.is_empty() {
        eprintln!(
            "ERROR: {} instances failed verification",
            report.failures.len()
        );
        return Ok(EXIT_VERIFY);
    }
    if !report.complete {
        println!(
            "verification interrupted after {} of {} shards; re-run to finish from the ledger",
            report.shards_checked + report.shards_resumed,
            store.shard_count()
        );
    }
    Ok(0)
}

/// `qubikos analytics`: corpus-wide summary tables folded shard-by-shard
/// from a stored suite's result cache.
///
/// # Errors
///
/// Store errors (unreadable root index or shard manifests).
pub fn analytics_command(args: &[String]) -> CommandOutcome {
    let dir =
        suite_flag(args)?.ok_or("analytics requires --suite DIR (the exported suite directory)")?;
    let json_path = match arg_value(args, "--json") {
        Some(value) if value.starts_with("--") => {
            return Err(format!("--json requires an output path, found flag `{value}`").into())
        }
        Some(value) => Some(value),
        None if flag_present(args, "--json") => return Err("--json requires an output path".into()),
        None => None,
    };
    let store = SuiteStore::open(&dir)?;
    let config =
        AnalyticsConfig::default().with_threads(threads_from_args(args).unwrap_or(AUTO_THREADS));
    let progress = StderrProgress::new(format!("analytics {}", store.device().name()), 10);
    let report = run_suite_analytics_with_sink(&store, &config, &progress)?;
    print!("{}", render_analytics(&report));
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("analytics report serializes");
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote analytics report to {path}");
    }
    Ok(0)
}

/// `qubikos eval` / the `tool_evaluation` bin.
///
/// # Errors
///
/// Generation or store errors.
pub fn eval_command(args: &[String]) -> CommandOutcome {
    let threads = threads_from_args(args).unwrap_or(AUTO_THREADS);
    let full = flag_present(args, "--full");
    let timing_path = match arg_value(args, "--timing-json") {
        Some(value) if value.starts_with("--") => {
            return Err(
                format!("--timing-json requires an output path, found flag `{value}`").into(),
            )
        }
        Some(value) => Some(value),
        None if flag_present(args, "--timing-json") => {
            return Err("--timing-json requires an output path".into())
        }
        None => None,
    };

    if let Some(dir) = suite_flag(args)? {
        // Flags that would silently contradict the stored manifest are
        // rejected rather than ignored.
        if full {
            return Err(
                "--full has no effect with --suite: the stored manifest fixes the \
                        suite shape; re-export with `suite export --full` instead"
                    .into(),
            );
        }
        if parse_arch(args)?.is_some() {
            return Err(
                "--arch has no effect with --suite: the stored manifest fixes the \
                        device"
                    .into(),
            );
        }
        let store = SuiteStore::open(&dir)?;
        let mut config = SuiteEvalConfig::default().with_threads(threads);
        if let Some(tools) = parse_tools(args)? {
            config.tools = tools;
        }
        let progress =
            StderrProgress::new(format!("evaluate {} (suite)", store.device().name()), 20);
        let timing = TimingSink::new();
        let mut sinks: Vec<&dyn ProgressSink> = vec![&progress];
        if timing_path.is_some() {
            sinks.push(&timing);
        }
        let outcome = run_suite_evaluation_with_sink(&store, &config, &TeeSink::new(sinks))?;
        println!("{}", render_evaluation(&outcome.report));
        eprintln!(
            "suite evaluation: {} (tool, circuit) pairs routed, {} served from cache",
            outcome.routed, outcome.cache_hits
        );
        if let Some(path) = timing_path {
            // Same shape as the in-memory export: (device, report) pairs —
            // here a single device whose jobs are the cache misses.
            let timings = vec![(
                store.device().name().to_string(),
                timing.report().expect("evaluation run finished"),
            )];
            let json = serde_json::to_string_pretty(&timings).expect("timing reports serialize");
            std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote per-job timings to {path}");
        }
        if flag_present(args, "--require-cached") && outcome.routed > 0 {
            eprintln!(
                "ERROR: --require-cached but {} pairs were routed fresh",
                outcome.routed
            );
            return Ok(EXIT_POLICY);
        }
        return Ok(0);
    }

    // An in-memory run has no cache to assert against: a bare
    // --require-cached would "pass" while checking nothing.
    if flag_present(args, "--require-cached") {
        return Err(
            "--require-cached requires --suite DIR (only stored suites have a \
                    result cache)"
                .into(),
        );
    }

    let devices: Vec<DeviceKind> = match parse_arch(args)? {
        Some(device) => vec![device],
        None => DeviceKind::EVALUATION.to_vec(),
    };

    let tools = parse_tools(args)?;
    let mut reports = Vec::new();
    let mut timings = Vec::new();
    for device in devices {
        let mut config = if full {
            EvaluationConfig::paper(device)
        } else {
            EvaluationConfig::quick(device)
        }
        .with_threads(threads);
        if let Some(tools) = &tools {
            config.tools = tools.clone();
        }
        eprintln!(
            "running tool evaluation on {} ({} circuits, {} two-qubit gates each)...",
            device.name(),
            config.suite.total_circuits(),
            config.suite.two_qubit_gates
        );
        // Progress always streams to stderr; a fresh per-device timing sink
        // rides along only when exporting, so job ids in the export never
        // collide across devices and runs without --timing-json pay nothing.
        let progress = StderrProgress::new(format!("evaluate {}", device.name()), 20);
        let timing = TimingSink::new();
        let mut sinks: Vec<&dyn ProgressSink> = vec![&progress];
        if timing_path.is_some() {
            sinks.push(&timing);
        }
        let report = run_tool_evaluation_with_sink(&config, &TeeSink::new(sinks))?;
        if timing_path.is_some() {
            timings.push((
                device.name().to_string(),
                timing.report().expect("evaluation run finished"),
            ));
        }
        println!("{}", render_evaluation(&report));
        reports.push(report);
    }
    if reports.len() > 1 {
        println!("{}", render_aggregate(&aggregate_by_tool(&reports)));
    }
    if let Some(path) = timing_path {
        // One timing report per device, keyed by device name.
        let json = serde_json::to_string_pretty(&timings).expect("timing reports serialize");
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote per-job timings to {path}");
    }
    Ok(0)
}

/// `qubikos optimality` / the `optimality_study` bin.
///
/// # Errors
///
/// Generation or store errors.
pub fn optimality_command(args: &[String]) -> CommandOutcome {
    let full = flag_present(args, "--full");
    let smoke = flag_present(args, "--smoke");
    let mut config = if full {
        OptimalityConfig::paper()
    } else if smoke {
        OptimalityConfig::smoke()
    } else {
        OptimalityConfig::quick()
    }
    .with_threads(threads_from_args(args).unwrap_or(AUTO_THREADS));
    if let Some(millis) = numeric_flag(args, "--exact-deadline-ms")? {
        config = config.with_exact_deadline(std::time::Duration::from_millis(millis as u64));
    }

    if let Some(dir) = suite_flag(args)? {
        // The presets differ only in suite shape and devices — exactly the
        // two things the stored manifest fixes — so combining them with
        // --suite would silently verify a different corpus than the flag
        // suggests. Reject instead of half-applying.
        if full || smoke {
            return Err(
                "--full/--smoke have no effect with --suite: the stored manifest \
                        fixes the suite shape; re-export the corpus at the desired scale \
                        instead"
                    .into(),
            );
        }
        let store = SuiteStore::open(&dir)?;
        eprintln!(
            "verifying {} stored circuits on {}...",
            store.total_instances(),
            store.device().name()
        );
        let progress = StderrProgress::new("optimality study (suite)".to_string(), 50);
        let outcome = run_suite_optimality_with_sink(&store, &config, &progress)?;
        print!("{}", render_optimality(&outcome.report));
        eprintln!(
            "suite optimality: {} circuits verified, {} served from cache",
            outcome.verified, outcome.cache_hits
        );
        if outcome.report.failures > 0 {
            eprintln!(
                "ERROR: {} circuits failed verification",
                outcome.report.failures
            );
        }
        return Ok(report_exit_code(
            outcome.report.failures,
            outcome.report.deadline_exceeded,
        ));
    }

    eprintln!(
        "verifying {} circuits per device on {:?}...",
        config.suite.total_circuits(),
        config.devices.iter().map(|d| d.name()).collect::<Vec<_>>()
    );
    let progress = StderrProgress::new("optimality study".to_string(), 50);
    let report = run_optimality_study_with_sink(&config, &progress)?;
    print!("{}", render_optimality(&report));
    if report.failures > 0 {
        eprintln!("ERROR: {} circuits failed verification", report.failures);
    }
    Ok(report_exit_code(report.failures, report.deadline_exceeded))
}

/// `qubikos case-study` / the `sabre_case_study` bin.
///
/// # Errors
///
/// Generation errors.
pub fn case_study_command(args: &[String]) -> CommandOutcome {
    let decay = arg_value(args, "--decay")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.7);
    let full = flag_present(args, "--full");
    let threads = threads_from_args(args).unwrap_or(AUTO_THREADS);
    // The lookahead effect the paper analyses only shows up once the padding
    // is dense enough to mislead the extended set, so the default run already
    // uses the paper's Aspen-4 gate budget (300 two-qubit gates).
    let (swap_counts, circuits): (Vec<usize>, usize) = if full {
        (vec![5, 10, 15, 20], 10)
    } else {
        (vec![4, 8, 12], 3)
    };
    // Aspen-4 with the paper's gate budget, plus Sycamore where routing from
    // the optimal mapping is harder and lookahead weighting actually matters.
    for (device, gates) in [(DeviceKind::Aspen4, 300), (DeviceKind::Sycamore54, 600)] {
        let config = CaseStudyConfig {
            device,
            swap_counts: swap_counts.clone(),
            circuits_per_count: circuits,
            two_qubit_gates: gates,
            decay,
            seed: 11,
            threads,
        };
        let outcome = run_case_study(&config)?;
        print!("{}", render_case_study(&outcome));
    }
    Ok(0)
}

/// `qubikos ablations` / the `ablations` bin. Without `--grid`, the legacy
/// hand-picked SABRE sweeps; with `--grid`, the router construction kit's
/// composition matrix against a stored known-optimal suite.
///
/// # Errors
///
/// Generation or store errors.
pub fn ablations_command(args: &[String]) -> CommandOutcome {
    let threads = threads_from_args(args).unwrap_or(AUTO_THREADS);
    if flag_present(args, "--grid") {
        return ablations_grid_command(args, threads);
    }
    if flag_present(args, "--suite") || flag_present(args, "--list-compositions") {
        return Err(
            "--suite/--list-compositions apply only to the composition matrix; add --grid".into(),
        );
    }
    let config = AblationConfig::paper().with_threads(threads);
    // One sink across all sweeps: each engine run restarts the progress
    // counter, so the multi-minute paper sweep streams per-run progress.
    let progress = StderrProgress::new("ablations".to_string(), 3);
    let report = run_ablations_with_sink(&config, &progress)?;
    print!("{}", render_ablations(&report));
    Ok(0)
}

/// `qubikos ablations --grid`: enumerate the (pruned) composition
/// cross-product, rank it against a stored known-optimal suite through the
/// per-composition result cache, and render/export the ranking.
fn ablations_grid_command(args: &[String], threads: usize) -> CommandOutcome {
    let mut config = MatrixConfig::quick().with_threads(threads);
    if flag_present(args, "--full") {
        config.grid = crate::ablations::CompositionGrid::paper();
    }
    if let Some(max) = numeric_flag(args, "--max-compositions")? {
        if max == 0 {
            return Err("--max-compositions must be at least 1".into());
        }
        config = config.with_max_compositions(max);
    }

    // The dry run: print the pruned enumeration (what the matrix *would*
    // route) and exit without touching any suite.
    if flag_present(args, "--list-compositions") {
        let specs = config.compositions();
        println!(
            "{} compositions ({} raw grid points before pruning)",
            specs.len(),
            config.grid.raw_combinations()
        );
        for spec in &specs {
            println!("  {}", spec.id());
        }
        return Ok(EXIT_OK);
    }

    let dir = suite_flag(args)?.ok_or(
        "ablations --grid requires --suite DIR (the known-optimal corpus to rank \
         against; create one with `qubikos suite export`)",
    )?;
    let json_path = match arg_value(args, "--json") {
        Some(value) if value.starts_with("--") => {
            return Err(format!("--json requires an output path, found flag `{value}`").into())
        }
        Some(value) => Some(value),
        None if flag_present(args, "--json") => return Err("--json requires an output path".into()),
        None => None,
    };
    let timing_path = match arg_value(args, "--timing-json") {
        Some(value) if value.starts_with("--") => {
            return Err(
                format!("--timing-json requires an output path, found flag `{value}`").into(),
            )
        }
        Some(value) => Some(value),
        None if flag_present(args, "--timing-json") => {
            return Err("--timing-json requires an output path".into())
        }
        None => None,
    };

    let store = SuiteStore::open(&dir)?;
    let progress = StderrProgress::new(format!("ablation matrix {}", store.device().name()), 20);
    let timing = TimingSink::new();
    let mut sinks: Vec<&dyn ProgressSink> = vec![&progress];
    if timing_path.is_some() {
        sinks.push(&timing);
    }
    let outcome = run_composition_matrix(&store, &config, &TeeSink::new(sinks))?;
    print!("{}", render_composition_matrix(&outcome.report));
    eprintln!(
        "ablation matrix: {} (composition, circuit) pairs routed, {} served from cache",
        outcome.routed, outcome.cache_hits
    );
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&outcome.report).expect("matrix report serializes");
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote composition matrix to {path}");
    }
    if let Some(path) = timing_path {
        // Same shape as the eval export: (label, report) pairs, one entry
        // whose jobs are this run's cache misses.
        let timings = vec![(
            format!("ablation-matrix-{}", store.device().name()),
            timing.report().expect("matrix run finished"),
        )];
        let json = serde_json::to_string_pretty(&timings).expect("timing reports serialize");
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote per-job timings to {path}");
    }
    if flag_present(args, "--require-cached") && outcome.routed > 0 {
        eprintln!(
            "ERROR: --require-cached but {} pairs were routed fresh",
            outcome.routed
        );
        return Ok(EXIT_POLICY);
    }
    Ok(EXIT_OK)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert_eq!(dispatch(&args(&["frobnicate"])).unwrap(), 2);
        assert_eq!(dispatch(&args(&[])).unwrap(), 2);
        assert_eq!(dispatch(&args(&["suite"])).unwrap(), 2);
        assert_eq!(dispatch(&args(&["suite", "destroy"])).unwrap(), 2);
    }

    #[test]
    fn dispatch_prints_help() {
        assert_eq!(dispatch(&args(&["help"])).unwrap(), 0);
        assert_eq!(dispatch(&args(&["--help"])).unwrap(), 0);
    }

    #[test]
    fn suite_verify_requires_a_directory() {
        assert!(suite_verify_command(&args(&[])).is_err());
    }

    #[test]
    fn unknown_arch_is_an_error_not_a_silent_fallback() {
        assert!(suite_export_command(&args(&["--arch", "gird"])).is_err());
        assert!(eval_command(&args(&["--arch", "gird"])).is_err());
    }

    #[test]
    fn suite_mode_rejects_flags_the_manifest_overrides() {
        assert!(eval_command(&args(&["--suite", "somewhere", "--full"])).is_err());
        assert!(eval_command(&args(&["--suite", "somewhere", "--arch", "grid"])).is_err());
        assert!(optimality_command(&args(&["--suite", "somewhere", "--full"])).is_err());
        assert!(optimality_command(&args(&["--suite", "somewhere", "--smoke"])).is_err());
    }

    #[test]
    fn trailing_suite_flag_is_an_error_not_an_in_memory_run() {
        assert!(eval_command(&args(&["--suite"])).is_err());
        assert!(optimality_command(&args(&["--suite"])).is_err());
        assert!(eval_command(&args(&["--suite", "--threads", "2"])).is_err());
    }

    #[test]
    fn require_cached_without_a_suite_is_an_error() {
        assert!(eval_command(&args(&["--require-cached"])).is_err());
    }

    #[test]
    fn analytics_requires_a_suite() {
        assert!(analytics_command(&args(&[])).is_err());
        assert!(analytics_command(&args(&["--suite"])).is_err());
        assert!(analytics_command(&args(&["--suite", "somewhere", "--json"])).is_err());
    }

    #[test]
    fn numeric_flags_reject_garbage_instead_of_defaulting() {
        assert!(suite_export_command(&args(&["--shard-size", "lots"])).is_err());
        assert!(suite_export_command(&args(&["--shard-size", "0"])).is_err());
        assert!(suite_export_command(&args(&["--max-shards", "-1"])).is_err());
        assert!(suite_verify_command(&args(&["--suite", "x", "--max-shards", "two"])).is_err());
    }

    #[test]
    fn exit_codes_are_distinct_per_failure_class() {
        // The documented contract: every class gets its own code, failures
        // dominate timeouts, and a clean report maps to success.
        assert_eq!(report_exit_code(0, 0), EXIT_OK);
        assert_eq!(report_exit_code(0, 3), EXIT_TIMEOUT);
        assert_eq!(report_exit_code(2, 0), EXIT_VERIFY);
        assert_eq!(report_exit_code(2, 3), EXIT_VERIFY);
        let codes = [EXIT_OK, EXIT_POLICY, EXIT_USAGE, EXIT_VERIFY, EXIT_TIMEOUT];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn optimality_deadline_flag_rejects_garbage() {
        assert!(optimality_command(&args(&["--smoke", "--exact-deadline-ms", "soon"])).is_err());
        assert!(optimality_command(&args(&["--smoke", "--exact-deadline-ms"])).is_err());
    }

    #[test]
    fn zero_deadline_smoke_run_exits_with_the_timeout_code() {
        // A zero wall-clock budget forces every exact query to degrade to
        // `unproven`: no failures, every job timed out — the documented
        // exit-4 case, reachable end to end through the real command path.
        let code = optimality_command(&args(&[
            "--smoke",
            "--threads",
            "1",
            "--exact-deadline-ms",
            "0",
        ]))
        .expect("smoke run completes despite the zero deadline");
        assert_eq!(code, EXIT_TIMEOUT);
    }

    #[test]
    fn unknown_tool_is_an_error_with_a_suggestion() {
        let err = eval_command(&args(&["--tools", "lightsaber", "--arch", "grid"]))
            .expect_err("typo must not silently evaluate the wrong tools");
        let text = err.to_string();
        assert!(text.contains("unknown tool `lightsaber`"), "{text}");
        assert!(text.contains("did you mean `lightsabre`"), "{text}");
        assert!(text.contains("known tools:"), "{text}");
        assert!(eval_command(&args(&["--tools"])).is_err());
        assert!(eval_command(&args(&["--tools", ","])).is_err());
    }

    #[test]
    fn grid_flags_require_the_grid_mode_and_a_suite() {
        assert!(ablations_command(&args(&["--suite", "somewhere"])).is_err());
        assert!(ablations_command(&args(&["--list-compositions"])).is_err());
        assert!(ablations_command(&args(&["--grid"])).is_err());
        assert!(ablations_command(&args(&["--grid", "--suite"])).is_err());
        assert!(ablations_command(&args(&["--grid", "--max-compositions", "0"])).is_err());
        assert!(ablations_command(&args(&[
            "--grid",
            "--suite",
            "x",
            "--max-compositions",
            "lots"
        ]))
        .is_err());
    }

    #[test]
    fn list_compositions_is_a_dry_run_that_needs_no_suite() {
        let code = ablations_command(&args(&["--grid", "--list-compositions"]))
            .expect("dry run touches no suite");
        assert_eq!(code, EXIT_OK);
        let code = ablations_command(&args(&[
            "--grid",
            "--list-compositions",
            "--max-compositions",
            "4",
        ]))
        .expect("truncated dry run");
        assert_eq!(code, EXIT_OK);
    }

    #[test]
    fn eval_surfaces_store_errors_for_missing_suites() {
        let missing = std::env::temp_dir().join("qubikos-cli-definitely-missing");
        let arg_list = args(&["--suite", missing.to_str().expect("utf8 path")]);
        assert!(eval_command(&arg_list).is_err());
    }
}
