//! The persistent benchmark-suite store: a suite as a sharded on-disk corpus
//! plus a content-addressed result cache.
//!
//! A stored suite directory looks like:
//!
//! ```text
//! suite/
//! ├── manifest.json                    # RootIndex: config + per-shard hashes
//! ├── shards/
//! │   ├── shard_00000.json             # ShardManifest: instance records
//! │   └── shard_00001.json
//! ├── aspen-4_swaps5_inst0.qasm        # one OpenQASM file per instance
//! ├── aspen-4_swaps5_inst0.json        # metadata sidecar for external tools
//! ├── ...
//! └── results/                         # content-addressed result cache
//!     ├── lightsabre/<circuit-hash>.json
//!     └── optimality/<circuit-hash>.json
//! ```
//!
//! The QASM files are the interop boundary — the exact artifact handed to
//! Qiskit, t|ket⟩ or QMAP — and the manifests make the directory a
//! *verifiable* corpus: the root index records each shard manifest's content
//! hash, and each shard manifest records, per instance, the seed it was
//! generated from, its designed SWAP count, and the content hash of its QASM
//! text. Loading distrusts the disk on principle: shard bytes must match the
//! root hash, each file's bytes must match the shard hash, must parse
//! through [`parse_qasm`], and the parsed circuit must equal the circuit
//! regenerated from the recorded seed — a full round-trip proof that what
//! external tools read is what the generator certified.
//!
//! **Streaming.** Consumers never hold more than one shard of
//! [`ExperimentPoint`]s resident: [`SuiteStore::load_shard`] returns a
//! [`LoadedShard`] whose lifetime is tracked by a per-store residency
//! counter, so tests can *assert* the flat-memory claim
//! ([`SuiteStore::residency_peak`]). The evaluation, optimality, and
//! analytics pipelines stream shard-by-shard on top of this.
//!
//! **Resume.** Long operations (export, verify) keep a completed-shards
//! ledger next to the root index (`export.ledger.json`,
//! `verify.ledger.json`). The ledger records a fingerprint of the operation's
//! inputs; an interrupted run restarted with the same inputs skips every
//! ledgered shard, and a run with different inputs ignores the stale ledger.
//! The ledger is deleted when the operation completes, and because shard
//! contents are pure functions of the config, a resumed export produces a
//! root index byte-identical to an uninterrupted one.
//!
//! A legacy (format 1) monolithic `manifest.json` opens transparently as a
//! single-shard corpus — every streaming consumer works unchanged, with the
//! whole suite as shard 0.
//!
//! The `results/` cache keys each stored outcome by
//! ([`JobKey`]: tool namespace, circuit content hash), so re-running an
//! evaluation on the same suite skips every (tool, circuit) pair it has
//! already routed, and an interrupted sharded run resumes where it stopped.
//! Cache writes go through a temp-file rename so a killed run never leaves a
//! half-written entry behind.
//!
//! **Fault tolerance.** Every byte the store touches goes through a
//! [`Vfs`](crate::vfs::Vfs), so the whole stack can be driven under scripted
//! faults ([`crate::vfs::FaultVfs`]) and is hardened against real ones:
//!
//! * Transient I/O errors are absorbed by a bounded
//!   [`RetryPolicy`](crate::vfs::RetryPolicy) (and transiently corrupt
//!   *reads* by re-reading until the hash check passes).
//! * Commits of manifests, ledgers, and the quarantine report fsync the
//!   temp file before the rename and the directory after it (see
//!   [`ExportOptions::durable`]), so "atomic" survives power loss, not just
//!   SIGKILL. A failed commit removes its temp file.
//! * Files that are *persistently* corrupt on disk (a cache entry that does
//!   not parse, a shard manifest that fails its hash check) are moved into
//!   `quarantine/` and recorded in the machine-readable
//!   [`QUARANTINE_REPORT_FILE`] instead of silently missing or aborting the
//!   run; the streaming pipelines skip, count, and surface quarantined
//!   shards.
//! * Export resume trusts only the disk: a shard manifest that exists and
//!   validates against the config (seeds, spans, device, gate counts) is
//!   reused even when the resume ledger is missing or corrupt, so a
//!   destroyed ledger never costs completed shards.

use crate::vfs::{RealVfs, RetryPolicy, Vfs};
use qubikos::{
    content_hash, generate, generate_suite, instance_file_name, shard_file_name, shard_spans,
    ExperimentPoint, GenerateError, GeneratorConfig, InstanceRecord, RootIndex, ShardManifest,
    ShardRecord, SuiteConfig, SuiteManifest, DEFAULT_SHARD_SIZE, MANIFEST_FILE, MANIFEST_FORMAT,
    SHARD_DIR, V1_MANIFEST_FORMAT,
};
use qubikos_arch::DeviceKind;
use qubikos_circuit::{parse_qasm, to_qasm};
use qubikos_engine::{Engine, JobKey, NullSink, ProgressSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// File name of the export resume ledger, next to the root index.
pub const EXPORT_LEDGER_FILE: &str = "export.ledger.json";

/// File name of the verification resume ledger, next to the root index.
pub const VERIFY_LEDGER_FILE: &str = "verify.ledger.json";

/// Directory (under the suite root) that corrupt files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Machine-readable report of every quarantined file, inside
/// [`QUARANTINE_DIR`].
pub const QUARANTINE_REPORT_FILE: &str = "quarantine/quarantine.json";

/// Everything that can go wrong exporting, opening, verifying, or loading a
/// stored suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// `manifest.json`, a shard manifest, or a cache entry did not
    /// deserialize.
    Malformed {
        /// Path of the offending file.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// The manifest's schema version is not one this build understands.
    FormatVersion {
        /// Version found in the manifest.
        found: u32,
    },
    /// A file's bytes do not match the recorded content hash (an instance
    /// file against its shard manifest, or a shard manifest against the root
    /// index).
    HashMismatch {
        /// The offending file.
        file: String,
        /// Hash recorded in the manifest.
        expected: String,
        /// Hash of the bytes on disk.
        found: String,
    },
    /// An instance file no longer parses as the supported QASM subset.
    Qasm {
        /// The instance file.
        file: String,
        /// Rendered parse error.
        message: String,
    },
    /// An instance file parses, but to a different circuit than the one its
    /// recorded seed regenerates — the round trip the paper's methodology
    /// relies on is broken.
    RoundTripMismatch {
        /// The instance file.
        file: String,
    },
    /// Regenerating an instance from its recorded seed failed.
    Generate(GenerateError),
    /// Verification finished and found failing instances. Unlike the
    /// per-instance variants above, this carries **every** failure, each
    /// with its shard and instance context.
    VerifyFailed {
        /// All failing instances, in (shard, instance) order.
        failures: Vec<VerifyFailure>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            StoreError::Malformed { path, message } => {
                write!(f, "malformed store file {path}: {message}")
            }
            StoreError::FormatVersion { found } => write!(
                f,
                "manifest format {found} is not supported (expected {MANIFEST_FORMAT} or {V1_MANIFEST_FORMAT})"
            ),
            StoreError::HashMismatch {
                file,
                expected,
                found,
            } => write!(
                f,
                "content hash mismatch for {file}: manifest records {expected}, file hashes to {found}"
            ),
            StoreError::Qasm { file, message } => {
                write!(f, "stored QASM {file} failed to parse: {message}")
            }
            StoreError::RoundTripMismatch { file } => write!(
                f,
                "stored QASM {file} parses to a different circuit than its recorded seed regenerates"
            ),
            StoreError::Generate(error) => write!(f, "regeneration failed: {error}"),
            StoreError::VerifyFailed { failures } => {
                writeln!(f, "verification failed for {} instance(s):", failures.len())?;
                for failure in failures {
                    writeln!(f, "  {failure}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for StoreError {}

impl StoreError {
    /// True when the error means the *bytes on disk* are wrong (tampered,
    /// torn, or rotted) rather than the filesystem failing: these are the
    /// errors the pipelines degrade around by quarantining the file, where
    /// an [`Io`](StoreError::Io) error still aborts the run.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::Malformed { .. }
                | StoreError::HashMismatch { .. }
                | StoreError::Qasm { .. }
                | StoreError::RoundTripMismatch { .. }
        )
    }
}

impl From<GenerateError> for StoreError {
    fn from(error: GenerateError) -> Self {
        StoreError::Generate(error)
    }
}

fn io_error(path: &Path, error: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: error.to_string(),
    }
}

// ---- fault-tolerant filesystem plumbing -----------------------------------

/// The store's view of the filesystem: a [`Vfs`] backend, the retry budget
/// for transient faults, and whether commits of critical files fsync.
#[derive(Debug, Clone)]
struct Fs {
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    durable: bool,
}

impl Fs {
    /// Reads a file, absorbing transient I/O errors (`NotFound` returns
    /// immediately).
    fn read(&self, path: &Path) -> io::Result<String> {
        self.retry.run(|| self.vfs.read_to_string(path))
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        self.retry
            .run(|| self.vfs.create_dir_all(path))
            .map_err(|e| io_error(path, &e))
    }

    /// Writes `text` to `path` via a sibling temp file + rename, so readers
    /// (and resumed runs) never observe a torn file. The temp name carries
    /// the process id and a per-process counter: two sharded runs landing on
    /// the same cache entry each rename their own complete file (last rename
    /// wins with identical content) instead of racing on one shared `.tmp`.
    ///
    /// With `durable` (manifests, ledgers, quarantine report) the temp file
    /// is fsynced before the rename and the parent directory after it, so a
    /// completed commit survives power loss. Any failed attempt removes its
    /// temp file before the retry policy re-runs or surfaces the error — a
    /// torn commit leaves no debris behind.
    fn write_atomic(&self, path: &Path, text: &str, durable: bool) -> Result<(), StoreError> {
        static WRITE_SERIAL: AtomicU64 = AtomicU64::new(0);
        self.retry
            .run(|| {
                let serial = WRITE_SERIAL.fetch_add(1, Ordering::Relaxed);
                let mut tmp = path.as_os_str().to_owned();
                tmp.push(format!(".{}-{serial}.tmp", std::process::id()));
                let tmp = PathBuf::from(tmp);
                let attempt = (|| {
                    self.vfs.write(&tmp, text)?;
                    if durable {
                        self.vfs.sync_file(&tmp)?;
                    }
                    self.vfs.rename(&tmp, path)
                })();
                if attempt.is_err() {
                    let _ = self.vfs.remove_file(&tmp);
                }
                attempt?;
                if durable {
                    if let Some(parent) = path.parent() {
                        // Advisory: a failed directory fsync does not un-commit
                        // the rename.
                        let _ = self.vfs.sync_dir(parent);
                    }
                }
                Ok(())
            })
            .map_err(|e| io_error(path, &e))
    }
}

/// Raw result-cache counters, totalled since the [`SuiteStore`] was opened.
/// Shared across clones of the store (the engine pipelines read the cache
/// from many workers), rendered via [`SuiteStore::cache_stats`].
#[derive(Debug, Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt_entries: AtomicU64,
}

/// Point-in-time snapshot of the store's result-cache counters
/// ([`SuiteStore::cache_stats`]): raw entry-level reads, before any
/// caller-side staleness filtering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStatsSnapshot {
    /// Entries that were present and parsed.
    pub hits: u64,
    /// Entries that were absent (or unreadable after retries).
    pub misses: u64,
    /// Entries that were present but persistently corrupt — each one was
    /// moved to [`QUARANTINE_DIR`] and costs exactly one recompute.
    pub corrupt_entries: u64,
}

impl CacheStatsSnapshot {
    /// Counter movement since `earlier` (saturating per field): the cache
    /// activity between two snapshots of the same store. Lets a pass report
    /// its own reads even when the store's lifetime counters already carry
    /// history from previous passes.
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            corrupt_entries: self.corrupt_entries.saturating_sub(earlier.corrupt_entries),
        }
    }
}

/// One quarantined file, as recorded in [`QUARANTINE_REPORT_FILE`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Original path, relative to the suite root.
    pub file: String,
    /// File class: `"cache"`, `"shard"`, `"instance"`, or `"ledger"`.
    pub class: String,
    /// Why the file was quarantined (rendered error).
    pub reason: String,
    /// Where the bytes were moved, relative to the suite root (inside
    /// [`QUARANTINE_DIR`]). Quarantining the same original path again gets a
    /// numbered suffix, so no evidence is overwritten.
    pub quarantined_as: String,
}

/// The machine-readable quarantine report: every file the store moved aside
/// instead of silently ignoring or hard-aborting on, in quarantine order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineReport {
    /// All quarantined files, oldest first.
    pub entries: Vec<QuarantineEntry>,
}

/// Moves `root/rel` into [`QUARANTINE_DIR`] and appends an entry to the
/// quarantine report. Serialized by a process-wide lock so concurrent
/// pipeline workers cannot interleave read-modify-write cycles on the
/// report. Best-effort by design: callers degrade around corruption, and a
/// failing quarantine (e.g. under injected faults) must not turn a
/// recoverable situation into an abort — hence the fallback from rename to
/// remove.
fn quarantine_file(
    fs: &Fs,
    root: &Path,
    rel: &str,
    class: &str,
    reason: &str,
) -> Result<(), StoreError> {
    static QUARANTINE_LOCK: Mutex<()> = Mutex::new(());
    let _guard = QUARANTINE_LOCK.lock().expect("quarantine lock");
    let report_path = root.join(QUARANTINE_REPORT_FILE);
    let mut report = match fs.read(&report_path) {
        Ok(text) => serde_json::from_str::<QuarantineReport>(&text).unwrap_or_default(),
        Err(_) => QuarantineReport::default(),
    };
    let flat = rel.replace('/', "__");
    let occurrence = report.entries.iter().filter(|e| e.file == rel).count();
    let quarantined_as = if occurrence == 0 {
        format!("{QUARANTINE_DIR}/{flat}")
    } else {
        format!("{QUARANTINE_DIR}/{flat}.{occurrence}")
    };
    fs.create_dir_all(&root.join(QUARANTINE_DIR))?;
    let source = root.join(rel);
    if fs
        .retry
        .run(|| fs.vfs.rename(&source, &root.join(&quarantined_as)))
        .is_err()
    {
        // Getting the corrupt file out of the way matters more than
        // preserving its bytes.
        let _ = fs.retry.run(|| fs.vfs.remove_file(&source));
    }
    report.entries.push(QuarantineEntry {
        file: rel.to_string(),
        class: class.to_string(),
        reason: reason.to_string(),
        quarantined_as,
    });
    let json = serde_json::to_string_pretty(&report).map_err(|e| StoreError::Malformed {
        path: report_path.display().to_string(),
        message: e.to_string(),
    })?;
    fs.write_atomic(&report_path, &json, fs.durable)
}

/// One failing instance found by [`SuiteStore::verify_streaming`], with the
/// shard and in-shard index needed to locate it in a sharded corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFailure {
    /// Shard the failure was found in.
    pub shard: usize,
    /// Index of the instance within its shard, or `None` when the shard
    /// manifest itself failed (unreadable, corrupt, or hash-mismatched).
    pub instance: Option<usize>,
    /// The offending file (instance QASM, or the shard manifest).
    pub file: String,
    /// Rendered cause.
    pub message: String,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instance {
            Some(instance) => write!(
                f,
                "shard {} instance {}: {}: {}",
                self.shard, instance, self.file, self.message
            ),
            None => write!(f, "shard {}: {}: {}", self.shard, self.file, self.message),
        }
    }
}

/// Outcome of [`SuiteStore::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Number of instances checked (hash + parse + regeneration round trip).
    pub instances: usize,
}

/// Outcome of [`SuiteStore::verify_streaming`]: counts plus **all** failures
/// found, instead of bailing on the first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Instances checked this run (excludes ledger-skipped shards).
    pub instances: usize,
    /// Shards checked this run.
    pub shards_checked: usize,
    /// Shards skipped because a previous run already verified them (resume
    /// ledger hits).
    pub shards_resumed: usize,
    /// Every failing instance, in (shard, instance) order.
    pub failures: Vec<VerifyFailure>,
    /// Whether the whole corpus has now been covered (false when the run was
    /// truncated by `stop_after_shards`).
    pub complete: bool,
}

/// Options for [`SuiteStore::export_with_options`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportOptions {
    /// Instances per shard ([`DEFAULT_SHARD_SIZE`] by default).
    pub shard_size: usize,
    /// Stop (as if interrupted) after writing this many *new* shards. Test
    /// and CI hook for exercising shard-granularity resume; `None` runs to
    /// completion.
    pub stop_after_shards: Option<usize>,
    /// Fsync manifests, ledgers, and the quarantine report on commit (temp
    /// file before the rename, directory after), so those files survive
    /// power loss — on by default. Per-instance QASM/sidecar files and
    /// cache entries are never fsynced: they are cheap to regenerate and
    /// their integrity is hash-checked on read anyway.
    pub durable: bool,
    /// Retry budget for transient I/O faults.
    pub retry: RetryPolicy,
}

impl Default for ExportOptions {
    fn default() -> Self {
        ExportOptions {
            shard_size: DEFAULT_SHARD_SIZE,
            stop_after_shards: None,
            durable: true,
            retry: RetryPolicy::default(),
        }
    }
}

impl ExportOptions {
    /// Sets the number of instances per shard (clamped to at least 1).
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Simulates an interrupt after `shards` newly written shards.
    pub fn with_stop_after_shards(mut self, shards: usize) -> Self {
        self.stop_after_shards = Some(shards);
        self
    }

    /// Enables or disables fsync-on-commit for manifests and ledgers.
    pub fn with_durability(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// Sets the transient-I/O retry budget.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Outcome of [`SuiteStore::export_with_options`].
#[derive(Debug)]
pub struct ExportOutcome {
    /// The opened store, or `None` when the run stopped early
    /// (`stop_after_shards`) before the root index could be written.
    pub store: Option<SuiteStore>,
    /// Shards generated and written by this run.
    pub shards_written: usize,
    /// Shards skipped because the resume ledger already had them.
    pub shards_resumed: usize,
    /// Total shards the corpus partitions into.
    pub shards_total: usize,
}

/// The per-operation resume ledger stored next to the root index: which
/// shards a previous (interrupted) run already completed, fingerprinted by
/// the operation's inputs so a changed config invalidates it wholesale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ShardLedger {
    operation: String,
    fingerprint: String,
    completed: Vec<usize>,
}

/// Reads a resume ledger. Absent or unreadable: nothing to resume. Present
/// but unparseable: the file is corrupt — it is quarantined (the evidence
/// may matter) and the run restarts from scratch. Parseable but for a
/// different operation or fingerprint: *stale*, not corrupt — ignored
/// without quarantining, exactly as before.
fn read_ledger(
    fs: &Fs,
    root: &Path,
    name: &str,
    operation: &str,
    fingerprint: &str,
) -> BTreeSet<usize> {
    let path = root.join(name);
    let Ok(text) = fs.read(&path) else {
        return BTreeSet::new();
    };
    let Ok(ledger) = serde_json::from_str::<ShardLedger>(&text) else {
        let _ = quarantine_file(fs, root, name, "ledger", "resume ledger does not parse");
        return BTreeSet::new();
    };
    if ledger.operation != operation || ledger.fingerprint != fingerprint {
        return BTreeSet::new();
    }
    ledger.completed.into_iter().collect()
}

fn write_ledger(
    fs: &Fs,
    path: &Path,
    operation: &str,
    fingerprint: &str,
    completed: &BTreeSet<usize>,
) -> Result<(), StoreError> {
    let ledger = ShardLedger {
        operation: operation.to_string(),
        fingerprint: fingerprint.to_string(),
        completed: completed.iter().copied().collect(),
    };
    let json = serde_json::to_string_pretty(&ledger).map_err(|e| StoreError::Malformed {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    fs.write_atomic(path, &json, fs.durable)
}

/// Per-store shard-residency bookkeeping: how many shards of
/// `ExperimentPoint`s are materialized right now, and the high-water mark.
/// This is what lets tests *assert* the streaming pipelines' flat-memory
/// claim instead of trusting it.
#[derive(Debug, Default)]
struct Residency {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl Residency {
    fn acquire(self: &Arc<Self>) -> ResidencyGuard {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
        ResidencyGuard {
            residency: Arc::clone(self),
        }
    }
}

#[derive(Debug)]
struct ResidencyGuard {
    residency: Arc<Residency>,
}

impl Drop for ResidencyGuard {
    fn drop(&mut self) {
        self.residency.current.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One shard's worth of verified [`ExperimentPoint`]s, counted against the
/// store's residency tracker for as long as it lives. Derefs to the slice of
/// points.
#[derive(Debug)]
pub struct LoadedShard {
    shard: usize,
    points: Vec<ExperimentPoint>,
    _guard: ResidencyGuard,
}

impl LoadedShard {
    /// Index of the shard within the suite.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The shard's verified points, in flat grid order.
    pub fn points(&self) -> &[ExperimentPoint] {
        &self.points
    }

    /// Consumes the shard into its points. The residency guard drops here,
    /// so callers that keep the points alive (e.g. the materializing
    /// [`SuiteStore::load`]) take themselves out of the flat-memory
    /// accounting on purpose.
    pub fn into_points(self) -> Vec<ExperimentPoint> {
        self.points
    }
}

impl Deref for LoadedShard {
    type Target = [ExperimentPoint];

    fn deref(&self) -> &[ExperimentPoint] {
        &self.points
    }
}

/// A suite directory opened for reading (and result caching).
#[derive(Debug, Clone)]
pub struct SuiteStore {
    root: PathBuf,
    index: RootIndex,
    /// Present when the directory held a legacy monolithic manifest: the
    /// instance records live inline (there is no shard file to read).
    v1_instances: Option<Arc<Vec<InstanceRecord>>>,
    residency: Arc<Residency>,
    fs: Fs,
    cache_stats: Arc<CacheStats>,
}

impl SuiteStore {
    /// Generates the suite described by `(device, config)` and writes it to
    /// `root` as a sharded corpus: `manifest.json` (the root index), one
    /// shard manifest per [`ExportOptions::shard_size`] instances under
    /// `shards/`, and one QASM file (plus a JSON metadata sidecar for
    /// external tools) per instance. Existing files are overwritten; an
    /// existing result cache under `root/results` is left untouched (entries
    /// are content-addressed, so stale ones are simply never hit).
    ///
    /// Shards are generated and written in parallel on the execution engine
    /// — one job per shard, order-independent thanks to
    /// [`SuiteConfig::instance_seed`] — so exporting a large corpus
    /// parallelizes while the root index stays byte-identical to a
    /// sequential export. Each completed shard is recorded in a resume
    /// ledger ([`EXPORT_LEDGER_FILE`]); an interrupted export rerun with the
    /// same inputs regenerates only the missing shards and still produces a
    /// byte-identical root index. The ledger is removed on completion — and
    /// it is an optimization, not a dependency: a shard whose manifest is on
    /// disk and validates against the config (seeds, span, device, gate
    /// count) is resumed even when the ledger was lost or corrupted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Generate`] on suite misconfiguration, [`StoreError::Io`]
    /// on filesystem failures.
    pub fn export_with_options(
        root: impl Into<PathBuf>,
        device: DeviceKind,
        config: &SuiteConfig,
        options: &ExportOptions,
        threads: usize,
        sink: &dyn ProgressSink,
    ) -> Result<ExportOutcome, StoreError> {
        Self::export_with_options_on(
            Arc::new(RealVfs),
            root,
            device,
            config,
            options,
            threads,
            sink,
        )
    }

    /// [`export_with_options`](Self::export_with_options) on an explicit
    /// [`Vfs`] backend — the entry point the chaos suite drives with a
    /// [`crate::vfs::FaultVfs`].
    ///
    /// # Errors
    ///
    /// As [`export_with_options`](Self::export_with_options).
    pub fn export_with_options_on(
        vfs: Arc<dyn Vfs>,
        root: impl Into<PathBuf>,
        device: DeviceKind,
        config: &SuiteConfig,
        options: &ExportOptions,
        threads: usize,
        sink: &dyn ProgressSink,
    ) -> Result<ExportOutcome, StoreError> {
        let root = root.into();
        let arch = device.build();
        let fs = Fs {
            vfs,
            retry: options.retry,
            durable: options.durable,
        };
        fs.create_dir_all(&root.join(SHARD_DIR))?;

        let spans = shard_spans(config.total_circuits(), options.shard_size);
        let shards_total = spans.len();
        let fingerprint = export_fingerprint(device, config, options.shard_size);
        let ledger_path = root.join(EXPORT_LEDGER_FILE);
        let completed = read_ledger(&fs, &root, EXPORT_LEDGER_FILE, "export", &fingerprint);

        // Resume trusts the disk over the ledger. A ledgered shard only needs
        // its manifest re-read (the fingerprint already pins the config); an
        // unledgered shard can still be resumed if its manifest validates
        // record-by-record against the config — which is what saves completed
        // work when the ledger itself was truncated or corrupted. Anything
        // missing or invalid is regenerated.
        let mut resumed: Vec<(usize, ShardRecord)> = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        for shard in 0..shards_total {
            let record = if completed.contains(&shard) {
                read_shard_record(&fs, &root, shard)
            } else {
                read_shard_record_validated(&fs, &root, shard, device, config, &spans[shard])
            };
            match record {
                Ok(record) => resumed.push((shard, record)),
                Err(_) => pending.push(shard),
            }
        }
        let shards_resumed = resumed.len();
        let truncated = options
            .stop_after_shards
            .is_some_and(|limit| pending.len() > limit);
        if let Some(limit) = options.stop_after_shards {
            pending.truncate(limit);
        }

        let ledger = Mutex::new(
            resumed
                .iter()
                .map(|(shard, _)| *shard)
                .collect::<BTreeSet<_>>(),
        );
        let engine = Engine::new(threads).with_base_seed(config.base_seed);
        let written = engine.run_values(
            &pending,
            |_worker| (),
            |(), _ctx, &shard| -> Result<(usize, ShardRecord), StoreError> {
                let mut records = Vec::with_capacity(spans[shard].len());
                for flat in spans[shard].clone() {
                    let (count_index, instance) = config.instance_coordinates(flat);
                    let swap_count = config.swap_counts[count_index];
                    let seed = config.instance_seed(count_index, instance);
                    let gen_config =
                        GeneratorConfig::new(swap_count, config.two_qubit_gates).with_seed(seed);
                    let benchmark = generate(&arch, &gen_config)?;
                    let point = ExperimentPoint {
                        swap_count,
                        instance,
                        seed,
                        benchmark,
                    };
                    let record = InstanceRecord::describe(device, &point);
                    let qasm_path = root.join(&record.file);
                    fs.write_atomic(&qasm_path, &to_qasm(point.benchmark.circuit()), false)?;
                    let sidecar = serde_json::json!({
                        "architecture": point.benchmark.architecture(),
                        "optimal_swaps": point.benchmark.optimal_swaps(),
                        "two_qubit_gates": record.two_qubit_gates,
                        "seed": seed,
                        "content_hash": record.content_hash,
                        "optimal_initial_mapping": point.benchmark.reference_mapping().as_slice(),
                    });
                    let sidecar_path = qasm_path.with_extension("json");
                    let json = serde_json::to_string_pretty(&sidecar).map_err(|e| {
                        StoreError::Malformed {
                            path: sidecar_path.display().to_string(),
                            message: e.to_string(),
                        }
                    })?;
                    fs.write_atomic(&sidecar_path, &json, false)?;
                    records.push(record);
                }
                let manifest = ShardManifest {
                    shard,
                    instances: records,
                };
                let file = shard_file_name(shard);
                let path = root.join(&file);
                let json =
                    serde_json::to_string_pretty(&manifest).map_err(|e| StoreError::Malformed {
                        path: path.display().to_string(),
                        message: e.to_string(),
                    })?;
                fs.write_atomic(&path, &json, fs.durable)?;
                let record = ShardRecord {
                    shard,
                    file,
                    instances: manifest.instances.len(),
                    content_hash: content_hash(&json),
                };
                // Mark the shard done in the resume ledger the moment its
                // manifest is on disk, so an interrupt right after this
                // write still resumes past it.
                {
                    let mut done = ledger.lock().expect("ledger mutex");
                    done.insert(shard);
                    write_ledger(&fs, &ledger_path, "export", &fingerprint, &done)?;
                }
                Ok((shard, record))
            },
            sink,
        );
        let written = written
            .unwrap_or_else(|error| panic!("suite export aborted: {error}"))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let shards_written = written.len();

        if truncated {
            return Ok(ExportOutcome {
                store: None,
                shards_written,
                shards_resumed,
                shards_total,
            });
        }

        let mut shard_records: Vec<(usize, ShardRecord)> = resumed;
        shard_records.extend(written);
        shard_records.sort_by_key(|(shard, _)| *shard);
        let index = RootIndex {
            format: MANIFEST_FORMAT,
            device,
            config: config.clone(),
            shard_size: options.shard_size,
            shards: shard_records
                .into_iter()
                .map(|(_, record)| record)
                .collect(),
        };
        let manifest_path = root.join(MANIFEST_FILE);
        let json = serde_json::to_string_pretty(&index).map_err(|e| StoreError::Malformed {
            path: manifest_path.display().to_string(),
            message: e.to_string(),
        })?;
        fs.write_atomic(&manifest_path, &json, fs.durable)?;
        let _ = fs.retry.run(|| fs.vfs.remove_file(&ledger_path));
        Ok(ExportOutcome {
            store: Some(SuiteStore {
                root,
                index,
                v1_instances: None,
                residency: Arc::new(Residency::default()),
                fs,
                cache_stats: Arc::new(CacheStats::default()),
            }),
            shards_written,
            shards_resumed,
            shards_total,
        })
    }

    /// [`export_with_options`](Self::export_with_options) with the default
    /// shard size and no early stop, returning the opened store.
    ///
    /// # Errors
    ///
    /// As [`export_with_options`](Self::export_with_options).
    pub fn export(
        root: impl Into<PathBuf>,
        device: DeviceKind,
        config: &SuiteConfig,
        threads: usize,
        sink: &dyn ProgressSink,
    ) -> Result<SuiteStore, StoreError> {
        let outcome = Self::export_with_options(
            root,
            device,
            config,
            &ExportOptions::default(),
            threads,
            sink,
        )?;
        Ok(outcome
            .store
            .expect("export without stop_after_shards always completes"))
    }

    /// Opens an existing suite directory by reading its manifest. A format-2
    /// root index opens as-is; a legacy format-1 monolithic manifest opens
    /// transparently as a single-shard corpus. No instance files are touched
    /// until a shard is loaded or verified.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the manifest is unreadable,
    /// [`StoreError::Malformed`] when it does not deserialize,
    /// [`StoreError::FormatVersion`] on a schema mismatch.
    pub fn open(root: impl Into<PathBuf>) -> Result<SuiteStore, StoreError> {
        Self::open_with(root, Arc::new(RealVfs), RetryPolicy::default())
    }

    /// [`open`](Self::open) on an explicit [`Vfs`] backend and retry policy
    /// — the entry point the chaos suite drives with a
    /// [`crate::vfs::FaultVfs`].
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(
        root: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
        retry: RetryPolicy,
    ) -> Result<SuiteStore, StoreError> {
        let root = root.into();
        let fs = Fs {
            vfs,
            retry,
            durable: true,
        };
        let manifest_path = root.join(MANIFEST_FILE);
        let text = fs
            .read(&manifest_path)
            .map_err(|e| io_error(&manifest_path, &e))?;
        let malformed = |message: String| StoreError::Malformed {
            path: manifest_path.display().to_string(),
            message,
        };
        let value: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| malformed(e.to_string()))?;
        let format = value
            .object_field("format")
            .and_then(u32::deserialize_value)
            .map_err(|e| malformed(e.to_string()))?;
        match format {
            MANIFEST_FORMAT => {
                let index =
                    RootIndex::deserialize_value(&value).map_err(|e| malformed(e.to_string()))?;
                Ok(SuiteStore {
                    root,
                    index,
                    v1_instances: None,
                    residency: Arc::new(Residency::default()),
                    fs,
                    cache_stats: Arc::new(CacheStats::default()),
                })
            }
            V1_MANIFEST_FORMAT => {
                let manifest = SuiteManifest::deserialize_value(&value)
                    .map_err(|e| malformed(e.to_string()))?;
                // The monolithic manifest *is* the single shard: the root
                // record points at manifest.json itself, hash included, so
                // the integrity chain holds end to end for v1 corpora too.
                let index = RootIndex {
                    format: V1_MANIFEST_FORMAT,
                    device: manifest.device,
                    config: manifest.config,
                    shard_size: manifest.instances.len().max(1),
                    shards: vec![ShardRecord {
                        shard: 0,
                        file: MANIFEST_FILE.to_string(),
                        instances: manifest.instances.len(),
                        content_hash: content_hash(&text),
                    }],
                };
                Ok(SuiteStore {
                    root,
                    index,
                    v1_instances: Some(Arc::new(manifest.instances)),
                    residency: Arc::new(Residency::default()),
                    fs,
                    cache_stats: Arc::new(CacheStats::default()),
                })
            }
            found => Err(StoreError::FormatVersion { found }),
        }
    }

    /// The suite directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The root index read at [`open`](Self::open) (or written by
    /// [`export`](Self::export)). For a legacy corpus this is the
    /// synthesized single-shard view.
    pub fn index(&self) -> &RootIndex {
        &self.index
    }

    /// Device the stored suite targets.
    pub fn device(&self) -> DeviceKind {
        self.index.device
    }

    /// The configuration the suite was generated from.
    pub fn config(&self) -> &SuiteConfig {
        &self.index.config
    }

    /// Number of shards the corpus partitions into.
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// Total instances across all shards.
    pub fn total_instances(&self) -> usize {
        self.index.total_instances()
    }

    /// High-water mark of concurrently resident loaded shards since the
    /// store was opened (or since [`reset_residency_peak`]). The streaming
    /// pipelines' flat-memory claim is exactly `residency_peak() <= 1`.
    ///
    /// [`reset_residency_peak`]: Self::reset_residency_peak
    pub fn residency_peak(&self) -> usize {
        self.residency.peak.load(Ordering::SeqCst)
    }

    /// Resets the residency high-water mark (to the current residency).
    pub fn reset_residency_peak(&self) {
        self.residency.peak.store(
            self.residency.current.load(Ordering::SeqCst),
            Ordering::SeqCst,
        );
    }

    /// Reads shard `shard`'s instance records, verifying the shard
    /// manifest's bytes against the root index hash. For a legacy corpus the
    /// records come from the in-memory manifest.
    ///
    /// A failed hash check is re-read up to the retry budget before it
    /// counts: transiently corrupt *reads* (the medium returned wrong bytes
    /// for an intact file) heal, only persistent on-disk corruption
    /// surfaces.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]/[`StoreError::Malformed`]/[`StoreError::HashMismatch`]
    /// on unreadable, corrupt, or tampered shard manifests.
    pub fn shard_records(&self, shard: usize) -> Result<Vec<InstanceRecord>, StoreError> {
        if let Some(instances) = &self.v1_instances {
            assert_eq!(shard, 0, "legacy corpus has exactly one shard");
            return Ok(instances.as_ref().clone());
        }
        let record = &self.index.shards[shard];
        let path = self.root.join(&record.file);
        let mut last = None;
        for _ in 0..self.fs.retry.attempts.max(1) {
            let text = self.fs.read(&path).map_err(|e| io_error(&path, &e))?;
            match parse_shard_manifest(&text, shard, record, &path) {
                Ok(instances) => return Ok(instances),
                Err(error) => last = Some(error),
            }
        }
        Err(last.expect("at least one attempt runs"))
    }

    /// Loads one shard back into verified experiment points: each file's
    /// bytes must match the shard hash, parse as the supported QASM subset,
    /// and equal the circuit regenerated from the recorded seed. The
    /// returned points (including certificates and reference solutions) are
    /// therefore bit-identical to the corresponding slice of what
    /// [`generate_suite`] produces for the index's config.
    ///
    /// The returned [`LoadedShard`] counts against
    /// [`residency_peak`](Self::residency_peak) until dropped.
    ///
    /// # Errors
    ///
    /// The first (in shard order) [`StoreError`] found.
    pub fn load_shard(&self, shard: usize) -> Result<LoadedShard, StoreError> {
        let records = self.shard_records(shard)?;
        let guard = self.residency.acquire();
        let arch = self.index.device.build();
        let points = records
            .iter()
            .map(|record| self.check_instance(&arch, record))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LoadedShard {
            shard,
            points,
            _guard: guard,
        })
    }

    /// Verifies one instance record and returns its point: hash check,
    /// parse, and regeneration round trip. As with
    /// [`shard_records`](Self::shard_records), a failed check is re-read up
    /// to the retry budget so transient read corruption heals.
    fn check_instance(
        &self,
        arch: &qubikos_arch::Architecture,
        record: &InstanceRecord,
    ) -> Result<ExperimentPoint, StoreError> {
        let gen_config = GeneratorConfig::new(record.swap_count, self.index.config.two_qubit_gates)
            .with_seed(record.seed);
        let benchmark = generate(arch, &gen_config)?;
        let path = self.root.join(&record.file);
        let mut last = None;
        for _ in 0..self.fs.retry.attempts.max(1) {
            let text = self.fs.read(&path).map_err(|e| io_error(&path, &e))?;
            let checked = (|| {
                let found = content_hash(&text);
                if found != record.content_hash {
                    return Err(StoreError::HashMismatch {
                        file: record.file.clone(),
                        expected: record.content_hash.clone(),
                        found,
                    });
                }
                let parsed = parse_qasm(&text).map_err(|e| StoreError::Qasm {
                    file: record.file.clone(),
                    message: e.to_string(),
                })?;
                if &parsed != benchmark.circuit() {
                    return Err(StoreError::RoundTripMismatch {
                        file: record.file.clone(),
                    });
                }
                Ok(())
            })();
            match checked {
                Ok(()) => {
                    return Ok(ExperimentPoint {
                        swap_count: record.swap_count,
                        instance: record.instance,
                        seed: record.seed,
                        benchmark,
                    })
                }
                Err(error) => last = Some(error),
            }
        }
        Err(last.expect("at least one attempt runs"))
    }

    /// Materializes the whole corpus as one `Vec`, shard by shard, with the
    /// same per-instance verification as [`load_shard`](Self::load_shard).
    /// Convenience for small suites and tests; the streaming pipelines never
    /// call this.
    ///
    /// # Errors
    ///
    /// The first (in shard order) [`StoreError`] found.
    pub fn load(&self) -> Result<Vec<ExperimentPoint>, StoreError> {
        let mut points = Vec::with_capacity(self.total_instances());
        for shard in 0..self.shard_count() {
            points.extend(self.load_shard(shard)?.into_points());
        }
        Ok(points)
    }

    /// Verifies every instance (hash, parse, regeneration round trip)
    /// without keeping the circuits, streaming shard by shard on the engine
    /// — one job per shard, so verification of a large corpus parallelizes
    /// with flat memory. Unlike [`verify`](Self::verify) this reports
    /// **all** failing instances (with shard + index context) instead of
    /// bailing on the first mismatch.
    ///
    /// Clean shards are recorded in a resume ledger ([`VERIFY_LEDGER_FILE`]);
    /// an interrupted verification rerun skips them. The ledger is removed
    /// when a run covers the whole corpus cleanly. `stop_after_shards`
    /// truncates the run after that many shards (the CI interrupt hook).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the ledger cannot be written. Per-instance
    /// problems are *not* errors here — they land in
    /// [`VerifyReport::failures`].
    pub fn verify_streaming(
        &self,
        threads: usize,
        stop_after_shards: Option<usize>,
        sink: &dyn ProgressSink,
    ) -> Result<VerifyReport, StoreError> {
        let fingerprint = self.verify_fingerprint();
        let ledger_path = self.root.join(VERIFY_LEDGER_FILE);
        let completed = read_ledger(
            &self.fs,
            &self.root,
            VERIFY_LEDGER_FILE,
            "verify",
            &fingerprint,
        );
        let mut pending: Vec<usize> = (0..self.shard_count())
            .filter(|s| !completed.contains(s))
            .collect();
        let shards_resumed = self.shard_count() - pending.len();
        let truncated = stop_after_shards.is_some_and(|limit| pending.len() > limit);
        if let Some(limit) = stop_after_shards {
            pending.truncate(limit);
        }

        let arch = self.index.device.build();
        let ledger = Mutex::new(completed);
        let engine = Engine::new(threads).with_base_seed(self.index.config.base_seed);
        let checked = engine.run_values(
            &pending,
            |_worker| (),
            |(), _ctx, &shard| -> Result<(usize, Vec<VerifyFailure>), StoreError> {
                let records = match self.shard_records(shard) {
                    Ok(records) => records,
                    Err(error) => {
                        let file = self
                            .index
                            .shards
                            .get(shard)
                            .map_or_else(|| shard_file_name(shard), |r| r.file.clone());
                        return Ok((
                            0,
                            vec![VerifyFailure {
                                shard,
                                instance: None,
                                file,
                                message: error.to_string(),
                            }],
                        ));
                    }
                };
                let mut failures = Vec::new();
                for (instance, record) in records.iter().enumerate() {
                    if let Err(error) = self.check_instance(&arch, record) {
                        failures.push(VerifyFailure {
                            shard,
                            instance: Some(instance),
                            file: record.file.clone(),
                            message: error.to_string(),
                        });
                    }
                }
                if failures.is_empty() {
                    let mut done = ledger.lock().expect("ledger mutex");
                    done.insert(shard);
                    write_ledger(&self.fs, &ledger_path, "verify", &fingerprint, &done)?;
                }
                Ok((records.len(), failures))
            },
            sink,
        );
        let checked = checked
            .unwrap_or_else(|error| panic!("suite verification aborted: {error}"))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;

        let mut instances = 0;
        let mut failures = Vec::new();
        for (count, mut shard_failures) in checked {
            instances += count;
            failures.append(&mut shard_failures);
        }
        let complete = !truncated;
        if complete && failures.is_empty() {
            let _ = self.fs.retry.run(|| self.fs.vfs.remove_file(&ledger_path));
        }
        Ok(VerifyReport {
            instances,
            shards_checked: pending.len(),
            shards_resumed,
            failures,
            complete,
        })
    }

    /// Single-threaded full verification, erroring when anything fails. Kept
    /// for callers that want the old all-or-nothing contract; the error now
    /// carries **every** failure ([`StoreError::VerifyFailed`]), not just
    /// the first. Ignores and does not touch the resume ledger semantics
    /// beyond [`verify_streaming`](Self::verify_streaming)'s.
    ///
    /// # Errors
    ///
    /// [`StoreError::VerifyFailed`] listing all failing instances;
    /// [`StoreError::Io`] on ledger write failures.
    pub fn verify(&self) -> Result<VerifyOutcome, StoreError> {
        let report = self.verify_streaming(1, None, &NullSink)?;
        if report.failures.is_empty() {
            Ok(VerifyOutcome {
                instances: report.instances,
            })
        } else {
            Err(StoreError::VerifyFailed {
                failures: report.failures,
            })
        }
    }

    /// Fingerprint binding a verification ledger to this exact corpus (the
    /// serialized root index covers device, config, shard size, and every
    /// shard hash).
    fn verify_fingerprint(&self) -> String {
        content_hash(&serde_json::to_string(&self.index).expect("index serializes"))
    }

    /// Convenience: generates the index's suite in memory (no disk reads
    /// beyond the already-loaded root index). Used by tests comparing stored
    /// and in-memory pipelines.
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] as [`StoreError::Generate`].
    pub fn regenerate(&self) -> Result<Vec<ExperimentPoint>, StoreError> {
        let arch = self.index.device.build();
        Ok(generate_suite(&arch, &self.index.config)?)
    }

    // ---- result cache -----------------------------------------------------

    /// Path of the cache entry for `key`.
    fn cache_path(&self, key: &JobKey) -> PathBuf {
        self.root
            .join("results")
            .join(key.namespace())
            .join(format!("{}.json", key.key()))
    }

    /// Root-relative path of the cache entry for `key` (quarantine
    /// bookkeeping).
    fn cache_rel(key: &JobKey) -> String {
        format!("results/{}/{}.json", key.namespace(), key.key())
    }

    /// Reads a cache entry. Returns `None` when the entry is absent **or**
    /// corrupt — a broken cache entry must only cost a recompute, never fail
    /// a run. A persistently corrupt entry (still unparseable after the
    /// retry budget's worth of re-reads) is additionally moved to
    /// [`QUARANTINE_DIR`] and counted in
    /// [`cache_stats`](Self::cache_stats)`.corrupt_entries`, so silent rot
    /// is visible instead of costing a recompute on every run forever.
    pub fn read_cached<T: serde::Deserialize>(&self, key: &JobKey) -> Option<T> {
        let path = self.cache_path(key);
        let mut parse_error = None;
        for _ in 0..self.fs.retry.attempts.max(1) {
            let text = match self.fs.read(&path) {
                Ok(text) => text,
                Err(_) => {
                    // Absent, or unreadable even after retries: a miss. The
                    // file (if any) may be fine — never quarantine on a read
                    // failure alone.
                    self.cache_stats.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            match serde_json::from_str(&text) {
                Ok(value) => {
                    self.cache_stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(value);
                }
                Err(error) => parse_error = Some(error),
            }
        }
        self.cache_stats
            .corrupt_entries
            .fetch_add(1, Ordering::Relaxed);
        let reason = format!(
            "cache entry does not parse: {}",
            parse_error.expect("at least one attempt runs")
        );
        let _ = quarantine_file(
            &self.fs,
            &self.root,
            &Self::cache_rel(key),
            "cache",
            &reason,
        );
        None
    }

    /// Writes a cache entry atomically (temp file + rename), creating the
    /// cache directories on first use.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn write_cached<T: Serialize>(&self, key: &JobKey, value: &T) -> Result<(), StoreError> {
        let path = self.cache_path(key);
        if let Some(parent) = path.parent() {
            self.fs.create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(value).map_err(|e| StoreError::Malformed {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.fs.write_atomic(&path, &json, false)
    }

    /// Snapshot of the result-cache counters accumulated by this store (and
    /// all its clones) since it was opened.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.cache_stats.hits.load(Ordering::Relaxed),
            misses: self.cache_stats.misses.load(Ordering::Relaxed),
            corrupt_entries: self.cache_stats.corrupt_entries.load(Ordering::Relaxed),
        }
    }

    // ---- quarantine --------------------------------------------------------

    /// Reads the quarantine report ([`QUARANTINE_REPORT_FILE`]); an absent
    /// or unreadable report is an empty one.
    pub fn quarantine_report(&self) -> QuarantineReport {
        let path = self.root.join(QUARANTINE_REPORT_FILE);
        match self.fs.read(&path) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
            Err(_) => QuarantineReport::default(),
        }
    }

    /// Quarantines the file implicated by a corruption-class error on
    /// `shard`: the specific instance file when the error names one, the
    /// shard manifest otherwise. Used by the streaming pipelines to degrade
    /// — skip, count, surface — instead of aborting; re-exporting the suite
    /// regenerates whatever was moved aside.
    ///
    /// When the offender is an *instance* file, the shard's manifest is
    /// quarantined alongside it: export-resume only regenerates a shard
    /// whose manifest is missing or invalid, so leaving a valid manifest
    /// over a quarantined instance would strand a hole no re-export heals.
    pub(crate) fn quarantine_shard_error(&self, shard: usize, error: &StoreError) {
        let manifest_rel = self
            .index
            .shards
            .get(shard)
            .map_or_else(|| shard_file_name(shard), |record| record.file.clone());
        let reason = error.to_string();
        match error {
            StoreError::HashMismatch { file, .. }
            | StoreError::Qasm { file, .. }
            | StoreError::RoundTripMismatch { file }
                if file.ends_with(".qasm") =>
            {
                let _ = quarantine_file(&self.fs, &self.root, file, "instance", &reason);
                let _ = quarantine_file(
                    &self.fs,
                    &self.root,
                    &manifest_rel,
                    "shard",
                    &format!("contains quarantined instance {file}"),
                );
            }
            StoreError::HashMismatch { file, .. }
            | StoreError::Qasm { file, .. }
            | StoreError::RoundTripMismatch { file } => {
                let _ = quarantine_file(&self.fs, &self.root, file, "shard", &reason);
            }
            _ => {
                let _ = quarantine_file(&self.fs, &self.root, &manifest_rel, "shard", &reason);
            }
        }
    }
}

/// Fingerprint binding an export ledger to its inputs: same device, config,
/// and shard size ⇒ same shard contents, so completed shards are reusable.
fn export_fingerprint(device: DeviceKind, config: &SuiteConfig, shard_size: usize) -> String {
    let inputs = serde_json::json!({
        "device": device,
        "config": config,
        "shard_size": shard_size,
    });
    content_hash(&serde_json::to_string(&inputs).expect("fingerprint serializes"))
}

/// Parses and integrity-checks one shard manifest's text against its root
/// index record: hash, schema, and shard-number check.
fn parse_shard_manifest(
    text: &str,
    shard: usize,
    record: &ShardRecord,
    path: &Path,
) -> Result<Vec<InstanceRecord>, StoreError> {
    let found = content_hash(text);
    if found != record.content_hash {
        return Err(StoreError::HashMismatch {
            file: record.file.clone(),
            expected: record.content_hash.clone(),
            found,
        });
    }
    let manifest: ShardManifest =
        serde_json::from_str(text).map_err(|e| StoreError::Malformed {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
    if manifest.shard != shard {
        return Err(StoreError::Malformed {
            path: path.display().to_string(),
            message: format!(
                "shard manifest claims shard {}, expected {shard}",
                manifest.shard
            ),
        });
    }
    Ok(manifest.instances)
}

/// Re-derives the root-index record of an already-written shard manifest
/// from its bytes on disk (resume path for *ledgered* shards — the ledger
/// fingerprint already pins the config the manifest was written for).
fn read_shard_record(fs: &Fs, root: &Path, shard: usize) -> Result<ShardRecord, StoreError> {
    let (record, _) = read_shard_manifest(fs, root, shard)?;
    Ok(record)
}

fn read_shard_manifest(
    fs: &Fs,
    root: &Path,
    shard: usize,
) -> Result<(ShardRecord, ShardManifest), StoreError> {
    let file = shard_file_name(shard);
    let path = root.join(&file);
    let text = fs.read(&path).map_err(|e| io_error(&path, &e))?;
    let manifest: ShardManifest =
        serde_json::from_str(&text).map_err(|e| StoreError::Malformed {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
    if manifest.shard != shard {
        return Err(StoreError::Malformed {
            path: path.display().to_string(),
            message: format!(
                "shard manifest claims shard {}, expected {shard}",
                manifest.shard
            ),
        });
    }
    let record = ShardRecord {
        shard,
        file,
        instances: manifest.instances.len(),
        content_hash: content_hash(&text),
    };
    Ok((record, manifest))
}

/// Resume path for shards the ledger does *not* vouch for: the manifest on
/// disk is only reused if every record matches what this export would
/// generate — file name (device), seed, swap count, instance index, and
/// gate count per [`SuiteConfig::instance_seed`] over the shard's span.
/// Shard contents are pure functions of those inputs, so a validated shard
/// is byte-identical to a regenerated one; anything else fails validation
/// and gets regenerated.
fn read_shard_record_validated(
    fs: &Fs,
    root: &Path,
    shard: usize,
    device: DeviceKind,
    config: &SuiteConfig,
    span: &std::ops::Range<usize>,
) -> Result<ShardRecord, StoreError> {
    let (record, manifest) = read_shard_manifest(fs, root, shard)?;
    let mismatch = |message: String| StoreError::Malformed {
        path: root.join(shard_file_name(shard)).display().to_string(),
        message,
    };
    if manifest.instances.len() != span.len() {
        return Err(mismatch(format!(
            "shard holds {} instances, config expects {}",
            manifest.instances.len(),
            span.len()
        )));
    }
    for (offset, instance_record) in manifest.instances.iter().enumerate() {
        let (count_index, instance) = config.instance_coordinates(span.start + offset);
        let swap_count = config.swap_counts[count_index];
        let seed = config.instance_seed(count_index, instance);
        let expected_file = instance_file_name(device, swap_count, instance);
        if instance_record.swap_count != swap_count
            || instance_record.instance != instance
            || instance_record.seed != seed
            || instance_record.two_qubit_gates != config.two_qubit_gates
            || instance_record.file != expected_file
        {
            return Err(mismatch(format!(
                "instance {offset} does not match the configured suite (found {}, expected {expected_file} with seed {seed})",
                instance_record.file
            )));
        }
    }
    Ok(record)
}

/// Exports a suite with no progress streaming (library/test convenience;
/// CLIs pass a real sink to [`SuiteStore::export`]).
///
/// # Errors
///
/// As [`SuiteStore::export`].
pub fn export_suite(
    root: impl Into<PathBuf>,
    device: DeviceKind,
    config: &SuiteConfig,
    threads: usize,
) -> Result<SuiteStore, StoreError> {
    SuiteStore::export(root, device, config, threads, &NullSink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_engine::AUTO_THREADS;

    /// A unique temp dir per test; removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "qubikos-store-{}-{}-{name}",
                std::process::id(),
                std::thread::current()
                    .name()
                    .unwrap_or("t")
                    .replace("::", "-"),
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_config() -> SuiteConfig {
        SuiteConfig {
            swap_counts: vec![1, 2],
            circuits_per_count: 2,
            two_qubit_gates: 16,
            base_seed: 11,
        }
    }

    #[test]
    fn export_then_load_round_trips_bit_identically() {
        let dir = TempDir::new("round-trip");
        let config = tiny_config();
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &config, 2).expect("export");
        assert_eq!(store.total_instances(), 4);
        assert_eq!(store.shard_count(), 1, "4 instances fit one default shard");

        let reopened = SuiteStore::open(&dir.0).expect("open");
        assert_eq!(reopened.index(), store.index());
        let loaded = reopened.load().expect("load verifies");
        let generated =
            generate_suite(&DeviceKind::Grid3x3.build(), &config).expect("in-memory suite");
        assert_eq!(
            loaded, generated,
            "stored corpus must equal the in-memory suite"
        );
    }

    #[test]
    fn sharded_export_partitions_and_round_trips() {
        let dir = TempDir::new("sharded");
        let config = tiny_config();
        let outcome = SuiteStore::export_with_options(
            &dir.0,
            DeviceKind::Grid3x3,
            &config,
            &ExportOptions::default().with_shard_size(3),
            2,
            &NullSink,
        )
        .expect("export");
        assert_eq!(outcome.shards_total, 2);
        assert_eq!(outcome.shards_written, 2);
        assert_eq!(outcome.shards_resumed, 0);
        let store = outcome.store.expect("completed");
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.index().shards[0].instances, 3);
        assert_eq!(store.index().shards[1].instances, 1);
        assert!(dir.0.join(shard_file_name(0)).is_file());
        assert!(!dir.0.join(EXPORT_LEDGER_FILE).exists());

        let loaded = store.load().expect("load verifies");
        let generated =
            generate_suite(&DeviceKind::Grid3x3.build(), &config).expect("in-memory suite");
        assert_eq!(
            loaded, generated,
            "shard boundaries must not reorder points"
        );
    }

    #[test]
    fn export_is_thread_count_invariant() {
        let dir_a = TempDir::new("threads-1");
        let dir_b = TempDir::new("threads-8");
        let config = tiny_config();
        let options = ExportOptions::default().with_shard_size(1);
        SuiteStore::export_with_options(
            &dir_a.0,
            DeviceKind::Grid3x3,
            &config,
            &options,
            1,
            &NullSink,
        )
        .expect("export 1");
        SuiteStore::export_with_options(
            &dir_b.0,
            DeviceKind::Grid3x3,
            &config,
            &options,
            8,
            &NullSink,
        )
        .expect("export 8");
        let a = std::fs::read_to_string(dir_a.0.join(MANIFEST_FILE)).expect("manifest a");
        let b = std::fs::read_to_string(dir_b.0.join(MANIFEST_FILE)).expect("manifest b");
        assert_eq!(a, b, "root index must not depend on export thread count");
        for shard in 0..4 {
            let a = std::fs::read_to_string(dir_a.0.join(shard_file_name(shard))).expect("shard a");
            let b = std::fs::read_to_string(dir_b.0.join(shard_file_name(shard))).expect("shard b");
            assert_eq!(a, b, "shard {shard} must not depend on export thread count");
        }
    }

    #[test]
    fn verify_reports_all_tampered_instances() {
        let dir = TempDir::new("tamper");
        let config = tiny_config();
        let store = SuiteStore::export_with_options(
            &dir.0,
            DeviceKind::Grid3x3,
            &config,
            &ExportOptions::default().with_shard_size(2),
            AUTO_THREADS,
            &NullSink,
        )
        .expect("export")
        .store
        .expect("completed");
        assert_eq!(store.verify().expect("clean verify").instances, 4);

        // Tamper with one instance in each shard: verification must report
        // both, with shard + index context, instead of bailing on the first.
        let shard0 = store.shard_records(0).expect("shard 0");
        let shard1 = store.shard_records(1).expect("shard 1");
        for record in [&shard0[0], &shard1[1]] {
            let victim = dir.0.join(&record.file);
            let mut text = std::fs::read_to_string(&victim).expect("read");
            text.push_str("h q[0];\n");
            std::fs::write(&victim, text).expect("tamper");
        }
        let store = SuiteStore::open(&dir.0).expect("open");
        match store.verify() {
            Err(StoreError::VerifyFailed { failures }) => {
                assert_eq!(failures.len(), 2, "both tampered instances reported");
                assert_eq!(failures[0].shard, 0);
                assert_eq!(failures[0].instance, Some(0));
                assert_eq!(failures[0].file, shard0[0].file);
                assert!(failures[0].message.contains("hash mismatch"));
                assert_eq!(failures[1].shard, 1);
                assert_eq!(failures[1].instance, Some(1));
                assert_eq!(failures[1].file, shard1[1].file);
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }

    #[test]
    fn verify_detects_tampered_shard_manifest() {
        let dir = TempDir::new("shard-tamper");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        let path = dir.0.join(shard_file_name(0));
        let mut text = std::fs::read_to_string(&path).expect("read shard");
        text.push(' ');
        std::fs::write(&path, text).expect("tamper shard");
        let store = SuiteStore::open(store.root()).expect("open");
        match store.verify() {
            Err(StoreError::VerifyFailed { failures }) => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].shard, 0);
                assert_eq!(failures[0].instance, None);
                assert!(failures[0].message.contains("hash mismatch"));
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_unparseable_instances() {
        let dir = TempDir::new("unparseable");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        // Rewrite an instance with garbage *and* matching hashes all the way
        // up the chain, so the parse failure (not a hash check) is what
        // fires.
        let records = store.shard_records(0).expect("records");
        let record = records[1].clone();
        let garbage = "OPENQASM 2.0;\nqreg q[9];\nccz q[0], q[1], q[2];\n";
        std::fs::write(dir.0.join(&record.file), garbage).expect("write");
        let mut manifest = ShardManifest {
            shard: 0,
            instances: records,
        };
        manifest.instances[1].content_hash = content_hash(garbage);
        let shard_json = serde_json::to_string_pretty(&manifest).expect("serialize");
        std::fs::write(dir.0.join(shard_file_name(0)), &shard_json).expect("write shard");
        let mut index = store.index().clone();
        index.shards[0].content_hash = content_hash(&shard_json);
        std::fs::write(
            dir.0.join(MANIFEST_FILE),
            serde_json::to_string_pretty(&index).expect("serialize"),
        )
        .expect("write manifest");
        match SuiteStore::open(&dir.0).expect("open").load() {
            Err(StoreError::Qasm { file, .. }) => assert_eq!(file, record.file),
            other => panic!("expected qasm error, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_unknown_format_versions() {
        let dir = TempDir::new("format");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        let mut index = store.index().clone();
        index.format = MANIFEST_FORMAT + 1;
        std::fs::write(
            dir.0.join(MANIFEST_FILE),
            serde_json::to_string_pretty(&index).expect("serialize"),
        )
        .expect("write manifest");
        assert_eq!(
            SuiteStore::open(&dir.0).unwrap_err(),
            StoreError::FormatVersion {
                found: MANIFEST_FORMAT + 1
            }
        );
    }

    #[test]
    fn residency_counts_loaded_shards() {
        let dir = TempDir::new("residency");
        let store = SuiteStore::export_with_options(
            &dir.0,
            DeviceKind::Grid3x3,
            &tiny_config(),
            &ExportOptions::default().with_shard_size(2),
            1,
            &NullSink,
        )
        .expect("export")
        .store
        .expect("completed");
        assert_eq!(store.residency_peak(), 0);
        {
            let _one = store.load_shard(0).expect("shard 0");
            assert_eq!(store.residency_peak(), 1);
            {
                let _two = store.load_shard(1).expect("shard 1");
                assert_eq!(store.residency_peak(), 2);
            }
        }
        store.reset_residency_peak();
        assert_eq!(store.residency_peak(), 0);
        // Streaming one shard at a time keeps the peak at 1.
        for shard in 0..store.shard_count() {
            let loaded = store.load_shard(shard).expect("shard");
            assert_eq!(loaded.shard(), shard);
            assert_eq!(loaded.points().len(), 2);
        }
        assert_eq!(store.residency_peak(), 1);
    }

    #[test]
    fn result_cache_round_trips_and_tolerates_corruption() {
        let dir = TempDir::new("cache");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        let key = JobKey::new("lightsabre", "deadbeef");
        assert_eq!(store.read_cached::<Vec<usize>>(&key), None);
        store.write_cached(&key, &vec![3usize, 4]).expect("write");
        assert_eq!(store.read_cached::<Vec<usize>>(&key), Some(vec![3, 4]));
        // A corrupt entry reads as a miss, never as an error.
        std::fs::write(store.cache_path(&key), "{not json").expect("corrupt");
        assert_eq!(store.read_cached::<Vec<usize>>(&key), None);
    }
}
