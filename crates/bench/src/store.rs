//! The persistent benchmark-suite store: a suite as an on-disk corpus plus a
//! content-addressed result cache.
//!
//! A stored suite directory looks like:
//!
//! ```text
//! suite/
//! ├── manifest.json                    # SuiteManifest: config, seeds, hashes
//! ├── aspen-4_swaps5_inst0.qasm        # one OpenQASM file per instance
//! ├── aspen-4_swaps5_inst0.json        # metadata sidecar for external tools
//! ├── ...
//! └── results/                         # content-addressed result cache
//!     ├── lightsabre/<circuit-hash>.json
//!     └── optimality/<circuit-hash>.json
//! ```
//!
//! The QASM files are the interop boundary — the exact artifact handed to
//! Qiskit, t|ket⟩ or QMAP — and the manifest makes the directory a
//! *verifiable* corpus: every instance records the seed it was generated
//! from, its designed SWAP count, and the content hash of its QASM text.
//! [`SuiteStore::load`] turns the directory back into the
//! `Vec<ExperimentPoint>` the pipelines consume, and it distrusts the disk
//! on principle: each file's bytes must match the manifest hash, must parse
//! through [`parse_qasm`], and the parsed circuit must equal the circuit
//! regenerated from the recorded seed — a full round-trip proof that what
//! external tools read is what the generator certified.
//!
//! The `results/` cache keys each stored outcome by
//! ([`JobKey`]: tool namespace, circuit content hash), so re-running an
//! evaluation on the same suite skips every (tool, circuit) pair it has
//! already routed, and an interrupted sharded run resumes where it stopped.
//! Cache writes go through a temp-file rename so a killed run never leaves a
//! half-written entry behind.

use qubikos::{
    content_hash, generate, generate_suite, ExperimentPoint, GenerateError, GeneratorConfig,
    InstanceRecord, SuiteConfig, SuiteManifest, MANIFEST_FILE, MANIFEST_FORMAT,
};
use qubikos_arch::DeviceKind;
use qubikos_circuit::{parse_qasm, to_qasm};
use qubikos_engine::{Engine, JobKey, NullSink, ProgressSink};
use serde::Serialize;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Everything that can go wrong exporting, opening, verifying, or loading a
/// stored suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// `manifest.json` (or a cache entry) did not deserialize.
    Malformed {
        /// Path of the offending file.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// The manifest's schema version is not the one this build understands.
    FormatVersion {
        /// Version found in the manifest.
        found: u32,
    },
    /// An instance file's bytes do not match the manifest's content hash.
    HashMismatch {
        /// The instance file.
        file: String,
        /// Hash recorded in the manifest.
        expected: String,
        /// Hash of the bytes on disk.
        found: String,
    },
    /// An instance file no longer parses as the supported QASM subset.
    Qasm {
        /// The instance file.
        file: String,
        /// Rendered parse error.
        message: String,
    },
    /// An instance file parses, but to a different circuit than the one its
    /// recorded seed regenerates — the round trip the paper's methodology
    /// relies on is broken.
    RoundTripMismatch {
        /// The instance file.
        file: String,
    },
    /// Regenerating an instance from its recorded seed failed.
    Generate(GenerateError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            StoreError::Malformed { path, message } => {
                write!(f, "malformed store file {path}: {message}")
            }
            StoreError::FormatVersion { found } => write!(
                f,
                "manifest format {found} is not supported (expected {MANIFEST_FORMAT})"
            ),
            StoreError::HashMismatch {
                file,
                expected,
                found,
            } => write!(
                f,
                "content hash mismatch for {file}: manifest records {expected}, file hashes to {found}"
            ),
            StoreError::Qasm { file, message } => {
                write!(f, "stored QASM {file} failed to parse: {message}")
            }
            StoreError::RoundTripMismatch { file } => write!(
                f,
                "stored QASM {file} parses to a different circuit than its recorded seed regenerates"
            ),
            StoreError::Generate(error) => write!(f, "regeneration failed: {error}"),
        }
    }
}

impl Error for StoreError {}

impl From<GenerateError> for StoreError {
    fn from(error: GenerateError) -> Self {
        StoreError::Generate(error)
    }
}

fn io_error(path: &Path, error: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: error.to_string(),
    }
}

/// Outcome of [`SuiteStore::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Number of instances checked (hash + parse + regeneration round trip).
    pub instances: usize,
}

/// A suite directory opened for reading (and result caching).
#[derive(Debug, Clone)]
pub struct SuiteStore {
    root: PathBuf,
    manifest: SuiteManifest,
}

impl SuiteStore {
    /// Generates the suite described by `(device, config)` and writes it to
    /// `root` as `manifest.json` + one QASM file (plus a JSON metadata
    /// sidecar for external tools) per instance. Existing files are
    /// overwritten; an existing result cache under `root/results` is left
    /// untouched (entries are content-addressed, so stale ones are simply
    /// never hit).
    ///
    /// Generation and writing run on the execution engine — one job per
    /// instance, order-independent thanks to
    /// [`SuiteConfig::instance_seed`] — so exporting a large corpus
    /// parallelizes while the manifest stays byte-identical to a sequential
    /// export.
    ///
    /// # Errors
    ///
    /// [`StoreError::Generate`] on suite misconfiguration, [`StoreError::Io`]
    /// on filesystem failures.
    pub fn export(
        root: impl Into<PathBuf>,
        device: DeviceKind,
        config: &SuiteConfig,
        threads: usize,
        sink: &dyn ProgressSink,
    ) -> Result<SuiteStore, StoreError> {
        let root = root.into();
        let arch = device.build();
        std::fs::create_dir_all(&root).map_err(|e| io_error(&root, &e))?;

        let jobs: Vec<(usize, usize)> = config
            .swap_counts
            .iter()
            .enumerate()
            .flat_map(|(count_index, _)| {
                (0..config.circuits_per_count).map(move |instance| (count_index, instance))
            })
            .collect();
        let engine = Engine::new(threads).with_base_seed(config.base_seed);
        let records = engine.run_values(
            &jobs,
            |_worker| (),
            |(), _ctx, &(count_index, instance)| -> Result<InstanceRecord, StoreError> {
                let swap_count = config.swap_counts[count_index];
                let seed = config.instance_seed(count_index, instance);
                let gen_config =
                    GeneratorConfig::new(swap_count, config.two_qubit_gates).with_seed(seed);
                let benchmark = generate(&arch, &gen_config)?;
                let point = ExperimentPoint {
                    swap_count,
                    instance,
                    seed,
                    benchmark,
                };
                let record = InstanceRecord::describe(device, &point);
                let qasm_path = root.join(&record.file);
                write_atomic(&qasm_path, &to_qasm(point.benchmark.circuit()))?;
                let sidecar = serde_json::json!({
                    "architecture": point.benchmark.architecture(),
                    "optimal_swaps": point.benchmark.optimal_swaps(),
                    "two_qubit_gates": record.two_qubit_gates,
                    "seed": seed,
                    "content_hash": record.content_hash,
                    "optimal_initial_mapping": point.benchmark.reference_mapping().as_slice(),
                });
                let sidecar_path = qasm_path.with_extension("json");
                let json =
                    serde_json::to_string_pretty(&sidecar).map_err(|e| StoreError::Malformed {
                        path: sidecar_path.display().to_string(),
                        message: e.to_string(),
                    })?;
                write_atomic(&sidecar_path, &json)?;
                Ok(record)
            },
            sink,
        );
        let records = records
            .unwrap_or_else(|error| panic!("suite export aborted: {error}"))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;

        let manifest = SuiteManifest {
            format: MANIFEST_FORMAT,
            device,
            config: config.clone(),
            instances: records,
        };
        let manifest_path = root.join(MANIFEST_FILE);
        let json = serde_json::to_string_pretty(&manifest).map_err(|e| StoreError::Malformed {
            path: manifest_path.display().to_string(),
            message: e.to_string(),
        })?;
        write_atomic(&manifest_path, &json)?;
        Ok(SuiteStore { root, manifest })
    }

    /// Opens an existing suite directory by reading its manifest. No
    /// instance files are touched until [`load`](Self::load) or
    /// [`verify`](Self::verify).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the manifest is unreadable,
    /// [`StoreError::Malformed`] when it does not deserialize,
    /// [`StoreError::FormatVersion`] on a schema mismatch.
    pub fn open(root: impl Into<PathBuf>) -> Result<SuiteStore, StoreError> {
        let root = root.into();
        let manifest_path = root.join(MANIFEST_FILE);
        let text =
            std::fs::read_to_string(&manifest_path).map_err(|e| io_error(&manifest_path, &e))?;
        let manifest: SuiteManifest =
            serde_json::from_str(&text).map_err(|e| StoreError::Malformed {
                path: manifest_path.display().to_string(),
                message: e.to_string(),
            })?;
        if manifest.format != MANIFEST_FORMAT {
            return Err(StoreError::FormatVersion {
                found: manifest.format,
            });
        }
        Ok(SuiteStore { root, manifest })
    }

    /// The suite directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The manifest read at [`open`](Self::open) (or written by
    /// [`export`](Self::export)).
    pub fn manifest(&self) -> &SuiteManifest {
        &self.manifest
    }

    /// Device the stored suite targets.
    pub fn device(&self) -> DeviceKind {
        self.manifest.device
    }

    /// Loads the stored suite back into the experiment points the pipelines
    /// consume, verifying every instance on the way: the file's bytes must
    /// match the manifest hash, parse as the supported QASM subset, and
    /// equal the circuit regenerated from the recorded seed. The returned
    /// points (including certificates and reference solutions) are therefore
    /// bit-identical to what [`generate_suite`] produces for the manifest's
    /// config.
    ///
    /// # Errors
    ///
    /// The first (in manifest order) [`StoreError`] found.
    pub fn load(&self) -> Result<Vec<ExperimentPoint>, StoreError> {
        let arch = self.manifest.device.build();
        self.manifest
            .instances
            .iter()
            .map(|record| {
                let gen_config =
                    GeneratorConfig::new(record.swap_count, self.manifest.config.two_qubit_gates)
                        .with_seed(record.seed);
                let benchmark = generate(&arch, &gen_config)?;
                let path = self.root.join(&record.file);
                let text = std::fs::read_to_string(&path).map_err(|e| io_error(&path, &e))?;
                let found = content_hash(&text);
                if found != record.content_hash {
                    return Err(StoreError::HashMismatch {
                        file: record.file.clone(),
                        expected: record.content_hash.clone(),
                        found,
                    });
                }
                let parsed = parse_qasm(&text).map_err(|e| StoreError::Qasm {
                    file: record.file.clone(),
                    message: e.to_string(),
                })?;
                if &parsed != benchmark.circuit() {
                    return Err(StoreError::RoundTripMismatch {
                        file: record.file.clone(),
                    });
                }
                Ok(ExperimentPoint {
                    swap_count: record.swap_count,
                    instance: record.instance,
                    seed: record.seed,
                    benchmark,
                })
            })
            .collect()
    }

    /// Verifies every instance (hash, parse, regeneration round trip)
    /// without keeping the circuits.
    ///
    /// # Errors
    ///
    /// As [`load`](Self::load).
    pub fn verify(&self) -> Result<VerifyOutcome, StoreError> {
        let points = self.load()?;
        Ok(VerifyOutcome {
            instances: points.len(),
        })
    }

    /// Convenience: generates the manifest's suite in memory (no disk reads
    /// beyond the already-loaded manifest). Used by tests comparing stored
    /// and in-memory pipelines.
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] as [`StoreError::Generate`].
    pub fn regenerate(&self) -> Result<Vec<ExperimentPoint>, StoreError> {
        let arch = self.manifest.device.build();
        Ok(generate_suite(&arch, &self.manifest.config)?)
    }

    // ---- result cache -----------------------------------------------------

    /// Path of the cache entry for `key`.
    fn cache_path(&self, key: &JobKey) -> PathBuf {
        self.root
            .join("results")
            .join(key.namespace())
            .join(format!("{}.json", key.key()))
    }

    /// Reads a cache entry. Returns `None` when the entry is absent **or**
    /// unreadable/corrupt — a broken cache entry must only cost a recompute,
    /// never fail a run.
    pub fn read_cached<T: serde::Deserialize>(&self, key: &JobKey) -> Option<T> {
        let text = std::fs::read_to_string(self.cache_path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Writes a cache entry atomically (temp file + rename), creating the
    /// cache directories on first use.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn write_cached<T: Serialize>(&self, key: &JobKey, value: &T) -> Result<(), StoreError> {
        let path = self.cache_path(key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_error(parent, &e))?;
        }
        let json = serde_json::to_string_pretty(value).map_err(|e| StoreError::Malformed {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        write_atomic(&path, &json)
    }
}

/// Writes `text` to `path` via a sibling temp file + rename, so readers (and
/// resumed runs) never observe a torn file. The temp name carries the
/// process id and a per-process counter: two sharded runs landing on the
/// same cache entry each rename their own complete file (last rename wins
/// with identical content) instead of racing on one shared `.tmp`.
fn write_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
    static WRITE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}-{serial}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text).map_err(|e| io_error(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_error(path, &e))
}

/// Exports a suite with no progress streaming (library/test convenience;
/// CLIs pass a real sink to [`SuiteStore::export`]).
///
/// # Errors
///
/// As [`SuiteStore::export`].
pub fn export_suite(
    root: impl Into<PathBuf>,
    device: DeviceKind,
    config: &SuiteConfig,
    threads: usize,
) -> Result<SuiteStore, StoreError> {
    SuiteStore::export(root, device, config, threads, &NullSink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_engine::AUTO_THREADS;

    /// A unique temp dir per test; removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "qubikos-store-{}-{}-{name}",
                std::process::id(),
                std::thread::current()
                    .name()
                    .unwrap_or("t")
                    .replace("::", "-"),
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_config() -> SuiteConfig {
        SuiteConfig {
            swap_counts: vec![1, 2],
            circuits_per_count: 2,
            two_qubit_gates: 16,
            base_seed: 11,
        }
    }

    #[test]
    fn export_then_load_round_trips_bit_identically() {
        let dir = TempDir::new("round-trip");
        let config = tiny_config();
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &config, 2).expect("export");
        assert_eq!(store.manifest().instances.len(), 4);

        let reopened = SuiteStore::open(&dir.0).expect("open");
        assert_eq!(reopened.manifest(), store.manifest());
        let loaded = reopened.load().expect("load verifies");
        let generated =
            generate_suite(&DeviceKind::Grid3x3.build(), &config).expect("in-memory suite");
        assert_eq!(
            loaded, generated,
            "stored corpus must equal the in-memory suite"
        );
    }

    #[test]
    fn export_is_thread_count_invariant() {
        let dir_a = TempDir::new("threads-1");
        let dir_b = TempDir::new("threads-8");
        let config = tiny_config();
        export_suite(&dir_a.0, DeviceKind::Grid3x3, &config, 1).expect("export 1");
        export_suite(&dir_b.0, DeviceKind::Grid3x3, &config, 8).expect("export 8");
        let a = std::fs::read_to_string(dir_a.0.join(MANIFEST_FILE)).expect("manifest a");
        let b = std::fs::read_to_string(dir_b.0.join(MANIFEST_FILE)).expect("manifest b");
        assert_eq!(a, b, "manifest must not depend on export thread count");
    }

    #[test]
    fn verify_detects_tampered_instances() {
        let dir = TempDir::new("tamper");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), AUTO_THREADS)
            .expect("export");
        assert_eq!(store.verify().expect("clean verify").instances, 4);

        // Appending a gate changes the bytes: the hash check must fire.
        let victim = dir.0.join(&store.manifest().instances[0].file);
        let mut text = std::fs::read_to_string(&victim).expect("read");
        text.push_str("h q[0];\n");
        std::fs::write(&victim, text).expect("tamper");
        match SuiteStore::open(&dir.0).expect("open").verify() {
            Err(StoreError::HashMismatch { file, .. }) => {
                assert_eq!(file, store.manifest().instances[0].file);
            }
            other => panic!("expected hash mismatch, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_unparseable_instances() {
        let dir = TempDir::new("unparseable");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        // Rewrite an instance with garbage *and* a matching manifest hash, so
        // the parse failure (not the hash check) is what fires.
        let record = store.manifest().instances[1].clone();
        let garbage = "OPENQASM 2.0;\nqreg q[9];\nccz q[0], q[1], q[2];\n";
        std::fs::write(dir.0.join(&record.file), garbage).expect("write");
        let mut manifest = store.manifest().clone();
        manifest.instances[1].content_hash = content_hash(garbage);
        std::fs::write(
            dir.0.join(MANIFEST_FILE),
            serde_json::to_string_pretty(&manifest).expect("serialize"),
        )
        .expect("write manifest");
        match SuiteStore::open(&dir.0).expect("open").load() {
            Err(StoreError::Qasm { file, .. }) => assert_eq!(file, record.file),
            other => panic!("expected qasm error, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_unknown_format_versions() {
        let dir = TempDir::new("format");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        let mut manifest = store.manifest().clone();
        manifest.format = MANIFEST_FORMAT + 1;
        std::fs::write(
            dir.0.join(MANIFEST_FILE),
            serde_json::to_string_pretty(&manifest).expect("serialize"),
        )
        .expect("write manifest");
        assert_eq!(
            SuiteStore::open(&dir.0).unwrap_err(),
            StoreError::FormatVersion {
                found: MANIFEST_FORMAT + 1
            }
        );
    }

    #[test]
    fn result_cache_round_trips_and_tolerates_corruption() {
        let dir = TempDir::new("cache");
        let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_config(), 1).expect("export");
        let key = JobKey::new("lightsabre", "deadbeef");
        assert_eq!(store.read_cached::<Vec<usize>>(&key), None);
        store.write_cached(&key, &vec![3usize, 4]).expect("write");
        assert_eq!(store.read_cached::<Vec<usize>>(&key), Some(vec![3, 4]));
        // A corrupt entry reads as a miss, never as an error.
        std::fs::write(store.cache_path(&key), "{not json").expect("corrupt");
        assert_eq!(store.read_cached::<Vec<usize>>(&key), None);
    }
}
